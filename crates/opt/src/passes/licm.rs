//! Loop-invariant code motion.
//!
//! Pure, non-trapping computations whose operands are loop-invariant move
//! to the preheader. Loads move only when provably safe to execute
//! speculatively (statically in-bounds address) and no statement in the
//! loop may write the region; everything riskier is register promotion's
//! job, which installs a loop guard first.

use crate::util::{is_speculatable, single_def_sites, static_address};
use peak_ir::{
    Cfg, Dominators, Function, LoopForest, MemBase, Program, Rvalue, Stmt, Terminator, VarId,
};
use std::collections::HashSet;

/// Run LICM. Returns true if anything was hoisted.
pub fn run(f: &mut Function, prog: &Program) -> bool {
    let mut changed = false;
    // Re-analyze after each round: hoisting changes block contents.
    loop {
        let cfg = Cfg::build(f);
        let dom = Dominators::build(f, &cfg);
        let forest = LoopForest::build(f, &cfg, &dom);
        let sites = single_def_sites(f);
        let mut moved = false;
        for l in &forest.loops {
            // Preheader: unique out-of-loop predecessor ending in Jump.
            let mut pre = None;
            for &p in &cfg.preds[l.header.index()] {
                if !l.contains(p) {
                    if pre.is_some() {
                        pre = None;
                        break;
                    }
                    pre = Some(p);
                }
            }
            let Some(pre) = pre else { continue };
            if !matches!(f.block(pre).term, Terminator::Jump(t) if t == l.header) {
                continue;
            }
            // Variables defined anywhere in the loop.
            let mut defined_in_loop: HashSet<VarId> = HashSet::new();
            let mut loop_writes_mem = false;
            let mut loop_has_call = false;
            let mut written_regions: HashSet<u32> = HashSet::new();
            for &b in &l.body {
                for s in &f.block(b).stmts {
                    if let Some(d) = s.def() {
                        defined_in_loop.insert(d);
                    }
                    match s {
                        Stmt::Store { dst, .. } => match dst.base {
                            MemBase::Global(m) => {
                                written_regions.insert(m.0);
                            }
                            MemBase::Ptr(_) => loop_writes_mem = true,
                        },
                        Stmt::CallVoid { .. } => loop_has_call = true,
                        Stmt::Assign { rv: Rvalue::Call { .. }, .. } => loop_has_call = true,
                        _ => {}
                    }
                }
            }
            // Hoist in body order so invariant chains move together.
            let mut hoisted: HashSet<VarId> = HashSet::new();
            for &b in &l.body {
                let mut si = 0;
                while si < f.block(b).stmts.len() {
                    let s = &f.block(b).stmts[si];
                    let Stmt::Assign { dst, rv } = s else {
                        si += 1;
                        continue;
                    };
                    let dst = *dst;
                    // Single-def AND the def dominates every use: otherwise
                    // a use reached without executing the def (reading the
                    // entry value) would observe the hoisted value instead.
                    if !sites.contains_key(&dst) || !def_dominates_uses(f, &dom, b, si, dst) {
                        si += 1;
                        continue;
                    }
                    let mut uses = Vec::new();
                    rv.uses(&mut uses);
                    let invariant = uses
                        .iter()
                        .all(|u| !defined_in_loop.contains(u) || hoisted.contains(u));
                    if !invariant {
                        si += 1;
                        continue;
                    }
                    let safe = if is_speculatable(rv) {
                        true
                    } else if let Rvalue::Load(mr) = rv {
                        // Safe speculative load: static in-bounds address,
                        // region never written in the loop, no calls.
                        match static_address(f, mr) {
                            Some((m, idx)) => {
                                !loop_has_call
                                    && !loop_writes_mem
                                    && !written_regions.contains(&m.0)
                                    && idx >= 0
                                    && (idx as usize) < prog.mems[m.index()].len
                            }
                            None => false,
                        }
                    } else {
                        false
                    };
                    if !safe {
                        si += 1;
                        continue;
                    }
                    // Move to preheader.
                    let stmt = f.block_mut(b).stmts.remove(si);
                    f.block_mut(pre).stmts.push(stmt);
                    hoisted.insert(dst);
                    defined_in_loop.remove(&dst);
                    moved = true;
                }
            }
        }
        changed |= moved;
        if !moved {
            return changed;
        }
    }
}

/// Whether the definition of `v` at `(db, dsi)` dominates every use of `v`.
fn def_dominates_uses(
    f: &Function,
    dom: &Dominators,
    db: peak_ir::BlockId,
    dsi: usize,
    v: VarId,
) -> bool {
    let mut uses = Vec::new();
    for b in f.block_ids() {
        for (si, s) in f.block(b).stmts.iter().enumerate() {
            uses.clear();
            s.uses(&mut uses);
            if uses.contains(&v) {
                let ok = if b == db { dsi < si } else { dom.dominates(db, b) };
                if !ok {
                    return false;
                }
            }
        }
        uses.clear();
        f.block(b).term.uses(&mut uses);
        if uses.contains(&v) {
            let ok = if b == db { true } else { dom.dominates(db, b) };
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Program, Type, Value};

    #[test]
    fn invariant_chain_hoisted() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let k = b.param("k", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let t1 = b.binary(BinOp::Mul, k, k); // invariant
            let t2 = b.binary(BinOp::Add, t1, 5i64); // invariant chain
            let t3 = b.binary(BinOp::Add, t2, i); // NOT invariant
            b.binary_into(acc, BinOp::Add, acc, t3);
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        assert!(run(&mut f, &Program::new()));
        // Entry (preheader) gained the two invariant statements.
        let body_muls = f.blocks[2]
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { rv: Rvalue::Binary(BinOp::Mul, ..), .. }))
            .count();
        assert_eq!(body_muls, 0, "k*k hoisted out of body");
        assert!(f.blocks[0].stmts.len() >= 3); // acc init + 2 hoisted + iv init
    }

    #[test]
    fn semantics_preserved_including_zero_trip() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let k = b.param("k", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let t = b.binary(BinOp::Mul, k, 3i64);
            b.binary_into(acc, BinOp::Add, acc, t);
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        let snapshot = opt.clone();
        run(opt.func_mut(fid), &snapshot);
        for (n, k) in [(0i64, 5i64), (3, 2), (7, -1)] {
            let mut m1 = MemoryImage::new(&prog);
            let mut m2 = MemoryImage::new(&opt);
            let r1 = Interp::default()
                .run(&prog, fid, &[Value::I64(n), Value::I64(k)], &mut m1)
                .unwrap();
            let r2 = Interp::default()
                .run(&opt, fid, &[Value::I64(n), Value::I64(k)], &mut m2)
                .unwrap();
            assert_eq!(r1.ret, r2.ret, "n={n} k={k}");
        }
    }

    #[test]
    fn variant_division_not_hoisted() {
        // k may be zero at runtime: div is not speculatable.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let k = b.param("k", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let t = b.binary(BinOp::Div, 100i64, k);
            b.binary_into(acc, BinOp::Add, acc, t);
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        assert!(!run(&mut f, &Program::new()), "div by param must stay guarded by the loop");
    }

    #[test]
    fn safe_static_load_hoisted_unsafe_not() {
        let mut prog = Program::new();
        let g = prog.add_mem("g", Type::I64, 4);
        let h = prog.add_mem("h", Type::I64, 4);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let safe = b.load(Type::I64, MemRef::global(g, 2i64)); // invariant, in-bounds, g unwritten
            let unsafe_ld = b.load(Type::I64, MemRef::global(h, 1i64)); // h written below
            let t = b.binary(BinOp::Add, safe, unsafe_ld);
            b.binary_into(acc, BinOp::Add, acc, t);
            b.store(MemRef::global(h, 1i64), acc);
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        assert!(run(&mut f, &prog));
        let body_loads = f.blocks[2]
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { rv: Rvalue::Load(_), .. }))
            .count();
        assert_eq!(body_loads, 1, "only the h load remains in the body");
    }

    #[test]
    fn nested_loop_invariants_hoist_stepwise() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let k = b.param("k", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.for_loop(j, 0i64, n, 1, |b| {
                let t = b.binary(BinOp::Mul, k, 7i64); // invariant to both
                b.binary_into(acc, BinOp::Add, acc, t);
            });
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        assert!(run(&mut f, &Program::new()));
        // The multiply should end up in the outermost preheader (entry).
        assert!(
            f.blocks[0]
                .stmts
                .iter()
                .any(|s| matches!(s, Stmt::Assign { rv: Rvalue::Binary(BinOp::Mul, ..), .. })),
            "k*7 hoisted to function entry"
        );
    }
}
