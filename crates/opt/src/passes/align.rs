//! Block alignment flags: `align-loops` marks loop headers, `align-jumps`
//! marks branch-join targets. The machine simulator charges a reduced
//! front-end redirect penalty when a taken branch lands on an aligned
//! block; alignment also contributes padding to the code-size footprint.

use peak_ir::{Cfg, Dominators, Function, LoopForest};

/// Mark loop headers aligned. Returns true if anything changed.
pub fn run_align_loops(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let mut changed = false;
    for l in &forest.loops {
        if !f.block(l.header).aligned {
            f.block_mut(l.header).aligned = true;
            changed = true;
        }
        // The body entry also benefits: it is the taken target of the
        // header branch on every iteration under the default layout.
        if let peak_ir::Terminator::Branch { on_true, .. } = f.block(l.header).term {
            if l.contains(on_true) && !f.block(on_true).aligned {
                f.block_mut(on_true).aligned = true;
                changed = true;
            }
        }
    }
    changed
}

/// Mark join targets (blocks with ≥ 2 predecessors) aligned.
pub fn run_align_jumps(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let mut changed = false;
    for b in f.block_ids() {
        if cfg.preds[b.index()].len() >= 2 && !f.block(b).aligned {
            f.block_mut(b).aligned = true;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Type};

    #[test]
    fn loop_header_and_body_aligned() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let mut f = b.finish();
        assert!(run_align_loops(&mut f));
        assert!(f.blocks[1].aligned, "header aligned");
        assert!(f.blocks[2].aligned, "body aligned");
        assert!(!f.blocks[0].aligned, "entry untouched");
        assert!(!run_align_loops(&mut f), "idempotent");
    }

    #[test]
    fn join_targets_aligned() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::I64);
        b.if_then_else(p, |_| {}, |_| {});
        b.ret(None);
        let mut f = b.finish();
        assert!(run_align_jumps(&mut f));
        assert!(f.blocks[3].aligned, "join block aligned");
        assert!(!f.blocks[1].aligned);
    }
}
