//! Loop fusion: merge two adjacent conformable counted loops into one,
//! halving loop overhead and improving temporal locality.
//!
//! Sound under a deliberately conservative condition: the loops must have
//! identical (start, end, step), the first loop's exit must lead straight
//! to the second loop's preheader code, and the region sets the two bodies
//! touch must be disjoint in both directions (no flow, anti, or output
//! dependence between the bodies at region granularity).

use peak_ir::{
    Cfg, Dominators, Function, LoopForest, MemBase, Rvalue, Stmt, Terminator,
};
use std::collections::HashSet;

/// Memory regions a set of blocks reads/writes; None = touches unknown
/// (pointer) memory.
fn region_sets(f: &Function, blocks: &[peak_ir::BlockId]) -> Option<(HashSet<u32>, HashSet<u32>)> {
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    for &b in blocks {
        for s in &f.block(b).stmts {
            match s {
                Stmt::Assign { rv, .. } => match rv {
                    Rvalue::Load(mr) => match mr.base {
                        MemBase::Global(m) => {
                            reads.insert(m.0);
                        }
                        MemBase::Ptr(_) => return None,
                    },
                    Rvalue::Call { .. } => return None,
                    _ => {}
                },
                Stmt::Store { dst, .. } => match dst.base {
                    MemBase::Global(m) => {
                        writes.insert(m.0);
                    }
                    MemBase::Ptr(_) => return None,
                },
                Stmt::CallVoid { .. } => return None,
                Stmt::Prefetch { .. } | Stmt::CounterInc { .. } => {}
            }
        }
    }
    Some((reads, writes))
}

/// Run loop fusion (one pair per call). Returns true if a pair was fused.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    for (ai, a) in forest.loops.iter().enumerate() {
        let Some(ca) = peak_ir::recognize_counted(f, &cfg, a) else { continue };
        // The first loop's exit block must be the preheader of the second:
        // it may only contain the second loop's iv initialization.
        let Terminator::Branch { on_false: a_exit, .. } = f.block(a.header).term else {
            continue;
        };
        for (bi, l2) in forest.loops.iter().enumerate() {
            if ai == bi {
                continue;
            }
            let Some(cb) = peak_ir::recognize_counted(f, &cfg, l2) else { continue };
            // Adjacency: a_exit jumps to l2's header and contains only the
            // iv2 init (a single copy statement defining cb.iv).
            if !matches!(f.block(a_exit).term, Terminator::Jump(t) if t == l2.header) {
                continue;
            }
            let mid = f.block(a_exit);
            if mid.stmts.len() != 1 || mid.stmts[0].def() != Some(cb.iv) {
                continue;
            }
            // Conformable bounds: same start/end/step operands.
            if ca.start != cb.start || ca.end != cb.end || ca.step != cb.step {
                continue;
            }
            // Single-block bodies keep the splice simple (and cover the
            // array-kernel loops fusion targets in practice).
            let a_body: Vec<_> = a.body.iter().copied()
                .filter(|&b| b != a.header && !a.latches.contains(&b)).collect();
            let b_body: Vec<_> = l2.body.iter().copied()
                .filter(|&b| b != l2.header && !l2.latches.contains(&b)).collect();
            if a_body.len() != 1 || b_body.len() != 1 {
                continue;
            }
            // Dependence check at region granularity, both directions.
            let Some((ra, wa)) = region_sets(f, &a.body) else { continue };
            let Some((rb, wb)) = region_sets(f, &l2.body) else { continue };
            let disjoint = wa.is_disjoint(&rb)
                && wa.is_disjoint(&wb)
                && ra.is_disjoint(&wb);
            if !disjoint {
                continue;
            }
            // Scalar dependences: after fusion the bodies interleave, so
            // any variable one body defines must be invisible to the other
            // (apart from the induction variables, which the rewrite
            // unifies). Without this, a value the second loop evolves
            // (e.g. an index) would leak into the first loop's iterations.
            let scalar_sets = |body: peak_ir::BlockId, own_iv: peak_ir::VarId| {
                let mut defs = HashSet::new();
                let mut uses_set = HashSet::new();
                let mut buf = Vec::new();
                for s in &f.block(body).stmts {
                    if let Some(d) = s.def() {
                        if d != own_iv {
                            defs.insert(d);
                        }
                    }
                    buf.clear();
                    s.uses(&mut buf);
                    for &u in &buf {
                        if u != own_iv {
                            uses_set.insert(u);
                        }
                    }
                }
                (defs, uses_set)
            };
            let (defs1, uses1) = scalar_sets(a_body[0], ca.iv);
            let (defs2, uses2) = scalar_sets(b_body[0], cb.iv);
            let scalar_ok = defs1.is_disjoint(&uses2)
                && defs1.is_disjoint(&defs2)
                && defs2.is_disjoint(&uses1)
                && !uses2.contains(&ca.iv)
                && !uses1.contains(&cb.iv);
            if !scalar_ok {
                continue;
            }
            // iv2 must not be read after the second loop: once fused, its
            // updates never execute.
            let mut iv2_escapes = false;
            let mut uses = Vec::new();
            for blk in f.block_ids() {
                if l2.contains(blk) || blk == a_exit {
                    continue;
                }
                for s in &f.block(blk).stmts {
                    uses.clear();
                    s.uses(&mut uses);
                    iv2_escapes |= uses.contains(&cb.iv);
                }
                uses.clear();
                f.block(blk).term.uses(&mut uses);
                iv2_escapes |= uses.contains(&cb.iv);
            }
            if iv2_escapes {
                continue;
            }
            // Splice: body2's statements run after body1's in the fused
            // loop, with iv2 replaced by iv1. Latch keeps only iv1 update.
            let mut spliced = f.block(b_body[0]).stmts.clone();
            for s in &mut spliced {
                crate::util::map_stmt_operands(s, &mut |op| {
                    if let peak_ir::Operand::Var(v) = op {
                        if *v == cb.iv {
                            *op = peak_ir::Operand::Var(ca.iv);
                        }
                    }
                });
            }
            f.block_mut(a_body[0]).stmts.extend(spliced);
            // First loop now exits to the second loop's exit.
            let Terminator::Branch { on_false: b_exit, .. } = f.block(l2.header).term else {
                continue;
            };
            if let Terminator::Branch { on_false, .. } = &mut f.block_mut(a.header).term {
                *on_false = b_exit;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Program, Type, Value};

    /// Two disjoint array-scaling loops over the same bounds.
    fn build(prog: &mut Program, shared_end: bool) -> peak_ir::FuncId {
        let a = prog.mem_by_name("a").unwrap();
        let b_m = prog.mem_by_name("b").unwrap();
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let m = b.param("m", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            let y = b.binary(BinOp::Mul, x, 2i64);
            b.store(MemRef::global(a, i), y);
        });
        let end2: peak_ir::Operand = if shared_end { n.into() } else { m.into() };
        b.for_loop(j, 0i64, end2, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(b_m, j));
            let y = b.binary(BinOp::Add, x, 5i64);
            b.store(MemRef::global(b_m, j), y);
        });
        b.ret(None);
        prog.add_func(b.finish())
    }

    fn snapshot(prog: &Program, fid: peak_ir::FuncId, n: i64, m: i64) -> Vec<Value> {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        let bm = prog.mem_by_name("b").unwrap();
        for i in 0..16 {
            mem.store(a, i, Value::I64(i));
            mem.store(bm, i, Value::I64(100 + i));
        }
        Interp::default()
            .run(prog, fid, &[Value::I64(n), Value::I64(m)], &mut mem)
            .unwrap();
        let mut out = Vec::new();
        for i in 0..16 {
            out.push(mem.load(a, i));
            out.push(mem.load(bm, i));
        }
        out
    }

    #[test]
    fn disjoint_conformable_loops_fused() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 16);
        prog.add_mem("b", Type::I64, 16);
        let fid = build(&mut prog, true);
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        for n in [0i64, 1, 9, 16] {
            assert_eq!(snapshot(&orig, fid, n, n), snapshot(&prog, fid, n, n), "n={n}");
        }
    }

    #[test]
    fn different_bounds_not_fused() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 16);
        prog.add_mem("b", Type::I64, 16);
        let fid = build(&mut prog, false);
        assert!(!run(prog.func_mut(fid)));
    }

    #[test]
    fn scalar_dependence_blocks_fusion() {
        // Regression (found by proptest): the second loop evolves a scalar
        // (`p = load …`) that the first loop's store index reads. Fusing
        // would interleave the evolution into the first loop's stores.
        let mut prog = Program::new();
        let r0 = prog.add_mem("r0", Type::I64, 16);
        let r1 = prog.add_mem("r1", Type::I64, 16);
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::I64);
        let q = b.param("q", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        b.for_loop(i, 0i64, 3i64, 1, |b| {
            let idx = b.binary(BinOp::And, p, 15i64);
            b.store(MemRef::global(r1, idx), q);
        });
        b.for_loop(j, 0i64, 3i64, 1, |b| {
            let idx = b.binary(BinOp::And, p, 15i64);
            let x = b.load(Type::I64, MemRef::global(r0, idx));
            b.copy(p, x); // p evolves — visible to the first loop if fused
        });
        b.ret(None);
        let fid = prog.add_func(b.finish());
        let orig = prog.clone();
        assert!(!run(prog.func_mut(fid)), "scalar flow must block fusion");
        // And even if some future change fuses, semantics must hold.
        let mut m1 = MemoryImage::new(&orig);
        let mut m2 = MemoryImage::new(&prog);
        for img in [&mut m1, &mut m2] {
            for k in 0..16 {
                img.store(r0, k, Value::I64(k + 3));
                img.store(r1, k, Value::I64(100 - k));
            }
        }
        let args = [Value::I64(0), Value::I64(0)];
        Interp::default().run(&orig, fid, &args, &mut m1).unwrap();
        Interp::default().run(&prog, fid, &args, &mut m2).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn dependent_loops_not_fused() {
        // Second loop reads what the first wrote (stencil-like shift):
        // fusing would read partially updated data.
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 18);
        let bm = prog.add_mem("b", Type::I64, 18);
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(bm, i));
            b.store(MemRef::global(a, i), x);
        });
        b.for_loop(j, 0i64, n, 1, |b| {
            let idx = b.binary(BinOp::Add, j, 1i64);
            let x = b.load(Type::I64, MemRef::global(a, idx)); // reads ahead
            b.store(MemRef::global(bm, j), x);
        });
        b.ret(None);
        let fid = prog.add_func(b.finish());
        assert!(!run(prog.func_mut(fid)), "flow dependence blocks fusion");
    }
}
