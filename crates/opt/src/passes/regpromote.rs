//! Register promotion (scalar replacement): keep a repeatedly accessed,
//! loop-invariant memory location in a register for the duration of a
//! counted loop.
//!
//! The transformation is guarded so it never executes a speculative load:
//!
//! ```text
//! pre:    …                     pre:    … ; c0 = iv < end
//!         jump header                   br c0 ? landing : exit
//!                               landing: v = load A ; jump header
//! header: c = iv < end          header: c = iv < end
//!         br c ? body : exit            br c ? body : flush   (if stores)
//! body:   … load/store A …      body:   … v … v = src …
//!                               flush:  store A = v ; jump exit
//! ```
//!
//! Legality: every other memory access in the loop must provably not alias
//! `A`. Distinct global regions and distinct constant subscripts of one
//! region are disjoint; accesses through unknown (⊤) pointers alias
//! everything — *unless* `strict-aliasing` is on and the pointer's
//! inferred element type differs from `A`'s region type. That assumption
//! is what lets promotion fire aggressively, lengthening live ranges and
//! producing the ART register-pressure anecdote of paper §5.2.

use peak_ir::{
    Cfg, Dominators, Function, LoopForest, MemBase, MemRef, Operand, PointsTo, Program,
    Rvalue, Stmt, Terminator, Type, Value, VarId,
};
use std::collections::HashMap;

/// Run register promotion (one location per call; the pipeline iterates).
/// Returns true if a location was promoted.
pub fn run(f: &mut Function, prog: &Program, strict_aliasing: bool) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let pts = PointsTo::build(f);
    let ptr_elem = infer_ptr_elem_types(f);
    for li in 0..forest.loops.len() {
        let l = &forest.loops[li];
        let Some(_cl) = peak_ir::recognize_counted(f, &cfg, l) else { continue };
        // Header must be the single-compare canonical shape; its structure
        // is cloned into the guard.
        if f.block(l.header).stmts.len() != 1 {
            continue;
        }
        let Terminator::Branch { on_false: exit, .. } = f.block(l.header).term else { continue };
        if l.contains(exit) {
            continue;
        }
        // No calls anywhere in the loop.
        let has_call = l.body.iter().any(|&b| {
            f.block(b).stmts.iter().any(|s| {
                matches!(s, Stmt::CallVoid { .. } | Stmt::Assign { rv: Rvalue::Call { .. }, .. })
            })
        });
        if has_call {
            continue;
        }
        // Vars defined in the loop (for address invariance).
        let defined: Vec<VarId> = l
            .body
            .iter()
            .flat_map(|&b| f.block(b).stmts.iter().filter_map(|s| s.def()))
            .collect();
        let invariant_op = |op: &Operand| match op {
            Operand::Const(_) => true,
            Operand::Var(v) => !defined.contains(v),
        };
        let invariant_addr = |mr: &MemRef| {
            let base_ok = match mr.base {
                MemBase::Global(_) => true,
                MemBase::Ptr(p) => !defined.contains(&p),
            };
            base_ok && invariant_op(&mr.index)
        };
        // Candidate addresses: syntactic (base, index) of invariant
        // accesses, with counts and store flags.
        #[derive(Default)]
        struct Cand {
            count: usize,
            stores: usize,
            mr: Option<MemRef>,
        }
        let mut cands: HashMap<String, Cand> = HashMap::new();
        let addr_sig = |mr: &MemRef| format!("{mr:?}");
        for &b in &l.body {
            for s in &f.block(b).stmts {
                match s {
                    Stmt::Assign { rv: Rvalue::Load(mr), .. } if invariant_addr(mr) => {
                        let c = cands.entry(addr_sig(mr)).or_default();
                        c.count += 1;
                        c.mr = Some(*mr);
                    }
                    Stmt::Store { dst, .. } if invariant_addr(dst) => {
                        let c = cands.entry(addr_sig(dst)).or_default();
                        c.count += 1;
                        c.stores += 1;
                        c.mr = Some(*dst);
                    }
                    _ => {}
                }
            }
        }
        // Deterministic order: the map's iteration order is seeded per
        // process, and count ties would otherwise promote (and number
        // temporaries) in that random order — the source of the old
        // ART×Pentium-IV run-to-run cycle wobble. Tie-break on the
        // address signature for a total, process-independent order.
        let mut ordered: Vec<(&String, &Cand)> =
            cands.iter().filter(|(_, c)| c.count >= 2).collect();
        ordered.sort_by_key(|(sig, c)| (std::cmp::Reverse(c.count), sig.as_str()));
        let ordered: Vec<&Cand> = ordered.into_iter().map(|(_, c)| c).collect();
        let passing: Vec<(MemRef, bool)> = ordered
            .iter()
            .filter(|c| {
                let a = c.mr.expect("candidate has a memref");
                alias_check(f, prog, &pts, &ptr_elem, strict_aliasing, l, &a)
            })
            .map(|c| (c.mr.unwrap(), c.stores > 0))
            .take(6)
            .collect();
        if passing.is_empty() {
            continue;
        }
        promote(f, &cfg, l, exit, &passing);
        return true;
    }
    false
}

/// Element type accessed through each pointer variable, inferred from use.
fn infer_ptr_elem_types(f: &Function) -> HashMap<VarId, Type> {
    let mut map = HashMap::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            match s {
                Stmt::Assign { dst, rv: Rvalue::Load(mr) } => {
                    if let MemBase::Ptr(p) = mr.base {
                        map.entry(p).or_insert(f.var_ty(*dst));
                    }
                }
                Stmt::Store { dst, src } => {
                    if let MemBase::Ptr(p) = dst.base {
                        let ty = match src {
                            Operand::Var(v) => f.var_ty(*v),
                            Operand::Const(c) => c.ty(),
                        };
                        map.entry(p).or_insert(ty);
                    }
                }
                _ => {}
            }
        }
    }
    map
}

/// Does every other access in the loop provably not alias `a`?
fn alias_check(
    f: &Function,
    prog: &Program,
    pts: &PointsTo,
    ptr_elem: &HashMap<VarId, Type>,
    strict: bool,
    l: &peak_ir::Loop,
    a: &MemRef,
) -> bool {
    let a_ty = memref_elem_ty(f, prog, ptr_elem, a);
    for &b in &l.body {
        for s in &f.block(b).stmts {
            let other: Option<&MemRef> = match s {
                Stmt::Assign { rv: Rvalue::Load(mr), .. } => Some(mr),
                Stmt::Store { dst, .. } => Some(dst),
                _ => None,
            };
            let Some(other) = other else { continue };
            if format!("{other:?}") == format!("{a:?}") {
                continue; // the promoted location itself
            }
            if may_alias(prog, pts, ptr_elem, strict, a, a_ty, other) {
                return false;
            }
        }
    }
    true
}

fn memref_elem_ty(
    f: &Function,
    prog: &Program,
    ptr_elem: &HashMap<VarId, Type>,
    mr: &MemRef,
) -> Option<Type> {
    let _ = f;
    match mr.base {
        MemBase::Global(m) => Some(prog.mems[m.index()].elem),
        MemBase::Ptr(p) => ptr_elem.get(&p).copied(),
    }
}

fn may_alias(
    prog: &Program,
    pts: &PointsTo,
    ptr_elem: &HashMap<VarId, Type>,
    strict: bool,
    a: &MemRef,
    a_ty: Option<Type>,
    other: &MemRef,
) -> bool {
    // Region sets.
    let regions = |mr: &MemRef| -> Option<Vec<peak_ir::MemId>> {
        match mr.base {
            MemBase::Global(m) => Some(vec![m]),
            MemBase::Ptr(p) => {
                if pts.is_precise(p) {
                    Some(pts.may_point_to(p, prog.mems.len()))
                } else {
                    None
                }
            }
        }
    };
    match (regions(a), regions(other)) {
        (Some(ra), Some(ro)) => {
            if ra.iter().all(|m| !ro.contains(m)) {
                return false; // disjoint regions
            }
            // Same region: distinct constant subscripts are disjoint
            // (only when both bases are direct globals, where the
            // subscript is the full address).
            if let (
                MemBase::Global(_),
                MemBase::Global(_),
                Operand::Const(Value::I64(x)),
                Operand::Const(Value::I64(y)),
            ) = (a.base, other.base, a.index, other.index)
            {
                if x != y {
                    return false;
                }
            }
            true
        }
        _ => {
            // Unknown pointer on one side: strict aliasing may still
            // disambiguate by element type.
            if strict {
                let o_ty = match other.base {
                    MemBase::Global(m) => Some(prog.mems[m.index()].elem),
                    MemBase::Ptr(p) => ptr_elem.get(&p).copied(),
                };
                if let (Some(t1), Some(t2)) = (a_ty, o_ty) {
                    if t1 != t2 {
                        return false;
                    }
                }
            }
            true
        }
    }
}

/// Apply the promotion of every `(address, has_stores)` candidate in loop
/// `l`, sharing one guard, one landing block, and one flush block.
fn promote(
    f: &mut Function,
    cfg: &Cfg,
    l: &peak_ir::Loop,
    exit: peak_ir::BlockId,
    candidates: &[(MemRef, bool)],
) {
    let header = l.header;
    let pre = cfg.preds[header.index()]
        .iter()
        .copied()
        .find(|p| !l.contains(*p))
        .expect("counted loop has preheader");
    // Element type of each promoted location: look at any access of it.
    let elem_ty_of = |f: &Function, a: &MemRef| -> Type {
        for &b in &l.body {
            for s in &f.block(b).stmts {
                match s {
                    Stmt::Assign { dst, rv: Rvalue::Load(mr) }
                        if format!("{mr:?}") == format!("{a:?}") =>
                    {
                        return f.var_ty(*dst);
                    }
                    Stmt::Store { dst, src } if format!("{dst:?}") == format!("{a:?}") => {
                        return match src {
                            Operand::Var(v) => f.var_ty(*v),
                            Operand::Const(c) => c.ty(),
                        };
                    }
                    _ => {}
                }
            }
        }
        Type::I64
    };
    let vars: Vec<VarId> = candidates
        .iter()
        .map(|(a, _)| {
            let ty = elem_ty_of(f, a);
            f.add_var(format!("prom{}", f.num_vars()), ty)
        })
        .collect();
    // Guard in the preheader: clone the header compare with a fresh temp.
    let Stmt::Assign { rv: cmp_rv, .. } = f.block(header).stmts[0].clone() else {
        unreachable!("canonical header has a compare assign")
    };
    let c0 = f.add_temp(Type::I64);
    // Landing block: initial loads, then enter the loop.
    let landing = f.add_block();
    for ((a, _), &v) in candidates.iter().zip(&vars) {
        f.block_mut(landing).stmts.push(Stmt::Assign { dst: v, rv: Rvalue::Load(*a) });
    }
    f.block_mut(landing).term = Terminator::Jump(header);
    f.block_mut(pre).stmts.push(Stmt::Assign { dst: c0, rv: cmp_rv });
    f.block_mut(pre).term =
        Terminator::Branch { cond: Operand::Var(c0), on_true: landing, on_false: exit };
    // Flush block on the loop's exit edge when any stores were promoted.
    if candidates.iter().any(|(_, st)| *st) {
        let flush = f.add_block();
        for ((a, st), &v) in candidates.iter().zip(&vars) {
            if *st {
                f.block_mut(flush).stmts.push(Stmt::Store { dst: *a, src: Operand::Var(v) });
            }
        }
        f.block_mut(flush).term = Terminator::Jump(exit);
        f.block_mut(header).term.replace_successor(exit, flush);
    }
    // Rewrite in-loop accesses.
    for ((a, _), &v) in candidates.iter().zip(&vars) {
        for &b in &l.body {
            for s in &mut f.block_mut(b).stmts {
                match s {
                    Stmt::Assign { rv, .. } => {
                        if let Rvalue::Load(mr) = rv {
                            if format!("{mr:?}") == format!("{a:?}") {
                                *rv = Rvalue::Use(Operand::Var(v));
                            }
                        }
                    }
                    Stmt::Store { dst, src }
                        if format!("{dst:?}") == format!("{a:?}") => {
                            *s = Stmt::Assign { dst: v, rv: Rvalue::Use(*src) };
                        }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemoryImage};

    /// acc in g[0] updated every iteration — classic promotion target.
    fn build_accumulator(prog: &mut Program) -> peak_ir::FuncId {
        let g = prog.mem_by_name("g").unwrap();
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            let acc = b.load(Type::I64, MemRef::global(g, 0i64));
            let s = b.binary(BinOp::Add, acc, x);
            b.store(MemRef::global(g, 0i64), s);
        });
        b.ret(None);
        prog.add_func(b.finish())
    }

    fn run_and_read(prog: &Program, fid: peak_ir::FuncId, n: i64) -> Value {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        let g = prog.mem_by_name("g").unwrap();
        for i in 0..16 {
            mem.store(a, i, Value::I64(i + 1));
        }
        mem.store(g, 0, Value::I64(1000));
        Interp::default().run(prog, fid, &[Value::I64(n)], &mut mem).unwrap();
        mem.load(g, 0)
    }

    #[test]
    fn accumulator_promoted_and_correct() {
        let mut prog = Program::new();
        prog.add_mem("g", Type::I64, 4);
        prog.add_mem("a", Type::I64, 16);
        let fid = build_accumulator(&mut prog);
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid), &orig, false));
        // Body no longer loads g.
        let f = prog.func(fid);
        let body_g_loads = f.blocks[2]
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { rv: Rvalue::Load(MemRef { base: MemBase::Global(m), .. }), .. } if m.0 == 0))
            .count();
        assert_eq!(body_g_loads, 0, "g[0] load promoted out of the body");
        for n in [0i64, 1, 7, 16] {
            assert_eq!(run_and_read(&orig, fid, n), run_and_read(&prog, fid, n), "n={n}");
        }
    }

    #[test]
    fn zero_trip_loop_leaves_memory_untouched() {
        let mut prog = Program::new();
        prog.add_mem("g", Type::I64, 4);
        prog.add_mem("a", Type::I64, 16);
        let fid = build_accumulator(&mut prog);
        let orig = prog.clone();
        run(prog.func_mut(fid), &orig, false);
        // n = 0: guard must prevent both the initial load and the flush.
        assert_eq!(run_and_read(&prog, fid, 0), Value::I64(1000));
    }

    #[test]
    fn aliasing_variable_store_blocks_promotion() {
        // Same region, variable subscript store: may hit g[0].
        let mut prog = Program::new();
        let g = prog.add_mem("g", Type::I64, 8);
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let acc = b.load(Type::I64, MemRef::global(g, 0i64));
            let s = b.binary(BinOp::Add, acc, 1i64);
            b.store(MemRef::global(g, 0i64), s);
            b.store(MemRef::global(g, i), 7i64); // aliases when i == 0
        });
        b.ret(None);
        let fid = prog.add_func(b.finish());
        let orig = prog.clone();
        assert!(!run(prog.func_mut(fid), &orig, false));
    }

    #[test]
    fn strict_aliasing_enables_promotion_across_typed_pointer() {
        // An f64 store through a ⊤ pointer; the promoted location is i64.
        let build = |prog: &mut Program| -> peak_ir::FuncId {
            let g = prog.mem_by_name("g").unwrap();
            let mut b = FunctionBuilder::new("f", None);
            let n = b.param("n", Type::I64);
            let q = b.param("q", Type::Ptr); // unknown target, stores f64
            let fv = b.param("fv", Type::F64);
            let i = b.var("i", Type::I64);
            b.for_loop(i, 0i64, n, 1, |b| {
                let acc = b.load(Type::I64, MemRef::global(g, 0i64));
                let s = b.binary(BinOp::Add, acc, 1i64);
                b.store(MemRef::global(g, 0i64), s);
                b.store(MemRef::ptr(q, i), fv); // ⊤ pointer, f64
            });
            b.ret(None);
            prog.add_func(b.finish())
        };
        let mut p1 = Program::new();
        p1.add_mem("g", Type::I64, 4);
        let f1 = build(&mut p1);
        let orig1 = p1.clone();
        assert!(
            !run(p1.func_mut(f1), &orig1, false),
            "without strict aliasing the ⊤ store blocks promotion"
        );
        let mut p2 = Program::new();
        p2.add_mem("g", Type::I64, 4);
        let f2 = build(&mut p2);
        let orig2 = p2.clone();
        assert!(
            run(p2.func_mut(f2), &orig2, true),
            "strict aliasing assumes i64/f64 do not alias"
        );
    }

    #[test]
    fn read_only_promotion_has_no_flush() {
        let mut prog = Program::new();
        let g = prog.add_mem("g", Type::I64, 4);
        let a = prog.add_mem("a", Type::I64, 16);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let k = b.load(Type::I64, MemRef::global(g, 0i64)); // invariant load
            let x = b.load(Type::I64, MemRef::global(a, i));
            let t = b.binary(BinOp::Mul, x, k);
            b.binary_into(acc, BinOp::Add, acc, t);
            let k2 = b.load(Type::I64, MemRef::global(g, 0i64)); // second access
            b.binary_into(acc, BinOp::Add, acc, k2);
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid), &orig, false));
        // No flush block: store count unchanged.
        let f = prog.func(fid);
        let stores = f
            .block_ids()
            .flat_map(|bb| f.block(bb).stmts.iter())
            .filter(|s| matches!(s, Stmt::Store { .. }))
            .count();
        assert_eq!(stores, 0);
        // Equivalence.
        for n in [0i64, 3] {
            let mut m1 = MemoryImage::new(&orig);
            let mut m2 = MemoryImage::new(&prog);
            let am = orig.mem_by_name("a").unwrap();
            let gm = orig.mem_by_name("g").unwrap();
            for i in 0..16 {
                m1.store(am, i, Value::I64(i));
                m2.store(am, i, Value::I64(i));
            }
            m1.store(gm, 0, Value::I64(3));
            m2.store(gm, 0, Value::I64(3));
            let r1 = Interp::default().run(&orig, fid, &[Value::I64(n)], &mut m1).unwrap();
            let r2 = Interp::default().run(&prog, fid, &[Value::I64(n)], &mut m2).unwrap();
            assert_eq!(r1.ret, r2.ret, "n={n}");
        }
        let _ = (g, a);
    }
}
