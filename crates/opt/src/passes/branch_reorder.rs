//! Static branch layout (GCC `-freorder-blocks`).
//!
//! The machine models charge a taken-branch fetch penalty for branching to
//! the `on_true` arm (the fall-through arm is `on_false`; see
//! `peak-sim::exec`). This pass swaps branch arms — negating the condition
//! when that is exact — so the statically likelier arm falls through:
//! loop-internal targets beat loop exits, and forward joins beat returns.

use crate::util::single_def_sites;
use peak_ir::{Cfg, Dominators, Function, LoopForest, Operand, Rvalue, Stmt, Terminator};

/// Run branch reordering. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let sites = single_def_sites(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let Terminator::Branch { cond, on_true, on_false } = f.block(b).term.clone() else {
            continue;
        };
        // Heuristic frequency: deeper loop nesting = hotter; a back edge
        // (target dominates source) is hottest of all.
        let score = |t: peak_ir::BlockId| -> i64 {
            let mut s = forest.depth_of(t) as i64 * 10;
            if dom.dominates(t, b) {
                s += 100; // back edge: loop continues
            }
            if matches!(f.block(t).term, Terminator::Return(_)) {
                s -= 5; // returns are cold-ish
            }
            s
        };
        if score(on_true) <= score(on_false) {
            continue; // likely arm already falls through
        }
        // Swap arms; requires negating the condition. Only exact for
        // integer comparisons produced by a single-def var we can rewrite,
        // or by wrapping in an Eq-0 test otherwise (costs one statement —
        // only profitable when the cond is a rewritable comparison, so we
        // restrict to that case).
        let Operand::Var(cv) = cond else { continue };
        let Some(&(db, dsi)) = sites.get(&cv) else { continue };
        // The comparison must feed only this branch (conservatively: the
        // var is used exactly once, as this branch's condition).
        if count_uses(f, cv) != 1 {
            continue;
        }
        let Stmt::Assign { rv: Rvalue::Binary(op, a, bb), .. } = &f.block(db).stmts[dsi] else {
            continue;
        };
        let Some(neg) = op.negated() else { continue };
        let (a, bb) = (*a, *bb);
        let Stmt::Assign { rv, .. } = &mut f.block_mut(db).stmts[dsi] else { unreachable!() };
        *rv = Rvalue::Binary(neg, a, bb);
        f.block_mut(b).term =
            Terminator::Branch { cond, on_true: on_false, on_false: on_true };
        changed = true;
    }
    changed
}

fn count_uses(f: &Function, v: peak_ir::VarId) -> usize {
    let mut n = 0;
    let mut uses = Vec::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            uses.clear();
            s.uses(&mut uses);
            n += uses.iter().filter(|&&u| u == v).count();
        }
        uses.clear();
        f.block(b).term.uses(&mut uses);
        n += uses.iter().filter(|&&u| u == v).count();
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemoryImage, Program, Type, Value};

    #[test]
    fn loop_header_branch_flipped_so_body_falls_through() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        // Builder emits: br (i<n) ? body : exit — body on the taken arm.
        assert!(run(&mut f));
        match &f.blocks[1].term {
            Terminator::Branch { on_true, on_false, .. } => {
                assert_eq!(on_true.index(), 4, "exit now on taken arm");
                assert_eq!(on_false.index(), 2, "body now falls through");
            }
            t => panic!("{t:?}"),
        }
        // Condition negated to i >= n.
        assert!(matches!(
            &f.blocks[1].stmts[0],
            Stmt::Assign { rv: Rvalue::Binary(BinOp::Ge, ..), .. }
        ));
    }

    #[test]
    fn semantics_preserved_after_flip() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        let mut optimized = prog.clone();
        run(optimized.func_mut(fid));
        for input in [0i64, 1, 7] {
            let mut m1 = MemoryImage::new(&prog);
            let mut m2 = MemoryImage::new(&optimized);
            let r1 = Interp::default().run(&prog, fid, &[Value::I64(input)], &mut m1).unwrap();
            let r2 = Interp::default()
                .run(&optimized, fid, &[Value::I64(input)], &mut m2)
                .unwrap();
            assert_eq!(r1.ret, r2.ret, "n={input}");
        }
    }

    #[test]
    fn multi_use_condition_untouched() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.copy(i, 0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        let c = b.binary(BinOp::Lt, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        // Second use of c: now flipping would require more care — skipped.
        let r = b.binary(BinOp::Add, c, 1i64);
        b.binary_into(i, BinOp::Add, i, r);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn float_comparison_not_negated() {
        // fle negation is not NaN-safe; the pass must leave it alone.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::F64);
        let i = b.var("i", Type::I64);
        b.copy(i, 0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        let lim = b.unary(peak_ir::UnOp::IntToF, i);
        let c = b.binary(BinOp::FLt, lim, x);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary_into(i, BinOp::Add, i, 1i64);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }
}
