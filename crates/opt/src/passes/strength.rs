//! Strength reduction of induction-variable multiplications, plus the
//! companion induction-variable elimination pass.
//!
//! For a canonical counted loop `for (iv = start; iv < end; iv += step)`,
//! an in-body computation `t = iv * c` (`c` loop-invariant constant) is
//! replaced by a new recurrence `s`: `s = start*c` in the preheader,
//! `s += step*c` in the latch, and the multiply becomes a copy. IVE then
//! removes an `iv` whose only remaining uses are its own increment and the
//! loop exit test, rewriting the test onto the strength-reduced variable.

use peak_ir::{
    BinOp, Cfg, Dominators, Function, LoopForest, Operand, Rvalue, Stmt, Type, Value,
    VarId,
};

/// Run strength reduction. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::build(f);
        let dom = Dominators::build(f, &cfg);
        let forest = LoopForest::build(f, &cfg, &dom);
        let mut moved = false;
        for li in 0..forest.loops.len() {
            let Some(cl) = peak_ir::recognize_counted(f, &cfg, &forest.loops[li]) else {
                continue;
            };
            let l = &forest.loops[li];
            let latch = l.latches[0];
            // Preheader (guaranteed unique by recognize_counted).
            let pre = cfg.preds[l.header.index()]
                .iter()
                .copied()
                .find(|p| !l.contains(*p))
                .expect("counted loop has preheader");
            // Find `t = mul iv, const` in the body.
            let mut target: Option<(peak_ir::BlockId, usize, VarId, i64)> = None;
            'outer: for &b in &l.body {
                if b == l.header {
                    continue;
                }
                for (si, s) in f.block(b).stmts.iter().enumerate() {
                    if let Stmt::Assign { dst, rv: Rvalue::Binary(BinOp::Mul, a, c) } = s {
                        let k = match (a, c) {
                            (Operand::Var(v), Operand::Const(Value::I64(k))) if *v == cl.iv => {
                                Some(*k)
                            }
                            (Operand::Const(Value::I64(k)), Operand::Var(v)) if *v == cl.iv => {
                                Some(*k)
                            }
                            _ => None,
                        };
                        if let Some(k) = k {
                            target = Some((b, si, *dst, k));
                            break 'outer;
                        }
                    }
                }
            }
            let Some((tb, tsi, tdst, k)) = target else { continue };
            // New recurrence variable.
            let s_var = f.add_var(format!("sr{}", f.num_vars()), Type::I64);
            // Preheader: s = start * k (start is const or entry var).
            let init_rv = match cl.start {
                Operand::Const(Value::I64(st)) => {
                    Rvalue::Use(Operand::const_i64(st.wrapping_mul(k)))
                }
                start => Rvalue::Binary(BinOp::Mul, start, Operand::const_i64(k)),
            };
            f.block_mut(pre).stmts.push(Stmt::Assign { dst: s_var, rv: init_rv });
            // Latch: s += step*k, inserted before the iv update so the pair
            // stays adjacent (scheduling can still separate them later).
            f.block_mut(latch).stmts.insert(
                0,
                Stmt::Assign {
                    dst: s_var,
                    rv: Rvalue::Binary(
                        BinOp::Add,
                        Operand::Var(s_var),
                        Operand::const_i64(cl.step.wrapping_mul(k)),
                    ),
                },
            );
            // Replace the multiply with a copy.
            let Stmt::Assign { rv, .. } = &mut f.block_mut(tb).stmts[tsi] else { unreachable!() };
            *rv = Rvalue::Use(Operand::Var(s_var));
            let _ = tdst;
            moved = true;
        }
        changed |= moved;
        if !moved {
            return changed;
        }
    }
}

/// Run induction-variable elimination. Returns true if anything changed.
///
/// If after strength reduction the only uses of `iv` are its latch
/// increment and the header comparison, and a strength-reduced recurrence
/// `s = iv*k (k > 0)` exists, the comparison `iv < end` becomes
/// `s < end*k` (bound computed in the preheader) and `iv` is deleted.
pub fn run_ive(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let mut changed = false;
    for li in 0..forest.loops.len() {
        let Some(cl) = peak_ir::recognize_counted(f, &cfg, &forest.loops[li]) else { continue };
        let l = &forest.loops[li];
        let latch = l.latches[0];
        let pre = cfg.preds[l.header.index()]
            .iter()
            .copied()
            .find(|p| !l.contains(*p))
            .expect("counted loop has preheader");
        // Find a recurrence var s with latch update `s = s + d` where
        // d = step*k for some k>0, and preheader init `s = start*k`.
        // We look for the shape the strength-reduction pass emits.
        let mut rec: Option<(VarId, i64)> = None; // (s, k)
        for s in &f.block(latch).stmts {
            if let Stmt::Assign {
                dst,
                rv: Rvalue::Binary(BinOp::Add, Operand::Var(v), Operand::Const(Value::I64(d))),
            } = s
            {
                if dst == v && *dst != cl.iv && *d % cl.step == 0 {
                    let k = *d / cl.step;
                    if k > 0 {
                        rec = Some((*dst, k));
                        break;
                    }
                }
            }
        }
        let Some((s_var, k)) = rec else { continue };
        // iv uses: count all uses; allowed = latch increment + header cmp.
        let mut use_count = 0usize;
        let mut uses = Vec::new();
        for b in f.block_ids() {
            for s in &f.block(b).stmts {
                uses.clear();
                s.uses(&mut uses);
                use_count += uses.iter().filter(|&&u| u == cl.iv).count();
            }
            uses.clear();
            f.block(b).term.uses(&mut uses);
            use_count += uses.iter().filter(|&&u| u == cl.iv).count();
        }
        // Expected: header cmp (1) + latch increment's own read (1).
        if use_count != 2 {
            continue;
        }
        // Rewrite header comparison: find `c = lt iv, end` (last stmt).
        let header = l.header;
        let Some(Stmt::Assign { dst: cmp_dst, rv: Rvalue::Binary(BinOp::Lt, Operand::Var(iv2), end) }) =
            f.block(header).stmts.last().cloned()
        else {
            continue;
        };
        if iv2 != cl.iv {
            continue;
        }
        // bound = end * k in the preheader.
        let bound = f.add_var(format!("ivb{}", f.num_vars()), Type::I64);
        let bound_rv = match end {
            Operand::Const(Value::I64(e)) => Rvalue::Use(Operand::const_i64(e.wrapping_mul(k))),
            e => Rvalue::Binary(BinOp::Mul, e, Operand::const_i64(k)),
        };
        f.block_mut(pre).stmts.push(Stmt::Assign { dst: bound, rv: bound_rv });
        let last = f.block(header).stmts.len() - 1;
        f.block_mut(header).stmts[last] = Stmt::Assign {
            dst: cmp_dst,
            rv: Rvalue::Binary(BinOp::Lt, Operand::Var(s_var), Operand::Var(bound)),
        };
        // Delete iv's increment in the latch and its init in the preheader.
        f.block_mut(latch).stmts.retain(|s| s.def() != Some(cl.iv));
        f.block_mut(pre).stmts.retain(|s| s.def() != Some(cl.iv));
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Interp, MemRef, MemoryImage, Program, Type, Value};

    /// acc += a[i*3] for i in 0..n — classic strength-reduction target.
    fn build(prog: &mut Program) -> peak_ir::FuncId {
        let a = prog.mem_by_name("a").expect("region declared by caller");
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let idx = b.binary(BinOp::Mul, i, 3i64);
            let x = b.load(Type::I64, MemRef::global(a, idx));
            b.binary_into(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(acc.into()));
        prog.add_func(b.finish())
    }

    fn fresh() -> (Program, peak_ir::FuncId) {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 64);
        let fid = build(&mut prog);
        (prog, fid)
    }

    fn result(prog: &Program, fid: peak_ir::FuncId, n: i64) -> Option<Value> {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        for i in 0..64 {
            mem.store(a, i, Value::I64(i * 10));
        }
        Interp::default().run(prog, fid, &[Value::I64(n)], &mut mem).unwrap().ret
    }

    #[test]
    fn multiply_replaced_by_recurrence() {
        let (mut prog, fid) = fresh();
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        // Body no longer multiplies.
        let f = prog.func(fid);
        let body_muls = f.blocks[2]
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { rv: Rvalue::Binary(BinOp::Mul, ..), .. }))
            .count();
        assert_eq!(body_muls, 0);
        for n in [0i64, 1, 5, 21] {
            assert_eq!(result(&orig, fid, n), result(&prog, fid, n), "n={n}");
        }
    }

    #[test]
    fn ive_removes_dead_induction_variable() {
        let (mut prog, fid) = fresh();
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        // After strength reduction, iv's remaining uses are the loop
        // bookkeeping + the (now copied-from) recurrence... the multiply
        // became a copy of sr, so iv has exactly cmp+incr uses.
        assert!(run_ive(prog.func_mut(fid)), "iv eliminated");
        for n in [0i64, 1, 5, 21] {
            assert_eq!(result(&orig, fid, n), result(&prog, fid, n), "n={n}");
        }
        // iv increment gone from the latch.
        let f = prog.func(fid);
        assert!(
            f.blocks[3].stmts.iter().all(|s| {
                !matches!(s, Stmt::Assign { rv: Rvalue::Binary(BinOp::Add, Operand::Var(_), Operand::Const(Value::I64(1))), .. })
            }),
            "iv increment must be gone from the latch"
        );
    }

    #[test]
    fn iv_with_extra_uses_not_eliminated() {
        // acc += i as well: iv has a third use, IVE must bail.
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 64);
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let idx = b.binary(BinOp::Mul, i, 3i64);
            let x = b.load(Type::I64, MemRef::global(a, idx));
            b.binary_into(acc, BinOp::Add, acc, x);
            b.binary_into(acc, BinOp::Add, acc, i); // extra use of i
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        assert!(run(prog.func_mut(fid)));
        assert!(!run_ive(prog.func_mut(fid)));
    }

    #[test]
    fn non_iv_multiply_untouched() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let k = b.param("k", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let t = b.binary(BinOp::Mul, k, 3i64); // k, not iv
            b.binary_into(acc, BinOp::Add, acc, t);
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        assert!(!run(prog.func_mut(fid)));
    }
}
