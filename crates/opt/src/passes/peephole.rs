//! Peephole cleanups: local patterns that other passes expose.
//!
//! * `select c ? x : x` → `x`
//! * `neg (neg x)` / `not (not x)` → `x` (through single-def chains)
//! * comparison with constant on the left → swapped to the right
//!   (canonical form helps CSE hit more often)
//! * `select c ? 1 : 0` where `c` is a comparison result → `c`

use crate::util::single_def_sites;
use peak_ir::{Function, Operand, Rvalue, Stmt, UnOp, Value};

/// Run peephole simplification. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let sites = single_def_sites(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        for si in 0..f.block(b).stmts.len() {
            let Stmt::Assign { rv, .. } = &f.block(b).stmts[si] else { continue };
            let new_rv: Option<Rvalue> = match rv {
                Rvalue::Select { cond: _, on_true, on_false } if on_true == on_false => {
                    Some(Rvalue::Use(*on_true))
                }
                Rvalue::Select {
                    cond: c @ Operand::Var(_),
                    on_true: Operand::Const(Value::I64(1)),
                    on_false: Operand::Const(Value::I64(0)),
                } => {
                    // Only when c is known to be 0/1 (a comparison result).
                    if operand_is_bool(f, &sites, c) {
                        Some(Rvalue::Use(*c))
                    } else {
                        None
                    }
                }
                Rvalue::Unary(op @ (UnOp::Neg | UnOp::Not), Operand::Var(v)) => {
                    // Double negation through a single-def chain in the
                    // same block, source unchanged in between.
                    match sites.get(v) {
                        Some(&(db, dsi)) if db == b && dsi < si => {
                            match &f.block(db).stmts[dsi] {
                                Stmt::Assign { rv: Rvalue::Unary(iop, inner), .. }
                                    if iop == op =>
                                {
                                    let stable = match inner {
                                        Operand::Var(iv) => !f.block(b).stmts[dsi + 1..si]
                                            .iter()
                                            .any(|s| s.def() == Some(*iv)),
                                        Operand::Const(_) => true,
                                    };
                                    stable.then_some(Rvalue::Use(*inner))
                                }
                                _ => None,
                            }
                        }
                        _ => None,
                    }
                }
                Rvalue::Binary(op, a @ Operand::Const(_), bop @ Operand::Var(_)) => {
                    // Canonicalize: constant to the right when possible.
                    if let Some(sw) = op.swapped() {
                        Some(Rvalue::Binary(sw, *bop, *a))
                    } else if op.is_commutative() {
                        Some(Rvalue::Binary(*op, *bop, *a))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(nrv) = new_rv {
                let Stmt::Assign { rv, .. } = &mut f.block_mut(b).stmts[si] else {
                    unreachable!()
                };
                *rv = nrv;
                changed = true;
            }
        }
    }
    changed
}

fn operand_is_bool(
    f: &Function,
    sites: &std::collections::HashMap<peak_ir::VarId, (peak_ir::BlockId, usize)>,
    op: &Operand,
) -> bool {
    let Operand::Var(v) = op else { return false };
    let Some(&(b, si)) = sites.get(v) else { return false };
    matches!(
        &f.block(b).stmts[si],
        Stmt::Assign { rv: Rvalue::Binary(bop, ..), .. } if bop.is_comparison()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn select_same_arms_collapses() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let c = b.param("c", Type::I64);
        let t = b.temp(Type::I64);
        b.assign(t, Rvalue::Select { cond: c.into(), on_true: p.into(), on_false: p.into() });
        b.ret(Some(t.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            &f.blocks[0].stmts[0],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == p
        ));
    }

    #[test]
    fn select_bool_of_comparison_collapses() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let c = b.binary(BinOp::Lt, p, 5i64);
        let t = b.temp(Type::I64);
        b.assign(t, Rvalue::Select { cond: c.into(), on_true: 1i64.into(), on_false: 0i64.into() });
        b.ret(Some(t.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            &f.blocks[0].stmts[1],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == c
        ));
    }

    #[test]
    fn select_bool_of_unknown_not_collapsed() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64); // p may be any integer, not 0/1
        let t = b.temp(Type::I64);
        b.assign(t, Rvalue::Select { cond: p.into(), on_true: 1i64.into(), on_false: 0i64.into() });
        b.ret(Some(t.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn double_negation_removed() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let n1 = b.unary(UnOp::Neg, p);
        let n2 = b.unary(UnOp::Neg, n1);
        b.ret(Some(n2.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            &f.blocks[0].stmts[1],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == p
        ));
    }

    #[test]
    fn comparison_canonicalized() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let t = b.temp(Type::I64);
        b.assign(t, Rvalue::Binary(BinOp::Lt, 5i64.into(), p.into()));
        b.ret(Some(t.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            &f.blocks[0].stmts[0],
            Stmt::Assign { rv: Rvalue::Binary(BinOp::Gt, Operand::Var(_), Operand::Const(_)), .. }
        ));
    }
}
