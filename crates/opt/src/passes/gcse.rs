//! Global common-subexpression elimination (dominator-based value reuse),
//! GCC's `-fgcse`.
//!
//! Restricted to *pure* expressions whose operands are constants or
//! single-def variables: if the same expression is computed at a site that
//! dominates another, the second computation is replaced by a copy. Loads
//! are handled by local CSE and register promotion instead.

use crate::util::{pure_expr_key, single_def_sites, OpKey};
use peak_ir::{Cfg, Dominators, Function, Operand, Rvalue, Stmt, VarId};
use std::collections::HashMap;

/// Run GCSE. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let sites = single_def_sites(f);
    let is_stable = |op: &Operand| -> bool {
        match op {
            Operand::Const(_) => true,
            Operand::Var(v) => {
                sites.contains_key(v)
                    || (f.params.contains(v)
                        && !f
                            .block_ids()
                            .any(|b| f.block(b).stmts.iter().any(|s| s.def() == Some(*v))))
            }
        }
    };
    // First computation of each key, in RPO order: (block, rpo idx, var).
    let mut avail: HashMap<(u32, OpKey, OpKey, OpKey), (peak_ir::BlockId, VarId)> = HashMap::new();
    let mut rewrites: Vec<(peak_ir::BlockId, usize, VarId)> = Vec::new();
    for &b in &cfg.rpo {
        for (si, s) in f.block(b).stmts.iter().enumerate() {
            let Stmt::Assign { dst, rv } = s else { continue };
            let Some(key) = pure_expr_key(rv) else { continue };
            if matches!(rv, Rvalue::Use(_)) {
                continue; // copies are copy-propagation's business
            }
            // All operands must be stable (value never changes) AND their
            // defining sites must dominate this computation — otherwise an
            // operand could still hold its entry value here but be defined
            // by the time a dominated reuse site runs.
            let mut uses = Vec::new();
            rv.uses(&mut uses);
            let ok = uses.iter().all(|v| {
                if !is_stable(&Operand::Var(*v)) {
                    return false;
                }
                match sites.get(v) {
                    Some(&(db, dsi)) => {
                        if db == b {
                            dsi < si
                        } else {
                            dom.dominates(db, b)
                        }
                    }
                    None => true, // unmodified parameter
                }
            });
            if !ok {
                continue;
            }
            match avail.get(&key) {
                Some(&(db, dv)) if sites.contains_key(&dv)
                    // Reuse only if the earlier def strictly dominates this
                    // site (same-block handled by local CSE; require
                    // different block to keep the check simple and sound).
                    && db != b && dom.dominates(db, b) => {
                        rewrites.push((b, si, dv));
                        continue;
                    }
                _ => {}
            }
            // Record as available if dst is single-def (its value is this
            // expression forever after).
            if sites.contains_key(dst) {
                avail.entry(key).or_insert((b, *dst));
            }
        }
    }
    let changed = !rewrites.is_empty();
    for (b, si, src) in rewrites {
        let Stmt::Assign { rv, .. } = &mut f.block_mut(b).stmts[si] else { unreachable!() };
        *rv = Rvalue::Use(Operand::Var(src));
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn expression_reused_across_dominated_blocks() {
        // entry computes p*p; both branch arms recompute it.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let x = b.binary(BinOp::Mul, p, p);
        let r = b.var("r", Type::I64);
        b.if_then_else(
            x,
            |b| {
                let y = b.binary(BinOp::Mul, p, p);
                b.binary_into(r, BinOp::Add, y, 1i64);
            },
            |b| {
                let z = b.binary(BinOp::Mul, p, p);
                b.binary_into(r, BinOp::Add, z, 2i64);
            },
        );
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        for arm in [1usize, 2] {
            assert!(
                matches!(
                    &f.blocks[arm].stmts[0],
                    Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == x
                ),
                "arm {arm}: {:?}",
                f.blocks[arm].stmts[0]
            );
        }
    }

    #[test]
    fn sibling_blocks_do_not_share() {
        // The two arms of a diamond compute the same expr; neither
        // dominates the other, so no reuse.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let r = b.var("r", Type::I64);
        b.if_then_else(
            p,
            |b| {
                let y = b.binary(BinOp::Mul, p, p);
                b.copy(r, y);
            },
            |b| {
                let z = b.binary(BinOp::Mul, p, p);
                b.copy(r, z);
            },
        );
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn unstable_operand_not_reused() {
        // x redefined in the loop; i*i inside must not reuse the preheader
        // computation.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        let pre = b.binary(BinOp::Mul, i, i); // i = 0 here
        b.for_loop(i, 0i64, n, 1, |b| {
            let sq = b.binary(BinOp::Mul, i, i); // varies per iteration
            b.binary_into(acc, BinOp::Add, acc, sq);
        });
        let _ = pre;
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        assert!(!run(&mut f), "i is multi-def: no reuse allowed");
    }

    #[test]
    fn loads_not_gcsed() {
        let mut prog = peak_ir::Program::new();
        let a = prog.add_mem("a", Type::I64, 8);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let x = b.load(Type::I64, peak_ir::MemRef::global(a, 0i64));
        let r = b.var("r", Type::I64);
        b.if_then(p, |b| {
            let y = b.load(Type::I64, peak_ir::MemRef::global(a, 0i64));
            b.copy(r, y);
        });
        let _ = x;
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(!run(&mut f), "loads are out of scope for GCSE");
    }
}
