//! Loop unrolling: partial unrolling with a remainder loop, full unrolling
//! of short constant-trip loops, and first-iteration peeling.
//!
//! All three operate on canonical counted loops (see
//! [`peak_ir::recognize_counted`]) whose *iteration unit* — every loop
//! block except the header — has no exits out of the loop other than
//! through the header. The unit is cloned with
//! [`crate::util::clone_subgraph`]; loop-carried variables stay correct
//! because copies execute strictly in iteration order.

use crate::util::clone_subgraph;
use peak_ir::{
    BinOp, BlockId, Cfg, Dominators, Function, LoopForest, Operand, Rvalue, Stmt, Terminator,
    Type, Value,
};
use std::collections::HashMap;

/// Partial unroll factor.
pub const UNROLL_FACTOR: i64 = 4;
/// Maximum statements in the iteration unit for partial unrolling.
pub const UNROLL_MAX_UNIT: usize = 24;
/// Maximum trips for full unrolling.
pub const FULL_UNROLL_MAX_TRIPS: i64 = 8;
/// Maximum statements in the unit for full unrolling.
pub const FULL_UNROLL_MAX_UNIT: usize = 16;
/// Maximum statements in the unit for peeling.
pub const PEEL_MAX_UNIT: usize = 12;

/// The iteration unit of a canonical loop: all blocks except the header,
/// verified to exit only via the header. Returns (unit blocks, body entry).
fn iteration_unit(f: &Function, l: &peak_ir::Loop) -> Option<(Vec<BlockId>, BlockId)> {
    let header = f.block(l.header);
    let Terminator::Branch { on_true, .. } = header.term else { return None };
    let unit: Vec<BlockId> = l.body.iter().copied().filter(|&b| b != l.header).collect();
    for &b in &unit {
        for s in f.block(b).term.successors() {
            if !l.contains(s) {
                return None; // early exit (break) — bail
            }
        }
    }
    Some((unit, on_true))
}

fn unit_size(f: &Function, unit: &[BlockId]) -> usize {
    unit.iter().map(|&b| f.block(b).stmts.len() + 1).sum()
}

/// Partial unrolling by [`UNROLL_FACTOR`] with a remainder loop. Applies to
/// at most one loop per call (the pipeline loops passes to fixpoint);
/// nested loops are handled innermost-first by loop-forest order.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    // Innermost loops first (deepest depth).
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));
    for li in order {
        let l = &forest.loops[li];
        let Some(cl) = peak_ir::recognize_counted(f, &cfg, l) else { continue };
        let Some((unit, body_entry)) = iteration_unit(f, l) else { continue };
        if unit_size(f, &unit) > UNROLL_MAX_UNIT {
            continue;
        }
        // Skip already-unrolled loops (marker: header compare against a
        // shifted bound). Recognize by a dedicated variable name.
        if f.vars.iter().any(|v| v.name == format!("ur_guard_{}", l.header.0)) {
            continue;
        }
        let header = l.header;
        let u = UNROLL_FACTOR;
        // New unrolled-guard header:
        //   t = iv + (U-1)*step ; c = t < end ; br c ? unit1 : header
        let uheader = f.add_block();
        let t = f.add_var(format!("ur_guard_{}", header.0), Type::I64);
        let c = f.add_temp(Type::I64);
        f.block_mut(uheader).stmts.push(Stmt::Assign {
            dst: t,
            rv: Rvalue::Binary(
                BinOp::Add,
                Operand::Var(cl.iv),
                Operand::const_i64((u - 1) * cl.step),
            ),
        });
        f.block_mut(uheader).stmts.push(Stmt::Assign {
            dst: c,
            rv: Rvalue::Binary(BinOp::Lt, Operand::Var(t), cl.end),
        });
        // Clone U units, chained; the last one jumps back to uheader.
        let mut entries: Vec<BlockId> = Vec::new();
        let mut maps: Vec<HashMap<BlockId, BlockId>> = Vec::new();
        for _ in 0..u {
            let map = clone_subgraph(f, &unit, &HashMap::new());
            entries.push(map[&body_entry]);
            maps.push(map);
        }
        for (i, map) in maps.iter().enumerate() {
            let next = if i + 1 < u as usize { entries[i + 1] } else { uheader };
            // Rewrite each cloned block's header edges to `next`.
            for (&_old, &new) in map {
                f.block_mut(new).term.replace_successor(header, next);
            }
        }
        f.block_mut(uheader).term =
            Terminator::Branch { cond: Operand::Var(c), on_true: entries[0], on_false: header };
        // Retarget the preheader to the unrolled guard; the original loop
        // remains as the remainder loop.
        let pre = cfg.preds[header.index()]
            .iter()
            .copied()
            .find(|p| !l.contains(*p))
            .expect("counted loop has preheader");
        f.block_mut(pre).term.replace_successor(header, uheader);
        return true;
    }
    false
}

/// Full unrolling of constant-trip loops with `trips ≤` the threshold.
pub fn run_full(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));
    for li in order {
        let l = &forest.loops[li];
        let Some(cl) = peak_ir::recognize_counted(f, &cfg, l) else { continue };
        let (Operand::Const(Value::I64(start)), Operand::Const(Value::I64(end))) =
            (cl.start, cl.end)
        else {
            continue;
        };
        let trips = ((end - start).max(0) + cl.step - 1) / cl.step;
        if trips > FULL_UNROLL_MAX_TRIPS {
            continue;
        }
        let Some((unit, body_entry)) = iteration_unit(f, l) else { continue };
        if unit_size(f, &unit) > FULL_UNROLL_MAX_UNIT {
            continue;
        }
        // Exit target: header's on_false arm.
        let Terminator::Branch { on_false: exit, .. } = f.block(l.header).term else {
            continue;
        };
        let header = l.header;
        let pre = cfg.preds[header.index()]
            .iter()
            .copied()
            .find(|p| !l.contains(*p))
            .expect("counted loop has preheader");
        if trips == 0 {
            f.block_mut(pre).term.replace_successor(header, exit);
            return true;
        }
        let mut entries = Vec::new();
        let mut maps = Vec::new();
        for _ in 0..trips {
            let map = clone_subgraph(f, &unit, &HashMap::new());
            entries.push(map[&body_entry]);
            maps.push(map);
        }
        for (i, map) in maps.iter().enumerate() {
            let next = if i + 1 < trips as usize { entries[i + 1] } else { exit };
            for (&_old, &new) in map {
                f.block_mut(new).term.replace_successor(header, next);
            }
        }
        f.block_mut(pre).term.replace_successor(header, entries[0]);
        return true;
    }
    false
}

/// Peel the first iteration of a counted loop: a guarded copy of the unit
/// runs before the (unchanged) loop.
pub fn run_peel(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    for li in 0..forest.loops.len() {
        let l = &forest.loops[li];
        let Some(_cl) = peak_ir::recognize_counted(f, &cfg, l) else { continue };
        let Some((unit, body_entry)) = iteration_unit(f, l) else { continue };
        if unit_size(f, &unit) > PEEL_MAX_UNIT {
            continue;
        }
        // Don't re-peel (marker var).
        if f.vars.iter().any(|v| v.name == format!("peel_{}", l.header.0)) {
            continue;
        }
        let header = l.header;
        let pre = cfg.preds[header.index()]
            .iter()
            .copied()
            .find(|p| !l.contains(*p))
            .expect("counted loop has preheader");
        // Clone the header (its test guards the peeled copy) and the unit.
        let pheader = f.add_block();
        let hstmts = f.block(header).stmts.clone();
        let Terminator::Branch { cond, on_false: exit, .. } = f.block(header).term.clone()
        else {
            continue;
        };
        let unit_map = clone_subgraph(f, &unit, &HashMap::new());
        // Peeled unit's back edge goes to the real header.
        for (&_old, &new) in &unit_map {
            f.block_mut(new).term.replace_successor(header, header);
        }
        let pb = f.block_mut(pheader);
        pb.stmts = hstmts;
        pb.term = Terminator::Branch { cond, on_true: unit_map[&body_entry], on_false: exit };
        f.block_mut(pre).term.replace_successor(header, pheader);
        // Marker so the fixpoint driver doesn't peel forever.
        let _marker = f.add_var(format!("peel_{}", header.0), Type::I64);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Interp, MemRef, MemoryImage, Program, Type, Value};

    fn sum_loop(prog: &mut Program, bound: Option<i64>) -> peak_ir::FuncId {
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        let end: Operand = match bound {
            Some(c) => c.into(),
            None => n.into(),
        };
        b.for_loop(i, 0i64, end, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            b.binary_into(acc, BinOp::Add, acc, x);
            b.if_then(x, |b| {
                b.binary_into(acc, BinOp::Add, acc, 1i64);
            });
        });
        b.ret(Some(acc.into()));
        prog.add_func(b.finish())
    }

    fn eval(prog: &Program, fid: peak_ir::FuncId, n: i64) -> (Option<Value>, u64) {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        for i in 0..32 {
            mem.store(a, i, Value::I64(if i % 3 == 0 { 0 } else { i }));
        }
        let out = Interp::default().run(prog, fid, &[Value::I64(n)], &mut mem).unwrap();
        (out.ret, out.steps)
    }

    #[test]
    fn partial_unroll_preserves_semantics() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let fid = sum_loop(&mut prog, None);
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        for n in [0i64, 1, 3, 4, 5, 8, 17, 31] {
            assert_eq!(eval(&orig, fid, n).0, eval(&prog, fid, n).0, "n={n}");
        }
    }

    #[test]
    fn partial_unroll_reduces_branch_steps() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let fid = sum_loop(&mut prog, None);
        let orig = prog.clone();
        run(prog.func_mut(fid));
        // Fewer terminator steps: unrolled version executes fewer header
        // compares. Steps include statements too, so compare totals.
        let (_, s_orig) = eval(&orig, fid, 28);
        let (_, s_unrolled) = eval(&prog, fid, 28);
        assert!(
            s_unrolled < s_orig,
            "unrolled {s_unrolled} should beat original {s_orig}"
        );
    }

    #[test]
    fn unroll_is_idempotent_per_loop() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let fid = sum_loop(&mut prog, None);
        assert!(run(prog.func_mut(fid)));
        assert!(!run(prog.func_mut(fid)), "same loop not unrolled twice");
    }

    #[test]
    fn full_unroll_of_constant_loop() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let fid = sum_loop(&mut prog, Some(6));
        let orig = prog.clone();
        assert!(run_full(prog.func_mut(fid)));
        let (r1, _) = eval(&orig, fid, 0);
        let (r2, s2) = eval(&prog, fid, 0);
        assert_eq!(r1, r2);
        // No loop left: no back edges; step count strictly smaller than
        // original (header tests gone).
        let (_, s1) = eval(&orig, fid, 0);
        assert!(s2 < s1);
    }

    #[test]
    fn long_constant_loop_not_fully_unrolled() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let fid = sum_loop(&mut prog, Some(30));
        assert!(!run_full(prog.func_mut(fid)));
    }

    #[test]
    fn peel_preserves_semantics() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let fid = sum_loop(&mut prog, None);
        let orig = prog.clone();
        assert!(run_peel(prog.func_mut(fid)));
        assert!(!run_peel(prog.func_mut(fid)), "peel once only");
        for n in [0i64, 1, 2, 9] {
            assert_eq!(eval(&orig, fid, n).0, eval(&prog, fid, n).0, "n={n}");
        }
    }

    #[test]
    fn loop_with_break_not_unrolled() {
        // while-style search loop: exits from the body.
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 32);
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let found = b.var("found", Type::I64);
        b.copy(found, -1i64);
        let exit_all = b.new_block();
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            let hit = b.binary(BinOp::Eq, x, 7i64);
            b.branch_out_if(hit, exit_all);
        });
        b.jump(exit_all);
        b.ret(Some(found.into()));
        let fid = prog.add_func(b.finish());
        assert!(!run(prog.func_mut(fid)));
        assert!(!run_full(prog.func_mut(fid)));
        assert!(!run_peel(prog.func_mut(fid)));
    }
}
