//! Dead-store elimination (block-local).
//!
//! A store to a statically known address that is overwritten by a later
//! store to the same address in the same block — with no intervening read
//! that could observe it — is removed. Conservative about pointers: any
//! pointer access or call in between blocks the elimination.

use crate::util::static_address;
use peak_ir::{Function, MemBase, Rvalue, Stmt};

/// Run DSE. Returns true if anything was removed.
pub fn run(f: &mut Function) -> bool {
    let mut removed_any = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let stmts = &f.block(b).stmts;
        let n = stmts.len();
        let mut dead = vec![false; n];
        for i in 0..n {
            let Stmt::Store { dst, .. } = &stmts[i] else { continue };
            let Some((m, idx)) = static_address(f, dst) else { continue };
            // Scan forward for an overwrite before any potential read.
            for later in &stmts[i + 1..] {
                match later {
                    Stmt::Store { dst: d2, .. } => {
                        match static_address(f, d2) {
                            Some((m2, idx2)) if (m2, idx2) == (m, idx) => {
                                dead[i] = true;
                                break;
                            }
                            Some(_) => continue, // definitely different slot
                            None => break,       // unknown address may read? no —
                                                  // a store doesn't read, but an
                                                  // unknown store aliasing the slot
                                                  // makes the later "overwrite"
                                                  // analysis unreliable; stop.
                        }
                    }
                    Stmt::Assign { rv, .. } => match rv {
                        Rvalue::Load(mr) => {
                            let aliases = match mr.base {
                                MemBase::Global(m2) => m2 == m,
                                MemBase::Ptr(_) => true,
                            };
                            if aliases {
                                break;
                            }
                        }
                        Rvalue::Call { .. } => break,
                        _ => {}
                    },
                    Stmt::CallVoid { .. } => break,
                    Stmt::Prefetch { .. } | Stmt::CounterInc { .. } => {}
                }
            }
        }
        if dead.iter().any(|&d| d) {
            removed_any = true;
            let mut keep = dead.iter().map(|d| !d);
            f.block_mut(b).stmts.retain(|_| keep.next().unwrap());
        }
    }
    removed_any
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, MemRef, Program, Type};

    fn setup() -> (Program, peak_ir::MemId, peak_ir::MemId) {
        let mut p = Program::new();
        let a = p.add_mem("a", Type::I64, 8);
        let b = p.add_mem("b", Type::I64, 8);
        (p, a, b)
    }

    #[test]
    fn overwritten_store_removed() {
        let (_p, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", None);
        fb.store(MemRef::global(a, 3i64), 1i64);
        fb.store(MemRef::global(a, 3i64), 2i64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].stmts.len(), 1);
        assert!(matches!(
            &f.blocks[0].stmts[0],
            Stmt::Store { src, .. } if src.as_const() == Some(peak_ir::Value::I64(2))
        ));
    }

    #[test]
    fn intervening_read_keeps_store() {
        let (_p, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", None);
        fb.store(MemRef::global(a, 3i64), 1i64);
        let _x = fb.load(Type::I64, MemRef::global(a, 3i64));
        fb.store(MemRef::global(a, 3i64), 2i64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn read_of_other_region_ignored() {
        let (_p, a, b) = setup();
        let mut fb = FunctionBuilder::new("f", None);
        fb.store(MemRef::global(a, 3i64), 1i64);
        let _x = fb.load(Type::I64, MemRef::global(b, 0i64));
        fb.store(MemRef::global(a, 3i64), 2i64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(run(&mut f));
    }

    #[test]
    fn different_slot_keeps_both() {
        let (_p, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", None);
        fb.store(MemRef::global(a, 3i64), 1i64);
        fb.store(MemRef::global(a, 4i64), 2i64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(!run(&mut f));
        assert_eq!(f.blocks[0].stmts.len(), 2);
    }

    #[test]
    fn variable_index_store_not_touched() {
        let (_p, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", None);
        let i = fb.param("i", Type::I64);
        fb.store(MemRef::global(a, i), 1i64);
        fb.store(MemRef::global(a, i), 2i64);
        fb.ret(None);
        let mut f = fb.finish();
        // Indexes equal but not static; this simple DSE leaves them.
        assert!(!run(&mut f));
    }

    #[test]
    fn call_blocks_elimination() {
        let (mut p, a, _) = setup();
        let mut cb = FunctionBuilder::new("g", None);
        cb.ret(None);
        let callee = p.add_func(cb.finish());
        let mut fb = FunctionBuilder::new("f", None);
        fb.store(MemRef::global(a, 3i64), 1i64);
        fb.call_void(callee, vec![]);
        fb.store(MemRef::global(a, 3i64), 2i64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(!run(&mut f));
    }
}
