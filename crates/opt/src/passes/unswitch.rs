//! Loop unswitching: hoist a loop-invariant branch out of the loop by
//! cloning the loop, specializing each copy to one arm of the branch.

use crate::util::clone_subgraph;
use peak_ir::{
    Cfg, Dominators, Function, LoopForest, Operand, Terminator, Type,
};
use std::collections::HashMap;

/// Maximum statements in a loop eligible for unswitching (the loop is
/// duplicated wholesale).
pub const UNSWITCH_MAX_SIZE: usize = 30;

/// Run loop unswitching (one loop per call; pipeline iterates to
/// fixpoint). Returns true if a loop was unswitched.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    for l in &forest.loops {
        let size: usize = l.body.iter().map(|&b| f.block(b).stmts.len() + 1).sum();
        if size > UNSWITCH_MAX_SIZE {
            continue;
        }
        // Marker to avoid unswitching the same loop (or its clones) again.
        if f.vars.iter().any(|v| v.name == format!("unsw_{}", l.header.0)) {
            continue;
        }
        // Variables defined in the loop.
        let defined: Vec<peak_ir::VarId> = l
            .body
            .iter()
            .flat_map(|&b| f.block(b).stmts.iter().filter_map(|s| s.def()))
            .collect();
        // Find an invariant branch strictly inside the loop (not the
        // header: that's the loop test).
        let mut found: Option<(peak_ir::BlockId, Operand)> = None;
        for &b in &l.body {
            if b == l.header {
                continue;
            }
            if let Terminator::Branch { cond, on_true, on_false } = &f.block(b).term {
                // Both arms must stay inside the loop (not a break).
                if !l.contains(*on_true) || !l.contains(*on_false) {
                    continue;
                }
                let invariant = match cond {
                    Operand::Const(_) => true,
                    Operand::Var(v) => !defined.contains(v),
                };
                if invariant {
                    found = Some((b, *cond));
                    break;
                }
            }
        }
        let Some((branch_block, cond)) = found else { continue };
        // Preheader.
        let pre = cfg.preds[l.header.index()]
            .iter()
            .copied()
            .find(|p| !l.contains(*p));
        let Some(pre) = pre else { continue };
        // Clone the whole loop twice and specialize.
        let make_copy = |f: &mut Function, take_true: bool| -> peak_ir::BlockId {
            let map = clone_subgraph(f, &l.body, &HashMap::new());
            let nb = map[&branch_block];
            if let Terminator::Branch { on_true, on_false, .. } = f.block(nb).term.clone() {
                f.block_mut(nb).term =
                    Terminator::Jump(if take_true { on_true } else { on_false });
            }
            map[&l.header]
        };
        let h_true = make_copy(f, true);
        let h_false = make_copy(f, false);
        // Preheader now dispatches on the invariant condition.
        let old_term = f.block(pre).term.clone();
        match old_term {
            Terminator::Jump(t) if t == l.header => {
                f.block_mut(pre).term =
                    Terminator::Branch { cond, on_true: h_true, on_false: h_false };
            }
            _ => continue, // preheader shape too complex; skip
        }
        let _marker = f.add_var(format!("unsw_{}", l.header.0), Type::I64);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Program, Type, Value};

    fn build(prog: &mut Program) -> peak_ir::FuncId {
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let mode = b.param("mode", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            // Invariant branch on `mode` inside the loop.
            b.if_then_else(
                mode,
                |b| b.binary_into(acc, BinOp::Add, acc, x),
                |b| b.binary_into(acc, BinOp::Sub, acc, x),
            );
        });
        b.ret(Some(acc.into()));
        prog.add_func(b.finish())
    }

    fn eval(prog: &Program, fid: peak_ir::FuncId, n: i64, mode: i64) -> Option<Value> {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        for i in 0..16 {
            mem.store(a, i, Value::I64(i + 1));
        }
        Interp::default()
            .run(prog, fid, &[Value::I64(n), Value::I64(mode)], &mut mem)
            .unwrap()
            .ret
    }

    #[test]
    fn unswitch_preserves_semantics() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 16);
        let fid = build(&mut prog);
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        for n in [0i64, 1, 7] {
            for mode in [0i64, 1] {
                assert_eq!(
                    eval(&orig, fid, n, mode),
                    eval(&prog, fid, n, mode),
                    "n={n} mode={mode}"
                );
            }
        }
    }

    #[test]
    fn unswitched_copies_have_no_inner_branch() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 16);
        let fid = build(&mut prog);
        let before_blocks = prog.func(fid).num_blocks();
        assert!(run(prog.func_mut(fid)));
        let f = prog.func(fid);
        assert!(f.num_blocks() > before_blocks, "loop duplicated");
        assert!(!run(prog.func_mut(fid)), "marker prevents re-unswitching");
    }

    #[test]
    fn variant_branch_not_unswitched() {
        let mut prog = Program::new();
        prog.add_mem("a", Type::I64, 16);
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            b.if_then(x, |b| b.binary_into(acc, BinOp::Add, acc, 1i64)); // data-dependent
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        assert!(!run(prog.func_mut(fid)));
    }
}
