//! Translation validation for the optimization pipeline.
//!
//! Every pass invocation in [`crate::pipeline`] reports to a
//! [`Validator`], which — depending on the [`ValidationLevel`] — does
//! nothing, re-verifies the structural IR invariants
//! ([`peak_ir::verify_function`]), or additionally runs the *semantic
//! oracle*: it executes the pre-pass and post-pass IR on the reference
//! interpreter over a deterministic input battery and compares the two
//! [`Observation`]s. The first diverging observable is reported together
//! with the responsible pass ([`ValidationFailure`]), turning "some flag
//! combination miscompiles" into "this pass broke this invariant on this
//! input".
//!
//! Not every pass preserves the full observation: dead-store elimination
//! deletes store events, inlining deletes call events, scheduling may
//! reorder stores to provably-disjoint regions. Each [`PassId`] therefore
//! carries the [`ObsLevel`] it is *specified* to preserve, and the oracle
//! compares exactly that much. Return value, instrumentation counters,
//! final memory, and trap behavior are compared for every pass at every
//! level — that is the floor no transformation may sink below.

use crate::config::OptConfig;
use peak_ir::{
    compare_observations, observe, verify_function, FuncId, Interp, MemoryImage, ObsLevel,
    Observation, Program, Type, Value, VerifyError, VerifyOptions,
};

/// How much checking each compile performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ValidationLevel {
    /// No validation (release rating paths; the pipeline's own
    /// `debug_assert` well-formedness check still runs in debug builds).
    Off,
    /// Structural verification after every pass that changed the IR.
    Structural,
    /// Structural verification plus the per-pass semantic oracle.
    Full,
}

/// Environment variable overriding the default validation level
/// (`off`, `structural`, or `full`).
pub const VALIDATE_ENV: &str = "PEAK_VALIDATE";

impl ValidationLevel {
    /// Parse `"off"` / `"structural"` / `"full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ValidationLevel> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(ValidationLevel::Off),
            "structural" | "1" => Some(ValidationLevel::Structural),
            "full" | "2" => Some(ValidationLevel::Full),
            _ => None,
        }
    }

    /// The level selected by [`VALIDATE_ENV`], if set and valid.
    pub fn from_env() -> Option<ValidationLevel> {
        let v = std::env::var(VALIDATE_ENV).ok()?;
        let parsed = ValidationLevel::parse(&v);
        if parsed.is_none() {
            eprintln!(
                "warning: ignoring invalid {VALIDATE_ENV}={v:?} (want off|structural|full)"
            );
        }
        parsed
    }
}

/// The default level for tuner-driven compiles: the [`VALIDATE_ENV`]
/// override when present, otherwise [`ValidationLevel::Structural`] in
/// debug builds and [`ValidationLevel::Off`] in release builds (rating
/// throughput is the product in release; correctness tooling is the
/// product in debug/CI).
pub fn default_level() -> ValidationLevel {
    ValidationLevel::from_env().unwrap_or(if cfg!(debug_assertions) {
        ValidationLevel::Structural
    } else {
        ValidationLevel::Off
    })
}

/// Identity of one pass invocation in the pipeline — the unit of blame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the pass modules
pub enum PassId {
    /// The untransformed input program (blamed when the *workload* is
    /// already malformed, before any pass ran).
    Input,
    InlineSmall,
    InlineAggressive,
    Fold,
    CPropConst,
    CPropCopy,
    Algebraic,
    Reassoc,
    Peephole,
    CseLocal,
    Gcse,
    StoreForward,
    JumpThread,
    Reciprocal,
    Licm,
    RegPromote,
    Unswitch,
    Fusion,
    Prefetch,
    Peel,
    UnrollSmall,
    Unroll,
    Strength,
    StrengthIve,
    IfConv,
    TailDup,
    BranchReorder,
    Dse,
    Dce,
    Schedule,
    AlignLoops,
    AlignJumps,
}

impl PassId {
    /// Human-readable pass name (matches the module/flag naming).
    pub fn name(self) -> &'static str {
        match self {
            PassId::Input => "input",
            PassId::InlineSmall => "inline-small",
            PassId::InlineAggressive => "inline-aggressive",
            PassId::Fold => "constant-folding",
            PassId::CPropConst => "constant-propagation",
            PassId::CPropCopy => "copy-propagation",
            PassId::Algebraic => "algebraic-simplification",
            PassId::Reassoc => "reassociation",
            PassId::Peephole => "peephole",
            PassId::CseLocal => "cse-local",
            PassId::Gcse => "gcse",
            PassId::StoreForward => "store-forwarding",
            PassId::JumpThread => "jump-threading",
            PassId::Reciprocal => "reciprocal-math",
            PassId::Licm => "licm",
            PassId::RegPromote => "register-promotion",
            PassId::Unswitch => "loop-unswitch",
            PassId::Fusion => "loop-fusion",
            PassId::Prefetch => "prefetch",
            PassId::Peel => "loop-peel",
            PassId::UnrollSmall => "loop-unroll-small",
            PassId::Unroll => "loop-unroll",
            PassId::Strength => "strength-reduction",
            PassId::StrengthIve => "induction-variable-elimination",
            PassId::IfConv => "if-conversion",
            PassId::TailDup => "tail-duplication",
            PassId::BranchReorder => "branch-reorder",
            PassId::Dse => "dead-store-elimination",
            PassId::Dce => "dead-code-elimination",
            PassId::Schedule => "schedule-insns",
            PassId::AlignLoops => "align-loops",
            PassId::AlignJumps => "align-jumps",
        }
    }

    /// The portion of the observation this pass is specified to preserve.
    ///
    /// * [`ObsLevel::Exact`] — pure rewrites and control-flow
    ///   restructurings that never add, drop, or reorder externally
    ///   visible events.
    /// * [`ObsLevel::StoresExact`] — inlining: call events disappear (the
    ///   callee's body now runs inline), store events are untouched.
    /// * [`ObsLevel::CallsExact`] — passes licensed to delete or reorder
    ///   stores (dead-store elimination, register promotion, scheduling
    ///   across disjoint regions, fused loop bodies) but never calls.
    pub fn preserved(self) -> ObsLevel {
        match self {
            PassId::InlineSmall | PassId::InlineAggressive => ObsLevel::StoresExact,
            PassId::RegPromote
            | PassId::Fusion
            | PassId::Dse
            | PassId::Schedule => ObsLevel::CallsExact,
            _ => ObsLevel::Exact,
        }
    }
}

impl std::fmt::Display for PassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of invariant a pass broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The post-pass IR fails structural verification.
    Structural(VerifyError),
    /// The semantic oracle observed a divergence on battery input
    /// `input`; `detail` names the first diverging observable.
    Semantic {
        /// Index into the validator's input battery.
        input: usize,
        /// First diverging observable, human-readable.
        detail: String,
    },
}

/// A translation-validation failure: which pass, compiling what, broke
/// which invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationFailure {
    /// The responsible pass invocation.
    pub pass: PassId,
    /// Function being compiled.
    pub func: String,
    /// Flag configuration of the compile.
    pub config: OptConfig,
    /// The broken invariant.
    pub kind: FailureKind,
}

impl std::fmt::Display for ValidationFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Structural(e) => write!(
                f,
                "pass {} broke structural invariants compiling {} under {}: {e}",
                self.pass, self.func, self.config
            ),
            FailureKind::Semantic { input, detail } => write!(
                f,
                "pass {} changed semantics compiling {} under {} (battery input {input}): {detail}",
                self.pass, self.func, self.config
            ),
        }
    }
}

impl std::error::Error for ValidationFailure {}

/// One semantic-oracle test input: argument values plus the initial
/// memory image.
#[derive(Debug, Clone)]
struct BatteryInput {
    args: Vec<Value>,
    init: MemoryImage,
}

/// Step budget per oracle execution. Large enough for the synthetic
/// workload tuning sections on small inputs, small enough that a pass
/// that breaks a loop exit fails fast (as a trap divergence).
const ORACLE_STEP_LIMIT: u64 = 8_000_000;

/// Per-stream event cap for oracle captures.
const ORACLE_TRACE_LIMIT: usize = 1 << 16;

/// Deterministic splitmix64 step, the standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the deterministic input battery for `func`: two input sets (a
/// "typical" one and a zero/negative one) against pseudo-randomly filled
/// memory. Returns an empty battery when the signature cannot be
/// fabricated safely (pointer parameters in a program with no regions).
fn build_battery(prog: &Program, func: FuncId) -> Vec<BatteryInput> {
    let f = prog.func(func);
    let mut battery = Vec::new();
    for variant in 0..2u64 {
        let mut seed = 0x5EED_0000_0000_0000u64 ^ (variant << 32) ^ func.0 as u64;
        let mut args = Vec::with_capacity(f.params.len());
        let mut ok = true;
        for (pi, p) in f.params.iter().enumerate() {
            let v = match f.var_ty(*p) {
                Type::I64 => {
                    if variant == 0 {
                        Value::I64(3 + 2 * pi as i64)
                    } else {
                        Value::I64(if pi % 2 == 0 { 0 } else { 1 })
                    }
                }
                Type::F64 => {
                    if variant == 0 {
                        Value::F64(1.5 + pi as f64)
                    } else {
                        Value::F64(-0.75 * (pi as f64 + 1.0))
                    }
                }
                Type::Ptr => {
                    if prog.mems.is_empty() || prog.mems[0].len == 0 {
                        ok = false;
                        break;
                    }
                    Value::Ptr(peak_ir::PtrVal { mem: peak_ir::MemId(0), offset: 0 })
                }
            };
            args.push(v);
        }
        if !ok {
            continue;
        }
        let mut init = MemoryImage::new(prog);
        for buf in init.bufs.iter_mut() {
            let n = buf.len();
            for i in 0..n {
                let r = splitmix64(&mut seed);
                match buf {
                    peak_ir::Buffer::I64(v) => v[i] = (r % 201) as i64 - 100,
                    peak_ir::Buffer::F64(v) => v[i] = ((r % 401) as f64 - 200.0) * 0.125,
                    // Pointer regions stay at their zeroed (region 0,
                    // offset 0) default: fabricating random pointers
                    // would mostly produce traps.
                    peak_ir::Buffer::Ptr(_) => break,
                }
            }
        }
        battery.push(BatteryInput { args, init });
    }
    battery
}

/// Per-compile validation state, threaded through the pipeline by
/// [`crate::pipeline::optimize_checked`]. At [`ValidationLevel::Full`] it
/// holds the running pre-pass observations (the post-pass observation of
/// pass *k* is the pre-pass observation of pass *k+1*, so each pass costs
/// one oracle execution per battery input, not two).
pub struct Validator {
    level: ValidationLevel,
    func: FuncId,
    func_name: String,
    config: OptConfig,
    battery: Vec<BatteryInput>,
    prev_obs: Vec<Observation>,
    interp: Interp,
}

impl Validator {
    /// A validator that checks nothing (used by the unchecked
    /// [`crate::optimize`] path).
    pub fn off(func: FuncId, config: &OptConfig) -> Validator {
        Validator {
            level: ValidationLevel::Off,
            func,
            func_name: String::new(),
            config: *config,
            battery: Vec::new(),
            prev_obs: Vec::new(),
            interp: Interp::default(),
        }
    }

    /// Validate the input program and set up the oracle battery.
    /// Fails (blaming [`PassId::Input`]) when the input itself is already
    /// structurally invalid.
    pub fn new(
        prog: &Program,
        func: FuncId,
        config: &OptConfig,
        level: ValidationLevel,
    ) -> Result<Validator, ValidationFailure> {
        let mut v = Validator {
            level,
            func,
            func_name: prog.func(func).name.clone(),
            config: *config,
            battery: Vec::new(),
            prev_obs: Vec::new(),
            interp: Interp {
                step_limit: ORACLE_STEP_LIMIT,
                ..Interp::default()
            },
        };
        if level == ValidationLevel::Off {
            return Ok(v);
        }
        v.verify_structure(prog, PassId::Input)?;
        if level == ValidationLevel::Full {
            let battery = build_battery(prog, func);
            for input in battery {
                let obs =
                    observe(&v.interp, prog, func, &input.args, &input.init, ORACLE_TRACE_LIMIT);
                // Inputs on which the *original* program traps are
                // dropped: passes are only required to preserve the
                // behavior of well-defined executions.
                if obs.trap.is_none() {
                    v.battery.push(input);
                    v.prev_obs.push(obs);
                }
            }
        }
        Ok(v)
    }

    /// The number of semantic-oracle inputs in use (0 at levels below
    /// [`ValidationLevel::Full`], or when no trap-free input could be
    /// fabricated).
    pub fn battery_len(&self) -> usize {
        self.battery.len()
    }

    fn verify_structure(&self, prog: &Program, pass: PassId) -> Result<(), ValidationFailure> {
        verify_function(prog, self.func, &VerifyOptions::default()).map_err(|e| {
            ValidationFailure {
                pass,
                func: self.func_name.clone(),
                config: self.config,
                kind: FailureKind::Structural(e),
            }
        })
    }

    /// Report one pass invocation. `changed` is the pass's own "did
    /// anything" return value — unchanged IR needs no re-checking.
    pub fn after_pass(
        &mut self,
        prog: &Program,
        pass: PassId,
        changed: bool,
    ) -> Result<(), ValidationFailure> {
        if self.level == ValidationLevel::Off || !changed {
            return Ok(());
        }
        self.verify_structure(prog, pass)?;
        if self.level < ValidationLevel::Full {
            return Ok(());
        }
        let level = pass.preserved();
        for i in 0..self.battery.len() {
            let input = &self.battery[i];
            let obs = observe(
                &self.interp,
                prog,
                self.func,
                &input.args,
                &input.init,
                ORACLE_TRACE_LIMIT,
            );
            compare_observations(&self.prev_obs[i], &obs, level).map_err(|detail| {
                ValidationFailure {
                    pass,
                    func: self.func_name.clone(),
                    config: self.config,
                    kind: FailureKind::Semantic { input: i, detail },
                }
            })?;
            self.prev_obs[i] = obs;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(ValidationLevel::parse("off"), Some(ValidationLevel::Off));
        assert_eq!(ValidationLevel::parse("Structural"), Some(ValidationLevel::Structural));
        assert_eq!(ValidationLevel::parse("FULL"), Some(ValidationLevel::Full));
        assert_eq!(ValidationLevel::parse("bogus"), None);
        assert!(ValidationLevel::Off < ValidationLevel::Structural);
        assert!(ValidationLevel::Structural < ValidationLevel::Full);
    }

    #[test]
    fn pass_metadata_is_total() {
        // Every pass has a stable name and a defined observation level.
        let all = [
            PassId::Input,
            PassId::InlineSmall,
            PassId::InlineAggressive,
            PassId::Fold,
            PassId::CPropConst,
            PassId::CPropCopy,
            PassId::Algebraic,
            PassId::Reassoc,
            PassId::Peephole,
            PassId::CseLocal,
            PassId::Gcse,
            PassId::StoreForward,
            PassId::JumpThread,
            PassId::Reciprocal,
            PassId::Licm,
            PassId::RegPromote,
            PassId::Unswitch,
            PassId::Fusion,
            PassId::Prefetch,
            PassId::Peel,
            PassId::UnrollSmall,
            PassId::Unroll,
            PassId::Strength,
            PassId::StrengthIve,
            PassId::IfConv,
            PassId::TailDup,
            PassId::BranchReorder,
            PassId::Dse,
            PassId::Dce,
            PassId::Schedule,
            PassId::AlignLoops,
            PassId::AlignJumps,
        ];
        let mut names = std::collections::HashSet::new();
        for p in all {
            assert!(!p.name().is_empty());
            assert!(names.insert(p.name()), "duplicate pass name {}", p.name());
            let _ = p.preserved();
        }
        assert_eq!(PassId::Dse.preserved(), ObsLevel::CallsExact);
        assert_eq!(PassId::InlineSmall.preserved(), ObsLevel::StoresExact);
        assert_eq!(PassId::Fold.preserved(), ObsLevel::Exact);
    }
}
