//! Pass-interaction tests: behaviours that only appear when passes
//! compose — the phenomenon that makes empirical tuning worthwhile at all
//! (paper §1: interactions make static prediction "extremely difficult").

use peak_ir::{
    BinOp, CounterId, FunctionBuilder, Interp, MemRef, MemoryImage, Program, Stmt, Type, Value,
};
use peak_opt::{optimize, Flag, OptConfig};

/// MBR instrumentation counters survive the whole -O3 pipeline with exact
/// per-iteration semantics — unrolling/peeling clone them per iteration
/// copy, DCE keeps them, tail duplication refuses to double them.
#[test]
fn counters_survive_o3_with_exact_counts() {
    let mut prog = Program::new();
    let a = prog.add_mem("a", Type::I64, 64);
    let mut b = FunctionBuilder::new("f", None);
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    b.for_loop(i, 0i64, n, 1, |b| {
        b.emit(Stmt::CounterInc { counter: CounterId(0) });
        let x = b.load(Type::I64, MemRef::global(a, i));
        let y = b.binary(BinOp::Add, x, 1i64);
        b.store(MemRef::global(a, i), y);
    });
    b.ret(None);
    let f = prog.add_func(b.finish());
    let cv = optimize(&prog, f, &OptConfig::o3());
    let interp = Interp { num_counters: 1, ..Default::default() };
    for n in [0i64, 1, 3, 7, 13] {
        let mut mem = MemoryImage::new(&cv.program);
        let out = interp.run(&cv.program, cv.func, &[Value::I64(n)], &mut mem).unwrap();
        assert_eq!(out.counters[0], n as u64, "n={n}: one bump per iteration after -O3");
    }
}

/// Register promotion then unrolling: the promoted accumulator must stay
/// correct across cloned iteration units, including the flush on exit.
#[test]
fn promotion_composes_with_unrolling() {
    let mut prog = Program::new();
    let g = prog.add_mem("g", Type::I64, 2);
    let a = prog.add_mem("a", Type::I64, 64);
    let mut b = FunctionBuilder::new("f", None);
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    b.for_loop(i, 0i64, n, 1, |b| {
        let x = b.load(Type::I64, MemRef::global(a, i));
        let acc = b.load(Type::I64, MemRef::global(g, 0i64));
        let s = b.binary(BinOp::Add, acc, x);
        b.store(MemRef::global(g, 0i64), s);
    });
    b.ret(None);
    let f = prog.add_func(b.finish());
    let cfg = OptConfig::o3();
    let cv = optimize(&prog, f, &cfg);
    for n in [0i64, 1, 4, 5, 9, 64] {
        let mut m1 = MemoryImage::new(&prog);
        let mut m2 = MemoryImage::new(&cv.program);
        for i in 0..64 {
            m1.store(a, i, Value::I64(i + 1));
            m2.store(a, i, Value::I64(i + 1));
        }
        m1.store(g, 0, Value::I64(100));
        m2.store(g, 0, Value::I64(100));
        Interp::default().run(&prog, f, &[Value::I64(n)], &mut m1).unwrap();
        Interp::default().run(&cv.program, cv.func, &[Value::I64(n)], &mut m2).unwrap();
        assert_eq!(m1.load(g, 0), m2.load(g, 0), "n={n}");
    }
}

/// Inlining exposes the callee body to loop optimization: with aggressive
/// inlining + the loop passes, the call disappears AND the hoisted
/// invariant computation leaves the loop.
#[test]
fn inlining_feeds_licm() {
    let mut prog = Program::new();
    // callee: scale(k) = k * 7 + 3 (pure, loop-invariant when k is)
    let mut cb = FunctionBuilder::new("scale", Some(Type::I64));
    let k = cb.param("k", Type::I64);
    let t = cb.binary(BinOp::Mul, k, 7i64);
    let r = cb.binary(BinOp::Add, t, 3i64);
    cb.ret(Some(r.into()));
    let callee = prog.add_func(cb.finish());
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let k2 = b.param("k", Type::I64);
    let i = b.var("i", Type::I64);
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    b.for_loop(i, 0i64, n, 1, |b| {
        let s = b.call(Type::I64, callee, vec![k2.into()]);
        b.binary_into(acc, BinOp::Add, acc, s);
    });
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    let cv = optimize(&prog, f, &OptConfig::o3());
    // No calls remain in the optimized entry function.
    let of = cv.program.func(cv.func);
    let calls = of
        .block_ids()
        .flat_map(|bb| of.block(bb).stmts.iter())
        .filter(|s| {
            matches!(
                s,
                Stmt::CallVoid { .. } | Stmt::Assign { rv: peak_ir::Rvalue::Call { .. }, .. }
            )
        })
        .count();
    assert_eq!(calls, 0, "call inlined away");
    // Semantics intact.
    for (n, k) in [(0i64, 5i64), (3, -2), (10, 9)] {
        let mut m1 = MemoryImage::new(&prog);
        let mut m2 = MemoryImage::new(&cv.program);
        let r1 = Interp::default()
            .run(&prog, f, &[Value::I64(n), Value::I64(k)], &mut m1)
            .unwrap();
        let r2 = Interp::default()
            .run(&cv.program, cv.func, &[Value::I64(n), Value::I64(k)], &mut m2)
            .unwrap();
        assert_eq!(r1.ret, r2.ret, "n={n} k={k}");
    }
    // Dynamic step count shrank considerably vs the unoptimized version
    // (call overhead + recomputation gone).
    let steps = |p: &Program, fid| {
        let mut mem = MemoryImage::new(p);
        Interp::default()
            .run(p, fid, &[Value::I64(50), Value::I64(3)], &mut mem)
            .unwrap()
            .steps
    };
    assert!(steps(&cv.program, cv.func) * 2 < steps(&prog, f) * 2, "sanity");
    assert!(steps(&cv.program, cv.func) < steps(&prog, f));
}

/// If-conversion changes register pressure: on a tight-register machine,
/// converting arms into selects can tip the allocator into spilling —
/// visible through the allocator's spill lists (the MCF/P4 interaction).
#[test]
fn ifconv_interacts_with_register_pressure() {
    let mut prog = Program::new();
    let a = prog.add_mem("a", Type::I64, 256);
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    // Several live accumulators + a guarded update chain.
    let accs: Vec<_> = (0..5)
        .map(|j| {
            let v = b.var(format!("acc{j}"), Type::I64);
            b.copy(v, 0i64);
            v
        })
        .collect();
    b.for_loop(i, 0i64, n, 1, |b| {
        let x = b.load(Type::I64, MemRef::global(a, i));
        let c = b.binary(BinOp::Gt, x, 0i64);
        let accs = accs.clone();
        b.if_then(c, move |b| {
            for (j, &v) in accs.iter().enumerate() {
                let t = b.binary(BinOp::Add, x, j as i64);
                b.binary_into(v, BinOp::Add, v, t);
            }
        });
    });
    let mut total = accs[0];
    for &v in &accs[1..] {
        let t = b.binary(BinOp::Add, total, v);
        total = t;
    }
    b.ret(Some(total.into()));
    let f = prog.add_func(b.finish());
    let with = optimize(&prog, f, &OptConfig::o0().with(Flag::IfConversion, true));
    let without = optimize(&prog, f, &OptConfig::o0());
    let spec = peak_sim::MachineSpec::pentium_iv();
    let pv_with = peak_sim::PreparedVersion::prepare(with, &spec);
    let pv_without = peak_sim::PreparedVersion::prepare(without, &spec);
    assert!(
        pv_with.entry_spills() >= pv_without.entry_spills(),
        "if-conversion never reduces pressure here: {} vs {}",
        pv_with.entry_spills(),
        pv_without.entry_spills()
    );
}

/// A flag that is harmless alone can matter after another flag enables it:
/// register promotion does nothing for the ART accumulators unless strict
/// aliasing licenses the disambiguation (the gate is the *pair*).
#[test]
fn strict_aliasing_gates_promotion() {
    use peak_workloads::Workload;
    let w = peak_workloads::art::ArtMatch::new();
    let spec = peak_sim::MachineSpec::pentium_iv();
    let spills = |cfg: OptConfig| {
        let cv = optimize(w.program(), w.ts(), &cfg);
        peak_sim::PreparedVersion::prepare(cv, &spec).entry_spills()
    };
    let both = spills(OptConfig::o3());
    let no_sa = spills(OptConfig::o3().without(Flag::StrictAliasing));
    let no_rp = spills(OptConfig::o3().without(Flag::RegisterPromotion));
    assert!(both > no_sa, "strict aliasing is required for the spill storm");
    assert!(both > no_rp, "register promotion is required for the spill storm");
}
