//! Property-based compiler correctness: for random programs and random
//! flag configurations, the optimized version must compute exactly the
//! same results (return value AND final memory image) as the reference
//! interpreter on the original program.
//!
//! The generator produces structured programs (straight-line arithmetic,
//! bounded counted loops, branches, masked in-bounds memory accesses) so
//! every generated program terminates and never traps — the domain where
//! every -O3 transformation must be exact.

use peak_ir::{
    BinOp, FuncId, FunctionBuilder, Interp, MemRef, MemoryImage, Operand, Program, Type, UnOp,
    Value,
};
use peak_opt::{optimize, OptConfig};
use proptest::prelude::*;

/// Region length; all indexes are masked with `& (REGION_LEN-1)`.
const REGION_LEN: usize = 16;
/// Integer variable pool size.
const NI: usize = 5;
/// Float variable pool size.
const NF: usize = 3;

/// A generated statement.
#[derive(Debug, Clone)]
enum GStmt {
    /// ivar[d] = ivar[a] op ivar[b]
    IntOp(u8, usize, usize, usize),
    /// fvar[d] = fvar[a] op fvar[b]
    FloatOp(u8, usize, usize, usize),
    /// ivar[d] = unop ivar[a]
    IntUn(u8, usize, usize),
    /// ivar[d] = mem[ivar[a] & mask]
    Load(usize, usize, usize), // region, dst, idx var
    /// mem[ivar[a] & mask] = ivar[s]
    Store(usize, usize, usize), // region, src, idx var
    /// if ivar[c] > 0 { body }
    If(usize, Vec<GStmt>),
    /// for t in 0..k { body }  (k ≤ 6)
    Loop(u8, Vec<GStmt>),
    /// ivar[d] = ptr[ivar[i] & 7]  (pointer into region r at offset off)
    PtrLoad(usize, u8, usize, usize), // region, base offset 0..8, dst, idx
    /// ptr[ivar[i] & 7] = ivar[s]
    PtrStore(usize, u8, usize, usize), // region, base offset, src, idx
}

fn leaf_stmt() -> impl Strategy<Value = GStmt> {
    prop_oneof![
        (0u8..8, 0..NI, 0..NI, 0..NI).prop_map(|(o, d, a, b)| GStmt::IntOp(o, d, a, b)),
        (0u8..3, 0..NF, 0..NF, 0..NF).prop_map(|(o, d, a, b)| GStmt::FloatOp(o, d, a, b)),
        (0u8..2, 0..NI, 0..NI).prop_map(|(o, d, a)| GStmt::IntUn(o, d, a)),
        (0usize..2, 0..NI, 0..NI).prop_map(|(r, d, i)| GStmt::Load(r, d, i)),
        (0usize..2, 0..NI, 0..NI).prop_map(|(r, s, i)| GStmt::Store(r, s, i)),
        (0usize..2, 0u8..8, 0..NI, 0..NI)
            .prop_map(|(r, off, d, i)| GStmt::PtrLoad(r, off, d, i)),
        (0usize..2, 0u8..8, 0..NI, 0..NI)
            .prop_map(|(r, off, s, i)| GStmt::PtrStore(r, off, s, i)),
    ]
}

fn stmt(depth: u32) -> BoxedStrategy<GStmt> {
    if depth == 0 {
        leaf_stmt().boxed()
    } else {
        prop_oneof![
            4 => leaf_stmt(),
            1 => (0..NI, prop::collection::vec(stmt(depth - 1), 1..4))
                .prop_map(|(c, body)| GStmt::If(c, body)),
            1 => (2u8..6, prop::collection::vec(stmt(depth - 1), 1..4))
                .prop_map(|(k, body)| GStmt::Loop(k, body)),
        ]
        .boxed()
    }
}

fn program_strategy() -> impl Strategy<Value = Vec<GStmt>> {
    prop::collection::vec(stmt(2), 3..14)
}

fn int_op(code: u8) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Min,
        BinOp::Max,
    ][code as usize]
}

fn float_op(code: u8) -> BinOp {
    [BinOp::FAdd, BinOp::FSub, BinOp::FMul][code as usize]
}

fn int_un(code: u8) -> UnOp {
    [UnOp::Neg, UnOp::Not][code as usize]
}

fn emit(b: &mut FunctionBuilder, ivars: &[peak_ir::VarId], fvars: &[peak_ir::VarId],
        regions: &[peak_ir::MemId], stmts: &[GStmt], loop_depth: u32) {
    for s in stmts {
        match s {
            GStmt::IntOp(o, d, a, c) => {
                b.binary_into(ivars[*d], int_op(*o), ivars[*a], ivars[*c]);
            }
            GStmt::FloatOp(o, d, a, c) => {
                b.binary_into(fvars[*d], float_op(*o), fvars[*a], fvars[*c]);
            }
            GStmt::IntUn(o, d, a) => {
                let t = b.unary(int_un(*o), ivars[*a]);
                b.copy(ivars[*d], t);
            }
            GStmt::Load(r, d, i) => {
                let idx = b.binary(BinOp::And, ivars[*i], (REGION_LEN as i64) - 1);
                b.load_into(ivars[*d], MemRef::global(regions[*r], idx));
            }
            GStmt::Store(r, s, i) => {
                let idx = b.binary(BinOp::And, ivars[*i], (REGION_LEN as i64) - 1);
                b.store(MemRef::global(regions[*r], idx), ivars[*s]);
            }
            GStmt::If(c, body) => {
                let cond = b.binary(BinOp::Gt, ivars[*c], 0i64);
                b.if_then(cond, |b| emit(b, ivars, fvars, regions, body, loop_depth));
            }
            GStmt::Loop(k, body) => {
                if loop_depth >= 2 {
                    emit(b, ivars, fvars, regions, body, loop_depth);
                    continue;
                }
                // Fresh iteration variable per loop site.
                let iv = b.temp(Type::I64);
                b.for_loop(iv, 0i64, *k as i64, 1, |b| {
                    emit(b, ivars, fvars, regions, body, loop_depth + 1);
                });
            }
            GStmt::PtrLoad(r, off, d, i) => {
                // Pointer with a precise points-to target; index masked so
                // base offset (≤7) + index (≤7) stays in bounds.
                let p = b.addr_of(regions[*r], *off as i64);
                let idx = b.binary(BinOp::And, ivars[*i], 7i64);
                b.load_into(ivars[*d], MemRef::ptr(p, idx));
            }
            GStmt::PtrStore(r, off, s, i) => {
                let p = b.addr_of(regions[*r], *off as i64);
                let idx = b.binary(BinOp::And, ivars[*i], 7i64);
                b.store(MemRef::ptr(p, idx), ivars[*s]);
            }
        }
    }
}

fn build_program(stmts: &[GStmt]) -> (Program, FuncId) {
    let mut prog = Program::new();
    let r0 = prog.add_mem("r0", Type::I64, REGION_LEN);
    let r1 = prog.add_mem("r1", Type::I64, REGION_LEN);
    let mut b = FunctionBuilder::new("gen", Some(Type::I64));
    let p0 = b.param("p0", Type::I64);
    let p1 = b.param("p1", Type::I64);
    let pf = b.param("pf", Type::F64);
    let mut ivars = vec![p0, p1];
    for j in 2..NI {
        let v = b.var(format!("iv{j}"), Type::I64);
        b.copy(v, (j as i64) * 3 - 7);
        ivars.push(v);
    }
    let mut fvars = vec![pf];
    for j in 1..NF {
        let v = b.var(format!("fv{j}"), Type::F64);
        b.copy(v, j as f64 * 0.5 - 0.3);
        fvars.push(v);
    }
    emit(&mut b, &ivars, &fvars, &[r0, r1], stmts, 0);
    // Fold everything observable into the return value; floats are also
    // stored so memory comparison covers them.
    let fbits = b.unary(UnOp::FToInt, fvars[1]);
    let mixed = b.binary(BinOp::Xor, ivars[2], fbits);
    let mixed2 = b.binary(BinOp::Add, mixed, ivars[3]);
    b.store(MemRef::global(r0, 0i64), mixed2);
    b.ret(Some(Operand::Var(mixed2)));
    let f = prog.add_func(b.finish());
    (prog, f)
}

fn run_interp(prog: &Program, f: FuncId, args: &[Value]) -> (Option<Value>, MemoryImage) {
    let mut mem = MemoryImage::new(prog);
    for i in 0..REGION_LEN as i64 {
        mem.store(peak_ir::MemId(0), i, Value::I64(i * 11 - 5));
        mem.store(peak_ir::MemId(1), i, Value::I64(100 - i));
    }
    let out = Interp::default()
        .run(prog, f, args, &mut mem)
        .expect("generated programs never trap");
    (out.ret, mem)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// interp(optimize(P, O3)) == interp(P) on random inputs.
    #[test]
    fn o3_preserves_semantics(stmts in program_strategy(), a in -40i64..40, bb in -40i64..40, x in -2.0f64..2.0) {
        let (prog, f) = build_program(&stmts);
        peak_ir::validate_program(&prog).unwrap();
        let cv = optimize(&prog, f, &OptConfig::o3());
        peak_ir::validate_program(&cv.program).unwrap();
        let args = [Value::I64(a), Value::I64(bb), Value::F64(x)];
        let (r1, m1) = run_interp(&prog, f, &args);
        let (r2, m2) = run_interp(&cv.program, cv.func, &args);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(m1, m2);
    }

    /// Random flag subsets preserve semantics too (interactions between
    /// passes, not just the full pipeline).
    #[test]
    fn random_configs_preserve_semantics(
        stmts in program_strategy(),
        bits in any::<u64>(),
        a in -40i64..40,
        bb in -40i64..40,
        x in -2.0f64..2.0,
    ) {
        let (prog, f) = build_program(&stmts);
        let cfg = OptConfig::from_bits(bits);
        let cv = optimize(&prog, f, &cfg);
        peak_ir::validate_program(&cv.program).unwrap();
        let args = [Value::I64(a), Value::I64(bb), Value::F64(x)];
        let (r1, m1) = run_interp(&prog, f, &args);
        let (r2, m2) = run_interp(&cv.program, cv.func, &args);
        prop_assert_eq!(r1, r2, "config {}", cfg);
        prop_assert_eq!(m1, m2, "config {}", cfg);
    }

    /// Optimization never increases the dynamic statement count by more
    /// than the instrumentation slack (prefetch adds a bounded number of
    /// hint statements per loop iteration).
    #[test]
    fn o3_does_not_explode_dynamic_steps(stmts in program_strategy()) {
        let (prog, f) = build_program(&stmts);
        let cv = optimize(&prog, f, &OptConfig::o3().without(peak_opt::Flag::PrefetchLoopArrays));
        let args = [Value::I64(3), Value::I64(-2), Value::F64(0.7)];
        let mut m1 = MemoryImage::new(&prog);
        let mut m2 = MemoryImage::new(&cv.program);
        let s1 = Interp::default().run(&prog, f, &args, &mut m1).unwrap().steps;
        let s2 = Interp::default().run(&cv.program, cv.func, &args, &mut m2).unwrap().steps;
        // Unrolling trades branches for straight-line work but must not
        // multiply the total statement count.
        prop_assert!(s2 <= s1 * 2 + 16, "steps {} -> {}", s1, s2);
    }
}

// Persist failing cases so regressions replay deterministically.
// (proptest finds the file via this marker in the test root.)
