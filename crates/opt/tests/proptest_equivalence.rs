//! Property-based compiler correctness: for random programs and random
//! flag configurations, the optimized version must compute exactly the
//! same results (return value AND final memory image) as the reference
//! interpreter on the original program.
//!
//! The program domain lives in `peak_workloads::fuzzgen` (shared with the
//! `passfuzz` differential-fuzz fleet): structured programs
//! (straight-line arithmetic, bounded counted loops, branches, masked
//! in-bounds memory accesses) where every generated program terminates
//! and never traps — the domain where every -O3 transformation must be
//! exact. Here proptest drives the `GStmt` space; `passfuzz` drives it
//! from raw seeds.

use peak_ir::{FuncId, MemoryImage, Program, Value};
use peak_opt::{optimize, OptConfig};
use peak_workloads::fuzzgen::{build_program, run_reference, GStmt, NF, NI};
use proptest::prelude::*;

fn leaf_stmt() -> impl Strategy<Value = GStmt> {
    prop_oneof![
        (0u8..8, 0..NI, 0..NI, 0..NI).prop_map(|(o, d, a, b)| GStmt::IntOp(o, d, a, b)),
        (0u8..3, 0..NF, 0..NF, 0..NF).prop_map(|(o, d, a, b)| GStmt::FloatOp(o, d, a, b)),
        (0u8..2, 0..NI, 0..NI).prop_map(|(o, d, a)| GStmt::IntUn(o, d, a)),
        (0usize..2, 0..NI, 0..NI).prop_map(|(r, d, i)| GStmt::Load(r, d, i)),
        (0usize..2, 0..NI, 0..NI).prop_map(|(r, s, i)| GStmt::Store(r, s, i)),
        (0usize..2, 0u8..8, 0..NI, 0..NI)
            .prop_map(|(r, off, d, i)| GStmt::PtrLoad(r, off, d, i)),
        (0usize..2, 0u8..8, 0..NI, 0..NI)
            .prop_map(|(r, off, s, i)| GStmt::PtrStore(r, off, s, i)),
    ]
}

fn stmt(depth: u32) -> BoxedStrategy<GStmt> {
    if depth == 0 {
        leaf_stmt().boxed()
    } else {
        prop_oneof![
            4 => leaf_stmt(),
            1 => (0..NI, prop::collection::vec(stmt(depth - 1), 1..4))
                .prop_map(|(c, body)| GStmt::If(c, body)),
            1 => (2u8..6, prop::collection::vec(stmt(depth - 1), 1..4))
                .prop_map(|(k, body)| GStmt::Loop(k, body)),
        ]
        .boxed()
    }
}

fn program_strategy() -> impl Strategy<Value = Vec<GStmt>> {
    prop::collection::vec(stmt(2), 3..14)
}

fn run_interp(prog: &Program, f: FuncId, args: &[Value]) -> (Option<Value>, MemoryImage) {
    run_reference(prog, f, args)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// interp(optimize(P, O3)) == interp(P) on random inputs.
    #[test]
    fn o3_preserves_semantics(stmts in program_strategy(), a in -40i64..40, bb in -40i64..40, x in -2.0f64..2.0) {
        let (prog, f) = build_program(&stmts);
        peak_ir::validate_program(&prog).unwrap();
        let cv = optimize(&prog, f, &OptConfig::o3());
        peak_ir::validate_program(&cv.program).unwrap();
        let args = [Value::I64(a), Value::I64(bb), Value::F64(x)];
        let (r1, m1) = run_interp(&prog, f, &args);
        let (r2, m2) = run_interp(&cv.program, cv.func, &args);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(m1, m2);
    }

    /// Random flag subsets preserve semantics too (interactions between
    /// passes, not just the full pipeline).
    #[test]
    fn random_configs_preserve_semantics(
        stmts in program_strategy(),
        bits in any::<u64>(),
        a in -40i64..40,
        bb in -40i64..40,
        x in -2.0f64..2.0,
    ) {
        let (prog, f) = build_program(&stmts);
        let cfg = OptConfig::from_bits(bits);
        let cv = optimize(&prog, f, &cfg);
        peak_ir::validate_program(&cv.program).unwrap();
        let args = [Value::I64(a), Value::I64(bb), Value::F64(x)];
        let (r1, m1) = run_interp(&prog, f, &args);
        let (r2, m2) = run_interp(&cv.program, cv.func, &args);
        prop_assert_eq!(r1, r2, "config {}", cfg);
        prop_assert_eq!(m1, m2, "config {}", cfg);
    }

    /// Optimization never increases the dynamic statement count by more
    /// than the instrumentation slack (prefetch adds a bounded number of
    /// hint statements per loop iteration).
    #[test]
    fn o3_does_not_explode_dynamic_steps(stmts in program_strategy()) {
        let (prog, f) = build_program(&stmts);
        let cv = optimize(&prog, f, &OptConfig::o3().without(peak_opt::Flag::PrefetchLoopArrays));
        let args = [Value::I64(3), Value::I64(-2), Value::F64(0.7)];
        let mut m1 = MemoryImage::new(&prog);
        let mut m2 = MemoryImage::new(&cv.program);
        let s1 = peak_ir::Interp::default().run(&prog, f, &args, &mut m1).unwrap().steps;
        let s2 = peak_ir::Interp::default().run(&cv.program, cv.func, &args, &mut m2).unwrap().steps;
        // Unrolling trades branches for straight-line work but must not
        // multiply the total statement count.
        prop_assert!(s2 <= s1 * 2 + 16, "steps {} -> {}", s1, s2);
    }
}

// ---------------------------------------------------------------------------
// Named regressions: seeds proptest once found, promoted to deterministic
// tests so they run on every `cargo test` invocation regardless of the
// proptest-regressions replay file.
// ---------------------------------------------------------------------------

/// Shrunk from `proptest_equivalence.proptest-regressions`: two
/// back-to-back counted loops (a store loop into r1 then a load loop from
/// r0) under config bits `1815793212044066816` historically produced a
/// wrong final memory image — the store loop's effect was lost when the
/// later passes reasoned about the loads.
#[test]
fn regression_loop_store_then_loop_load() {
    let stmts = vec![
        GStmt::Loop(3, vec![GStmt::Store(1, 1, 0)]),
        GStmt::Loop(3, vec![GStmt::Load(0, 0, 0)]),
        GStmt::IntOp(0, 0, 0, 0),
    ];
    let cfg = OptConfig::from_bits(1_815_793_212_044_066_816);
    let (prog, f) = build_program(&stmts);
    peak_ir::validate_program(&prog).unwrap();
    let cv = optimize(&prog, f, &cfg);
    peak_ir::validate_program(&cv.program).unwrap();
    let args = [Value::I64(0), Value::I64(0), Value::F64(0.0)];
    let (r1, m1) = run_interp(&prog, f, &args);
    let (r2, m2) = run_interp(&cv.program, cv.func, &args);
    assert_eq!(r1, r2, "config {cfg}");
    assert_eq!(m1, m2, "config {cfg}");
    // The same case must also survive the full translation-validation
    // oracle at the strictest level.
    peak_opt::optimize_checked(&prog, f, &cfg, peak_opt::ValidationLevel::Full)
        .expect("regression case passes full validation");
}

/// The same regression shape under -O3 (all flags), pinning both the
/// plain pipeline and the checked pipeline.
#[test]
fn regression_loop_store_then_loop_load_o3() {
    let stmts = vec![
        GStmt::Loop(3, vec![GStmt::Store(1, 1, 0)]),
        GStmt::Loop(3, vec![GStmt::Load(0, 0, 0)]),
        GStmt::IntOp(0, 0, 0, 0),
    ];
    let (prog, f) = build_program(&stmts);
    let cv = peak_opt::optimize_checked(&prog, f, &OptConfig::o3(), peak_opt::ValidationLevel::Full)
        .expect("O3 passes full validation on the regression shape");
    let args = [Value::I64(0), Value::I64(0), Value::F64(0.0)];
    let (r1, m1) = run_interp(&prog, f, &args);
    let (r2, m2) = run_interp(&cv.program, cv.func, &args);
    assert_eq!(r1, r2);
    assert_eq!(m1, m2);
}
