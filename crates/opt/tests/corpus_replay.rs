//! Regression-corpus replay: every `tests/corpus/*.ir` entry — written by
//! the `passfuzz` differential-fuzz fleet when it finds and shrinks a
//! divergence, or promoted by hand from other failure sources — is
//! re-validated on every `cargo test` run:
//!
//! 1. the translation-validation oracle (`optimize_checked` at
//!    [`ValidationLevel::Full`]) must accept the pipeline on the entry's
//!    recorded flag configuration;
//! 2. the optimized program must match the reference interpreter on the
//!    entry's recorded arguments (return value and final memory);
//! 3. the cycle simulator must agree with the interpreter on the entry's
//!    recorded machine model.
//!
//! Corpus files are textual IR prefixed with `#` metadata headers (the IR
//! parser skips `#` lines, so `parse_program` on the whole file yields
//! the program):
//!
//! ```text
//! # seed: 42                      (informational)
//! # config_bits: 0x0123456789abcdef
//! # machine: sparc | p4
//! # args: <i64> <i64> <f64-bits-hex>
//! # check: oracle | interp-diff | machine-diff | regression
//! mem r0: i64[16]
//! ...
//! ```

use peak_ir::{parse_program, values_eq, FuncId, Program, Value};
use peak_opt::{OptConfig, ValidationLevel};
use peak_sim::{AddressMap, ExecOptions, MachineSpec, MachineState, PreparedVersion};
use peak_workloads::fuzzgen;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

struct Entry {
    name: String,
    prog: Program,
    func: FuncId,
    cfg: OptConfig,
    machine: MachineSpec,
    args: [Value; 3],
}

fn parse_hex_u64(s: &str) -> u64 {
    let t = s.trim().trim_start_matches("0x");
    u64::from_str_radix(t, 16).unwrap_or_else(|e| panic!("bad hex {s:?}: {e}"))
}

fn parse_entry(path: &Path) -> Entry {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut headers: HashMap<String, String> = HashMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix('#') else { continue };
        if let Some((k, v)) = rest.split_once(':') {
            headers
                .entry(k.trim().to_string())
                .or_insert_with(|| v.trim().to_string());
        }
    }
    let bits = parse_hex_u64(
        headers
            .get("config_bits")
            .unwrap_or_else(|| panic!("{name}: missing '# config_bits:' header")),
    );
    let machine = match headers.get("machine").map(String::as_str) {
        Some("p4") => MachineSpec::pentium_iv(),
        _ => MachineSpec::sparc_ii(),
    };
    let args_raw = headers
        .get("args")
        .unwrap_or_else(|| panic!("{name}: missing '# args:' header"));
    let parts: Vec<&str> = args_raw.split_whitespace().collect();
    assert_eq!(parts.len(), 3, "{name}: args must be '<i64> <i64> <f64-bits>'");
    let args = [
        Value::I64(parts[0].parse().unwrap()),
        Value::I64(parts[1].parse().unwrap()),
        Value::F64(f64::from_bits(parse_hex_u64(parts[2]))),
    ];
    let prog = parse_program(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
    peak_ir::validate_program(&prog).unwrap_or_else(|e| panic!("{name}: invalid IR: {e}"));
    let func = prog
        .func_by_name("gen")
        .unwrap_or_else(|| panic!("{name}: no function named 'gen'"));
    Entry { name, prog, func, cfg: OptConfig::from_bits(bits), machine, args }
}

fn replay(e: &Entry) {
    // Check 1: full translation validation of the recorded pipeline.
    let cv = peak_opt::optimize_checked(&e.prog, e.func, &e.cfg, ValidationLevel::Full)
        .unwrap_or_else(|f| panic!("{}: oracle rejects pipeline: {f}", e.name));

    // Check 2: interpreter equivalence on the recorded arguments.
    let (r1, m1) = fuzzgen::run_reference(&e.prog, e.func, &e.args);
    let (r2, m2) = fuzzgen::run_reference(&cv.program, cv.func, &e.args);
    match (&r1, &r2) {
        (Some(a), Some(b)) if values_eq(a, b) => {}
        (None, None) => {}
        _ => panic!("{}: interp-diff: return {r1:?} vs {r2:?} (config {})", e.name, e.cfg),
    }
    assert_eq!(m1, m2, "{}: interp-diff: final memory (config {})", e.name, e.cfg);

    // Check 3: the cycle simulator agrees with the interpreter.
    let pv = PreparedVersion::prepare(cv, &e.machine);
    let mem_lens: Vec<usize> = e.prog.mems.iter().map(|m| m.len).collect();
    let amap = AddressMap::new(&mem_lens);
    let mut mem = fuzzgen::init_memory(&e.prog);
    let mut state = MachineState::noiseless(e.machine.clone());
    let res = peak_sim::execute(&pv, &e.args, &mut mem, &amap, &mut state, &ExecOptions::default())
        .unwrap_or_else(|err| panic!("{}: machine-diff: simulator trapped: {err}", e.name));
    match (&r1, &res.ret) {
        (Some(a), Some(b)) if values_eq(a, b) => {}
        (None, None) => {}
        _ => panic!(
            "{}: machine-diff: return interp {r1:?} vs machine {:?}",
            e.name, res.ret
        ),
    }
    assert_eq!(m1, mem, "{}: machine-diff: final memory", e.name);
}

/// Every corpus entry replays clean. The corpus must never be empty —
/// silently replaying nothing would pass vacuously.
#[test]
fn corpus_replays_clean() {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|d| d.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "regression corpus is empty");
    for p in &paths {
        replay(&parse_entry(p));
    }
    println!("corpus: {} entries replayed clean", paths.len());
}

/// Regenerate the hand-promoted builtin corpus entries (run with
/// `cargo test -p peak-opt --test corpus_replay -- --ignored regen`).
/// Keeping generation in-tree means the entry tracks the generator's
/// textual format instead of rotting.
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate builtins"]
fn regen_builtin_corpus() {
    use fuzzgen::GStmt;
    // Promoted from proptest_equivalence.proptest-regressions: two
    // back-to-back counted loops (store into r1, then load from r0)
    // under config bits 1815793212044066816.
    let stmts = vec![
        GStmt::Loop(3, vec![GStmt::Store(1, 1, 0)]),
        GStmt::Loop(3, vec![GStmt::Load(0, 0, 0)]),
        GStmt::IntOp(0, 0, 0, 0),
    ];
    let bits: u64 = 1_815_793_212_044_066_816;
    let (prog, _) = fuzzgen::build_program(&stmts);
    let mut text = String::new();
    text.push_str("# builtin regression (promoted from proptest_equivalence.proptest-regressions)\n");
    text.push_str("# regenerate: cargo test -p peak-opt --test corpus_replay -- --ignored regen\n");
    text.push_str(&format!("# config_bits: {bits:#018x}\n"));
    text.push_str("# machine: sparc\n");
    text.push_str(&format!("# args: 0 0 {:#018x}\n", 0.0f64.to_bits()));
    text.push_str("# check: regression\n");
    text.push_str("# detail: store loop into r1 followed by load loop from r0; final memory diverged historically\n");
    text.push_str(&fuzzgen::render_program(&prog));
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("builtin_loop_store_load.ir");
    std::fs::write(&path, text).unwrap();
    // The freshly written entry must replay clean right now.
    replay(&parse_entry(&path));
    println!("wrote {}", path.display());
}
