//! Set-associative data-cache simulation (two levels + memory).
//!
//! Addresses are element-granular (8-byte elements). Each program region
//! gets a disjoint address range; spill slots live in a dedicated stack
//! range. Cache state persists across TS invocations within a simulated
//! run — exactly the preconditioning effect that biases naive
//! re-execution-based rating and that the improved RBR's warm-up pass
//! corrects (paper §2.4.2).

use crate::machine::CacheParams;

/// Tag sentinel for an invalid cache line.
const EMPTY: u64 = u64::MAX;

/// One cache level with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    /// tags[set * ways + way]; [`EMPTY`] marks an invalid line. A
    /// sentinel instead of `Option<u64>` halves the scanned bytes per
    /// lookup; real tags can never reach it (addresses are far below
    /// `2^63`).
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
    /// Shift/mask form of the set/line arithmetic when the geometry is
    /// power-of-two (every shipped machine spec); `None` falls back to
    /// div/mod. Same mapping either way — this is a strength reduction
    /// of the hot path, not a policy change.
    pow2: Option<(u32, u64, u32)>,
}

impl Cache {
    /// Empty (cold) cache.
    pub fn new(params: CacheParams) -> Self {
        let n = params.sets * params.ways;
        let pow2 = (params.line_elems.is_power_of_two() && params.sets.is_power_of_two()).then(
            || {
                (
                    params.line_elems.trailing_zeros(),
                    params.sets as u64 - 1,
                    params.sets.trailing_zeros(),
                )
            },
        );
        Cache {
            params,
            tags: vec![EMPTY; n],
            stamps: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
            pow2,
        }
    }

    /// Access the line containing element address `addr`. Returns true on
    /// hit; on miss the line is filled.
    #[inline(always)]
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = match self.pow2 {
            Some((line_shift, set_mask, set_shift)) => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_shift)
            }
            None => {
                let line = addr / self.params.line_elems as u64;
                ((line % self.params.sets as u64) as usize, line / self.params.sets as u64)
            }
        };
        debug_assert_ne!(tag, EMPTY);
        let base = set * self.params.ways;
        if self.params.ways == 1 {
            // Direct-mapped fast path: one compare, no LRU state (the
            // stamps/clock only order ways and are unobservable).
            let t = &mut self.tags[base];
            if *t == tag {
                self.hits += 1;
                return true;
            }
            *t = tag;
            self.misses += 1;
            return false;
        }
        self.clock += 1;
        let ways = &mut self.tags[base..base + self.params.ways];
        if let Some(w) = ways.iter().position(|t| *t == tag) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Fill LRU way.
        let victim = (0..self.params.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("nonzero associativity");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Drop all lines (used between independent simulated runs).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The two-level data-cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// L2 unified cache.
    pub l2: Cache,
    l1_hit: u64,
    l2_hit: u64,
    mem: u64,
}

impl Hierarchy {
    /// Cold hierarchy for a machine.
    pub fn new(spec: &crate::machine::MachineSpec) -> Self {
        Hierarchy {
            l1: Cache::new(spec.l1),
            l2: Cache::new(spec.l2),
            l1_hit: spec.l1.hit_cycles,
            l2_hit: spec.l2.hit_cycles,
            mem: spec.mem_cycles,
        }
    }

    /// Cycles for a data access at `addr` (read or write — writeback
    /// traffic is folded into the miss costs).
    #[inline(always)]
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            self.l1_hit
        } else if self.l2.access(addr) {
            self.l2_hit
        } else {
            self.mem
        }
    }

    /// Prefetch: touch the line, charge nothing (the issue cost is charged
    /// by the executor as a statement).
    #[inline]
    pub fn prefetch(&mut self, addr: u64) {
        let _ = self.l1.access(addr);
        let _ = self.l2.access(addr);
    }

    /// Flush both levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

/// Address layout: regions padded to disjoint ranges; the stack (spill
/// slots) in its own range.
#[derive(Debug, Clone)]
pub struct AddressMap {
    region_base: Vec<u64>,
    stack_base: u64,
}

/// Pad between regions, in elements — keeps regions from sharing lines
/// while still mapping into overlapping cache sets (realistic conflicts).
const REGION_PAD: u64 = 64;

impl AddressMap {
    /// Build from region lengths.
    pub fn new(region_lens: &[usize]) -> Self {
        let mut base = 0u64;
        let mut region_base = Vec::with_capacity(region_lens.len());
        for &len in region_lens {
            region_base.push(base);
            base += len as u64 + REGION_PAD;
        }
        AddressMap { region_base, stack_base: base + 4096 }
    }

    /// Element address of `mem[idx]`.
    #[inline]
    pub fn addr(&self, mem: peak_ir::MemId, idx: i64) -> u64 {
        self.region_base[mem.index()].wrapping_add(idx as u64)
    }

    /// Element address of spill slot `slot`.
    #[inline]
    pub fn spill_addr(&self, slot: u32) -> u64 {
        self.stack_base + slot as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheParams { sets: 16, ways: 2, line_elems: 4, hit_cycles: 1 });
        assert!(!c.access(0), "cold miss");
        assert!(c.access(0), "hit");
        assert!(c.access(3), "same line");
        assert!(!c.access(4), "next line misses");
        let (h, m) = c.stats();
        assert_eq!((h, m), (2, 2));
    }

    #[test]
    fn lru_eviction() {
        // 1 set × 2 ways × 1-elem lines: addresses 0, 16, 32 conflict.
        let mut c = Cache::new(CacheParams { sets: 1, ways: 2, line_elems: 1, hit_cycles: 1 });
        c.access(0);
        c.access(1);
        assert!(c.access(0), "still resident");
        c.access(2); // evicts 1 (LRU)
        assert!(!c.access(1), "1 was evicted");
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let spec = MachineSpec::pentium_iv();
        let mut h = Hierarchy::new(&spec);
        let miss = h.access(0);
        let hit = h.access(0);
        assert_eq!(miss, spec.mem_cycles);
        assert_eq!(hit, spec.l1.hit_cycles);
        // After L1 eviction the line should still be in L2 (L2 is bigger).
        let stride = (spec.l1.sets * spec.l1.line_elems) as u64;
        for k in 1..=(spec.l1.ways as u64 + 1) {
            h.access(k * stride); // conflict set 0
        }
        let l2 = h.access(0);
        assert_eq!(l2, spec.l2.hit_cycles);
    }

    #[test]
    fn working_set_behaviour() {
        // A working set within L1 capacity stays fast; a much larger one
        // keeps missing.
        let spec = MachineSpec::sparc_ii();
        let small = spec.l1.capacity_elems() / 2;
        let large = spec.l1.capacity_elems() * 8;
        let cost_of = |n: usize| {
            let mut h = Hierarchy::new(&spec);
            // two sweeps; measure the second.
            for i in 0..n {
                h.access(i as u64);
            }
            let mut total = 0;
            for i in 0..n {
                total += h.access(i as u64);
            }
            total as f64 / n as f64
        };
        assert!(cost_of(small) < 3.0);
        // Large set misses L1 on every new line: avg ≈ (l2_hit + (line-1)·l1_hit)/line.
        assert!(cost_of(large) > 3.5);
    }

    #[test]
    fn address_map_disjoint() {
        let m = AddressMap::new(&[100, 200, 50]);
        let a0 = m.addr(peak_ir::MemId(0), 99);
        let a1 = m.addr(peak_ir::MemId(1), 0);
        assert!(a1 > a0, "regions do not overlap");
        assert!(m.spill_addr(0) > m.addr(peak_ir::MemId(2), 49));
    }
}
