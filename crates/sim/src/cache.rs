//! Set-associative data-cache simulation (two levels + memory).
//!
//! Addresses are element-granular (8-byte elements). Each program region
//! gets a disjoint address range; spill slots live in a dedicated stack
//! range. Cache state persists across TS invocations within a simulated
//! run — exactly the preconditioning effect that biases naive
//! re-execution-based rating and that the improved RBR's warm-up pass
//! corrects (paper §2.4.2).

use crate::machine::CacheParams;

/// Tag sentinel for an invalid cache line.
const EMPTY: u64 = u64::MAX;

/// Nibble-packed identity permutation: way `i` in nibble `i` (masked to
/// the live nibbles of a set's associativity).
const IDENT_PERM: u32 = 0x7654_3210;

/// One cache level with LRU replacement — the compressed representation.
///
/// Per set, the recency order lives in a *permutation word* instead of
/// per-line LRU stamps: nibble `k` of the low 32 bits of `meta[set]`
/// holds the way id at recency rank `k` (rank 0 = LRU, highest live
/// nibble = MRU), which covers every shipped geometry (ways ≤ 8; wider
/// caches fall back to an explicit byte order). The high 32 bits hold
/// the flush generation the set last observed, so [`Cache::flush`] is
/// one counter bump and a set lazily resets on its next access — no
/// per-line clears, and the hot path reads *one* metadata word per
/// access where the stamp scheme read and wrote a second cache line of
/// stamps.
///
/// ## Equivalence to the stamp oracle ([`RefCache`])
///
/// The stamp scheme evicts `min_by_key(stamp)`, breaking ties (which
/// only exist at stamp 0, i.e. never-touched ways) by lowest way index.
/// The permutation starts as the identity (way 0 first), a hit moves
/// its way to MRU preserving the relative order of the rest, and a miss
/// evicts the front nibble and rotates the victim to MRU — exactly the
/// order `min_by_key` + stamp-update induces, including the cold-start
/// tie-break. `costmodel_differential` pins hits, misses, evictions and
/// post-flush state against the oracle over thousands of seeded random
/// streams.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    /// tags[set * ways + way]; [`EMPTY`] marks an invalid line. A
    /// sentinel instead of `Option<u64>` halves the scanned bytes per
    /// lookup; real tags can never reach it (addresses are far below
    /// `2^63`). Contiguous per set — the hit scan is one
    /// SIMD-friendly stride of ≤ 8 × 8 bytes. Direct-mapped caches
    /// (ways == 1) store `(generation << 32) | tag` instead, so their
    /// access path never touches `meta` at all.
    tags: Vec<u64>,
    /// Per-set metadata: `(generation << 32) | lru_permutation`.
    meta: Vec<u64>,
    /// Explicit recency order (`order[base + k]` = way at rank `k`,
    /// rank 0 = LRU) for geometries wider than 8 ways; empty otherwise.
    order: Vec<u8>,
    /// Current flush generation; a set whose `meta` generation differs
    /// is logically empty and resets on first touch.
    gen: u32,
    /// Identity permutation masked to this associativity.
    ident: u32,
    hits: u64,
    misses: u64,
    /// Shift/mask form of the set/line arithmetic when the geometry is
    /// power-of-two (every shipped machine spec); `None` falls back to
    /// div/mod. Same mapping either way — this is a strength reduction
    /// of the hot path, not a policy change.
    pow2: Option<(u32, u64, u32)>,
}

impl Cache {
    /// Empty (cold) cache.
    pub fn new(params: CacheParams) -> Self {
        let n = params.sets * params.ways;
        let pow2 = pow2_geometry(&params);
        let ident = if params.ways >= 8 {
            IDENT_PERM
        } else {
            IDENT_PERM & ((1u32 << (4 * params.ways as u32)) - 1)
        };
        let order: Vec<u8> = if params.ways > 8 {
            (0..n).map(|i| (i % params.ways) as u8).collect()
        } else {
            Vec::new()
        };
        Cache {
            tags: vec![EMPTY; n],
            meta: vec![ident as u64; params.sets],
            order,
            gen: 0,
            ident,
            hits: 0,
            misses: 0,
            pow2,
            params,
        }
    }

    /// Access the line containing element address `addr`. Returns true on
    /// hit; on miss the line is filled.
    ///
    /// Only the *per-access common case* is inlined into callers: a
    /// single tag compare for direct-mapped sets, the MRU tag compare
    /// for multiway sets. Everything rarer — post-flush set resets,
    /// non-MRU hits, misses — lives in out-of-line helpers so the
    /// execution loops this inlines into (`run_func` and the
    /// interpreting tiers) keep their code footprint and register
    /// pressure flat.
    #[inline(always)]
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = match self.pow2 {
            Some((line_shift, set_mask, set_shift)) => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_shift)
            }
            None => {
                let line = addr / self.params.line_elems as u64;
                ((line % self.params.sets as u64) as usize, line / self.params.sets as u64)
            }
        };
        debug_assert_ne!(tag, EMPTY);
        let ways = self.params.ways;
        let gen_bits = (self.gen as u64) << 32;
        if ways == 1 {
            // Direct-mapped: the flush generation is folded into the
            // *stored tag word* (`(gen << 32) | tag`), so a flushed
            // line mismatches on the same single compare that detects
            // a conflict miss. One memory word per access, no
            // metadata at all — this is the only path a direct-mapped
            // L1 (SPARC-II) ever takes.
            debug_assert_eq!(tag >> 32, 0, "direct-mapped tag must leave the generation bits free");
            let want = gen_bits | tag;
            let t = &mut self.tags[set];
            return if *t == want {
                self.hits += 1;
                true
            } else {
                *t = want;
                self.misses += 1;
                false
            };
        }
        let base = set * ways;
        let meta = self.meta[set];
        if meta & (0xFFFF_FFFF << 32) != gen_bits {
            // First touch since a flush: the set is logically empty.
            return self.miss_cold_set(set, base, tag, gen_bits);
        }
        match ways {
            2 => {
                // Two-way: the permutation is a single LRU choice.
                let t = &mut self.tags[base..base + 2];
                if t[0] == tag || t[1] == tag {
                    let w = (t[1] == tag) as u64;
                    self.hits += 1;
                    self.meta[set] = gen_bits | (w << 4) | (1 - w);
                    true
                } else {
                    let v = meta & 0xF;
                    t[v as usize] = tag;
                    self.misses += 1;
                    self.meta[set] = gen_bits | (v << 4) | (1 - v);
                    false
                }
            }
            w @ 3..=8 => {
                let perm = meta & 0xFFFF_FFFF;
                let mru_shift = 4 * (w as u32 - 1);
                // Streaming accesses mostly re-hit the MRU way: one
                // tag compare, no recency update, no scan.
                let mru = ((perm >> mru_shift) & 0xF) as usize;
                if self.tags[base + mru] == tag {
                    self.hits += 1;
                    return true;
                }
                self.access_multi_slow(set, base, w, tag, gen_bits, perm)
            }
            _ => self.access_wide(base, tag),
        }
    }

    /// First touch of a set after a flush: lazily reset it, then fill
    /// the miss (a logically-empty set can only miss). Out of line —
    /// runs once per set per flush.
    #[cold]
    #[inline(never)]
    fn miss_cold_set(&mut self, set: usize, base: usize, tag: u64, gen_bits: u64) -> bool {
        let ways = self.params.ways;
        self.tags[base..base + ways].fill(EMPTY);
        if ways > 8 {
            for (i, o) in self.order[base..base + ways].iter_mut().enumerate() {
                *o = i as u8;
            }
            self.meta[set] = gen_bits | self.ident as u64;
            return self.access_wide(base, tag);
        }
        self.misses += 1;
        let ident = self.ident as u64;
        let mru_shift = 4 * (ways as u32 - 1);
        // Fresh identity order: the miss evicts rank-0 (way 0) and
        // rotates it to MRU, same as the generic miss path below.
        self.meta[set] = gen_bits | (ident >> 4) | ((ident & 0xF) << mru_shift);
        self.tags[base] = tag;
        false
    }

    /// Non-MRU access for the permutation-word geometries (3–8 ways):
    /// scan, O(1) rank splice on a hit, front-nibble eviction on a
    /// miss. Out of line: only the MRU compare belongs in the callers'
    /// hot loops (A/B'd against letting the inliner decide — the
    /// forced call kept `run_func`'s footprint flat and measured
    /// better on the full grid).
    #[inline(never)]
    fn access_multi_slow(
        &mut self,
        set: usize,
        base: usize,
        w: usize,
        tag: u64,
        gen_bits: u64,
        perm: u64,
    ) -> bool {
        let mru_shift = 4 * (w as u32 - 1);
        let lanes = &self.tags[base..base + w];
        if let Some(hw) = lanes.iter().position(|t| *t == tag) {
            self.hits += 1;
            let hw = hw as u64;
            // O(1) rank lookup: XOR the permutation against a
            // nibble-broadcast of the hit way — exactly one
            // live nibble zeroes out, and the borrow trick
            // flags the lowest zero nibble (false positives
            // can only appear above it, so `trailing_zeros`
            // lands on the true rank).
            let x = perm ^ hw.wrapping_mul(0x1111_1111);
            let zero = x.wrapping_sub(0x1111_1111) & !x & 0x8888_8888;
            let pos = zero.trailing_zeros() / 4;
            // Close the gap at `pos` (ranks above shift down
            // one nibble; relative order preserved) and insert
            // the hit way at MRU. `hw != mru` here (the MRU way was
            // already compared and set tags are distinct), so
            // `pos < w - 1`.
            let below = perm & ((1u64 << (4 * pos)) - 1);
            let above = (perm >> (4 * (pos + 1))) << (4 * pos);
            self.meta[set] = gen_bits | below | above | (hw << mru_shift);
            true
        } else {
            self.misses += 1;
            let victim = (perm & 0xF) as usize;
            // Evict the LRU (front nibble) and rotate the
            // victim way to MRU.
            self.meta[set] = gen_bits | (perm >> 4) | ((victim as u64) << mru_shift);
            self.tags[base + victim] = tag;
            false
        }
    }

    /// Wide-associativity fallback (> 8 ways): move-to-front LRU over
    /// explicit order bytes. No shipped machine spec takes this path.
    #[inline(never)]
    fn access_wide(&mut self, base: usize, tag: u64) -> bool {
        let ways = self.params.ways;
        let lanes = &self.tags[base..base + ways];
        if let Some(hw) = lanes.iter().position(|t| *t == tag) {
            self.hits += 1;
            let ord = &mut self.order[base..base + ways];
            let pos = ord
                .iter()
                .position(|&o| o as usize == hw)
                .expect("hit way present in recency order");
            ord[pos..].rotate_left(1);
            true
        } else {
            self.misses += 1;
            let ord = &mut self.order[base..base + ways];
            let victim = ord[0] as usize;
            ord.rotate_left(1);
            self.tags[base + victim] = tag;
            false
        }
    }

    /// Drop all lines (used between independent simulated runs).
    /// Generation-stamped: O(1) — sets reset lazily on next touch.
    pub fn flush(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrap (2^32 flushes): stale set metadata could
            // alias the fresh generation, so pay one hard reset.
            self.tags.fill(EMPTY);
            self.meta.fill(self.ident as u64);
            let ways = self.params.ways;
            for (i, o) in self.order.iter_mut().enumerate() {
                *o = (i % ways) as u8;
            }
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Shift/mask strength reduction of the set/line arithmetic for
/// power-of-two geometries.
fn pow2_geometry(params: &CacheParams) -> Option<(u32, u64, u32)> {
    (params.line_elems.is_power_of_two() && params.sets.is_power_of_two()).then(|| {
        (
            params.line_elems.trailing_zeros(),
            params.sets as u64 - 1,
            params.sets.trailing_zeros(),
        )
    })
}

/// The reference cache: per-line LRU stamps and a monotonic clock. This
/// is the original implementation, kept verbatim as the *oracle* for
/// the compressed [`Cache`] — `costmodel_differential` drives both with
/// identical address streams and requires identical hit/miss/eviction
/// behaviour and post-flush state. Not used on any hot path.
#[derive(Debug, Clone)]
pub struct RefCache {
    params: CacheParams,
    /// tags[set * ways + way]; [`EMPTY`] marks an invalid line.
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
    pow2: Option<(u32, u64, u32)>,
}

impl RefCache {
    /// Empty (cold) cache.
    pub fn new(params: CacheParams) -> Self {
        let n = params.sets * params.ways;
        let pow2 = pow2_geometry(&params);
        RefCache {
            params,
            tags: vec![EMPTY; n],
            stamps: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
            pow2,
        }
    }

    /// Access the line containing element address `addr`. Returns true on
    /// hit; on miss the line is filled.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = match self.pow2 {
            Some((line_shift, set_mask, set_shift)) => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_shift)
            }
            None => {
                let line = addr / self.params.line_elems as u64;
                ((line % self.params.sets as u64) as usize, line / self.params.sets as u64)
            }
        };
        debug_assert_ne!(tag, EMPTY);
        let base = set * self.params.ways;
        if self.params.ways == 1 {
            // Direct-mapped fast path: one compare, no LRU state (the
            // stamps/clock only order ways and are unobservable).
            let t = &mut self.tags[base];
            if *t == tag {
                self.hits += 1;
                return true;
            }
            *t = tag;
            self.misses += 1;
            return false;
        }
        self.clock += 1;
        let ways = &mut self.tags[base..base + self.params.ways];
        if let Some(w) = ways.iter().position(|t| *t == tag) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Fill LRU way.
        let victim = (0..self.params.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("nonzero associativity");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Drop all lines.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// The two-level data-cache hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// L2 unified cache.
    pub l2: Cache,
    l1_hit: u64,
    l2_hit: u64,
    mem: u64,
}

impl Hierarchy {
    /// Cold hierarchy for a machine.
    pub fn new(spec: &crate::machine::MachineSpec) -> Self {
        Hierarchy {
            l1: Cache::new(spec.l1),
            l2: Cache::new(spec.l2),
            l1_hit: spec.l1.hit_cycles,
            l2_hit: spec.l2.hit_cycles,
            mem: spec.mem_cycles,
        }
    }

    /// Cycles for a data access at `addr` (read or write — writeback
    /// traffic is folded into the miss costs). Same-line streaming is
    /// absorbed inside [`Cache::access`]: the set's MRU tag is checked
    /// first and a re-hit skips the recency update. (A 1-entry
    /// line filter in front of the hierarchy was tried and reverted:
    /// stencil loops interleave several streams plus software
    /// prefetches, so it almost never fired and was pure overhead.)
    #[inline(always)]
    pub fn access(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            self.l1_hit
        } else if self.l2.access(addr) {
            self.l2_hit
        } else {
            self.mem
        }
    }

    /// Prefetch: touch the line, charge nothing (the issue cost is charged
    /// by the executor as a statement). `inline(always)`: prefetch-heavy
    /// loops (`prefetch-loop-arrays`) execute this once per element.
    #[inline(always)]
    pub fn prefetch(&mut self, addr: u64) {
        let _ = self.l1.access(addr);
        let _ = self.l2.access(addr);
    }

    /// Flush both levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

/// Address layout: regions padded to disjoint ranges; the stack (spill
/// slots) in its own range.
#[derive(Debug, Clone)]
pub struct AddressMap {
    region_base: Vec<u64>,
    stack_base: u64,
}

/// Pad between regions, in elements — keeps regions from sharing lines
/// while still mapping into overlapping cache sets (realistic conflicts).
const REGION_PAD: u64 = 64;

impl AddressMap {
    /// Build from region lengths.
    pub fn new(region_lens: &[usize]) -> Self {
        let mut base = 0u64;
        let mut region_base = Vec::with_capacity(region_lens.len());
        for &len in region_lens {
            region_base.push(base);
            base += len as u64 + REGION_PAD;
        }
        AddressMap { region_base, stack_base: base + 4096 }
    }

    /// Element address of `mem[idx]`.
    #[inline]
    pub fn addr(&self, mem: peak_ir::MemId, idx: i64) -> u64 {
        self.region_base[mem.index()].wrapping_add(idx as u64)
    }

    /// Element address of spill slot `slot`.
    #[inline]
    pub fn spill_addr(&self, slot: u32) -> u64 {
        self.stack_base + slot as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheParams { sets: 16, ways: 2, line_elems: 4, hit_cycles: 1 });
        assert!(!c.access(0), "cold miss");
        assert!(c.access(0), "hit");
        assert!(c.access(3), "same line");
        assert!(!c.access(4), "next line misses");
        let (h, m) = c.stats();
        assert_eq!((h, m), (2, 2));
    }

    #[test]
    fn lru_eviction() {
        // 1 set × 2 ways × 1-elem lines: addresses 0, 16, 32 conflict.
        let mut c = Cache::new(CacheParams { sets: 1, ways: 2, line_elems: 1, hit_cycles: 1 });
        c.access(0);
        c.access(1);
        assert!(c.access(0), "still resident");
        c.access(2); // evicts 1 (LRU)
        assert!(!c.access(1), "1 was evicted");
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let spec = MachineSpec::pentium_iv();
        let mut h = Hierarchy::new(&spec);
        let miss = h.access(0);
        let hit = h.access(0);
        assert_eq!(miss, spec.mem_cycles);
        assert_eq!(hit, spec.l1.hit_cycles);
        // After L1 eviction the line should still be in L2 (L2 is bigger).
        let stride = (spec.l1.sets * spec.l1.line_elems) as u64;
        for k in 1..=(spec.l1.ways as u64 + 1) {
            h.access(k * stride); // conflict set 0
        }
        let l2 = h.access(0);
        assert_eq!(l2, spec.l2.hit_cycles);
    }

    #[test]
    fn working_set_behaviour() {
        // A working set within L1 capacity stays fast; a much larger one
        // keeps missing.
        let spec = MachineSpec::sparc_ii();
        let small = spec.l1.capacity_elems() / 2;
        let large = spec.l1.capacity_elems() * 8;
        let cost_of = |n: usize| {
            let mut h = Hierarchy::new(&spec);
            // two sweeps; measure the second.
            for i in 0..n {
                h.access(i as u64);
            }
            let mut total = 0;
            for i in 0..n {
                total += h.access(i as u64);
            }
            total as f64 / n as f64
        };
        assert!(cost_of(small) < 3.0);
        // Large set misses L1 on every new line: avg ≈ (l2_hit + (line-1)·l1_hit)/line.
        assert!(cost_of(large) > 3.5);
    }

    #[test]
    fn address_map_disjoint() {
        let m = AddressMap::new(&[100, 200, 50]);
        let a0 = m.addr(peak_ir::MemId(0), 99);
        let a1 = m.addr(peak_ir::MemId(1), 0);
        assert!(a1 > a0, "regions do not overlap");
        assert!(m.spill_addr(0) > m.addr(peak_ir::MemId(2), 49));
    }
}
