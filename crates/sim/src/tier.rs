//! Execution tiers and the pluggable native-tier backend interface.
//!
//! The executor ladder has three rungs that all charge **bit-identical
//! cycles** for the same invocation stream (the differential goldens in
//! `peak-core` pin this down):
//!
//! * [`ExecTier::Interp`] — the slow tier: walks the IR and recomputes
//!   every flag-/machine-dependent cost per statement (the shape of the
//!   executor before pre-decoding existed). Baseline for A/B benches.
//! * [`ExecTier::Predecoded`] — the default: per-block folded constants
//!   and a resolved spill-event stream
//!   ([`PreparedVersion::prepare`](crate::PreparedVersion::prepare)).
//! * [`ExecTier::Jit`] — threaded code: blocks lowered once into arrays
//!   of monomorphized op thunks (the `peak-jit` crate), with per-version
//!   fallback to the predecoded tier when lowering declines.
//!
//! The tier is an execution-engine choice, never a semantics or cost
//! choice: `PEAK_TIER` can be flipped on any experiment and every golden
//! byte stays identical.

use crate::cache::AddressMap;
use crate::exec::{ExecError, ExecOptions, ExecResult, ExecScratch, MachineState};
use peak_ir::{MemoryImage, Value};

/// Which execution engine runs TS invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecTier {
    /// Recompute-everything IR walker (slowest, zero preparation reuse).
    Interp,
    /// Pre-decoded cost-stream interpreter (the default).
    #[default]
    Predecoded,
    /// Threaded-code backend with per-version fallback to `Predecoded`.
    Jit,
}

impl ExecTier {
    /// All tiers, in ladder order (slowest first).
    pub const ALL: [ExecTier; 3] = [ExecTier::Interp, ExecTier::Predecoded, ExecTier::Jit];

    /// Stable lower-case name (CLI values, metric labels, JSON fields).
    pub fn name(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Predecoded => "predecoded",
            ExecTier::Jit => "jit",
        }
    }

    /// Parse a tier name as accepted by `PEAK_TIER` and `--tier`.
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(ExecTier::Interp),
            "predecoded" | "predecode" | "default" => Some(ExecTier::Predecoded),
            "jit" | "native" => Some(ExecTier::Jit),
            _ => None,
        }
    }

    /// The tier selected by the `PEAK_TIER` environment variable
    /// (default [`ExecTier::Predecoded`]). Re-read on every call so
    /// tests can flip the variable between harnesses; panics on an
    /// unrecognized value — a typo silently falling back to the default
    /// would invalidate whatever A/B experiment set it.
    pub fn from_env() -> ExecTier {
        match std::env::var("PEAK_TIER") {
            Ok(v) if !v.is_empty() => ExecTier::parse(&v)
                .unwrap_or_else(|| panic!("PEAK_TIER={v:?} is not interp|predecoded|jit")),
            _ => ExecTier::Predecoded,
        }
    }
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A compiled execution engine for one
/// [`PreparedVersion`](crate::PreparedVersion): given the same inputs it
/// must produce the same [`ExecResult`] (return value, `true_cycles`,
/// counters, write log) and the same machine-state evolution as
/// [`execute_with_scratch`](crate::execute_with_scratch), bit for bit.
///
/// Backends are attached lazily to the prepared version via
/// [`PreparedVersion::native_backend`](crate::PreparedVersion::native_backend)
/// and shared through the version cache, so lowering happens at most
/// once per (version, machine).
pub trait TierBackend: Send + Sync {
    /// Execute one invocation of the version's entry function.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        args: &[Value],
        mem: &mut MemoryImage,
        amap: &AddressMap,
        state: &mut MachineState,
        opts: &ExecOptions,
        scratch: &mut ExecScratch,
    ) -> Result<ExecResult, ExecError>;

    /// Number of basic blocks this backend compiled (metrics).
    fn blocks_compiled(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip() {
        for t in ExecTier::ALL {
            assert_eq!(ExecTier::parse(t.name()), Some(t));
        }
        assert_eq!(ExecTier::parse("native"), Some(ExecTier::Jit));
        assert_eq!(ExecTier::parse("bogus"), None);
        assert_eq!(ExecTier::default(), ExecTier::Predecoded);
    }
}
