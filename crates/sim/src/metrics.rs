//! Point-in-time metric snapshots of the simulated machine.
//!
//! The simulator itself stays observability-free (no `peak-obs`
//! dependency, nothing on the execution hot path): callers snapshot a
//! [`SimMetrics`] from a [`MachineState`](crate::MachineState) at
//! measurement boundaries and diff two snapshots to attribute work to a
//! run. The tuning layer turns those deltas into trace events.

use crate::exec::MachineState;
use crate::faults::FaultStats;
use peak_util::{Json, ToJson};

/// Cumulative machine counters at one instant.
///
/// All fields are monotonically non-decreasing over a run (cache and
/// predictor counters reset only on explicit `flush`), so
/// [`SimMetrics::delta`] of two snapshots taken around an execution
/// window gives that window's exclusive counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimMetrics {
    /// IR statements executed.
    pub instructions: u64,
    /// True simulated cycles.
    pub cycles: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Correctly predicted branches.
    pub branch_correct: u64,
    /// Mispredicted branches.
    pub branch_wrong: u64,
    /// Injected timer spikes so far (0 without a fault plan).
    pub fault_spikes: u64,
    /// Injected jitter bursts so far.
    pub fault_bursts: u64,
    /// Injected measurement dropouts so far.
    pub fault_dropouts: u64,
    /// Injected perturbation episodes so far.
    pub fault_perturbations: u64,
}

impl SimMetrics {
    /// Snapshot the counters of `state`.
    pub fn snapshot(state: &MachineState) -> SimMetrics {
        let (l1_hits, l1_misses) = state.caches.l1.stats();
        let (l2_hits, l2_misses) = state.caches.l2.stats();
        let (branch_correct, branch_wrong) = state.predictor.stats();
        let faults = state
            .faults
            .as_ref()
            .map(|p| p.stats)
            .unwrap_or_default();
        SimMetrics {
            instructions: state.instructions,
            cycles: state.cycles,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            branch_correct,
            branch_wrong,
            fault_spikes: faults.spikes,
            fault_bursts: faults.bursts,
            fault_dropouts: faults.dropouts,
            fault_perturbations: faults.perturbations,
        }
    }

    /// Exclusive counts since `earlier` (saturating, so a cache flush
    /// between snapshots degrades to zero rather than wrapping).
    pub fn delta(&self, earlier: &SimMetrics) -> SimMetrics {
        SimMetrics {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cycles: self.cycles.saturating_sub(earlier.cycles),
            l1_hits: self.l1_hits.saturating_sub(earlier.l1_hits),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            l2_hits: self.l2_hits.saturating_sub(earlier.l2_hits),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            branch_correct: self.branch_correct.saturating_sub(earlier.branch_correct),
            branch_wrong: self.branch_wrong.saturating_sub(earlier.branch_wrong),
            fault_spikes: self.fault_spikes.saturating_sub(earlier.fault_spikes),
            fault_bursts: self.fault_bursts.saturating_sub(earlier.fault_bursts),
            fault_dropouts: self.fault_dropouts.saturating_sub(earlier.fault_dropouts),
            fault_perturbations: self
                .fault_perturbations
                .saturating_sub(earlier.fault_perturbations),
        }
    }

    /// True when every counter is zero (nothing executed in the window).
    pub fn is_zero(&self) -> bool {
        *self == SimMetrics::default()
    }
}

impl ToJson for SimMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("instructions", Json::U(self.instructions)),
            ("cycles", Json::U(self.cycles)),
            ("l1_hits", Json::U(self.l1_hits)),
            ("l1_misses", Json::U(self.l1_misses)),
            ("l2_hits", Json::U(self.l2_hits)),
            ("l2_misses", Json::U(self.l2_misses)),
            ("branch_correct", Json::U(self.branch_correct)),
            ("branch_wrong", Json::U(self.branch_wrong)),
            ("fault_spikes", Json::U(self.fault_spikes)),
            ("fault_bursts", Json::U(self.fault_bursts)),
            ("fault_dropouts", Json::U(self.fault_dropouts)),
            ("fault_perturbations", Json::U(self.fault_perturbations)),
        ])
    }
}

impl ToJson for FaultStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spikes", Json::U(self.spikes)),
            ("bursts", Json::U(self.bursts)),
            ("dropouts", Json::U(self.dropouts)),
            ("perturbations", Json::U(self.perturbations)),
            ("crashed", Json::Bool(self.crashed)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineKind, MachineSpec};

    #[test]
    fn snapshot_delta_isolates_a_window() {
        let spec = MachineSpec::of(MachineKind::SparcII);
        let mut state = MachineState::noiseless(spec);
        state.instructions = 100;
        state.cycles = 1000;
        let before = SimMetrics::snapshot(&state);
        state.instructions = 160;
        state.cycles = 1900;
        let _ = state.caches.access(64);
        let after = SimMetrics::snapshot(&state);
        let d = after.delta(&before);
        assert_eq!(d.instructions, 60);
        assert_eq!(d.cycles, 900);
        assert_eq!(d.l1_hits + d.l1_misses, 1);
        assert!(!d.is_zero());
        assert!(before.delta(&before).is_zero());
    }

    #[test]
    fn metrics_json_has_stable_keys() {
        let m = SimMetrics {
            instructions: 5,
            cycles: 9,
            ..SimMetrics::default()
        };
        let j = m.to_json();
        assert_eq!(j.get("instructions").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(9));
        assert_eq!(j.get("fault_dropouts").and_then(Json::as_u64), Some(0));
    }
}
