//! Machine models: a SPARC II-like and a Pentium IV-like target.
//!
//! The two models differ exactly where the paper's results depend on it:
//! the SPARC II has a large register file (strict-aliasing register
//! promotion is free) and a shallow pipeline; the Pentium IV has few
//! architectural registers (promotion causes spills — the ART anecdote of
//! §5.2), a deep pipeline with expensive branch mispredictions, and a
//! smaller L1 with a much larger relative memory latency.

use peak_ir::{BinOp, UnOp};

/// Which machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// UltraSPARC II-class: in-order, many registers, mild penalties.
    SparcII,
    /// Pentium 4-class: deep pipeline, 8 GPRs / x87 stack, costly misses.
    PentiumIV,
}

impl MachineKind {
    /// Short display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MachineKind::SparcII => "SPARC-II",
            MachineKind::PentiumIV => "Pentium-IV",
        }
    }
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in elements (8-byte elements).
    pub line_elems: usize,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
}

impl CacheParams {
    /// Capacity in elements.
    pub fn capacity_elems(&self) -> usize {
        self.sets * self.ways * self.line_elems
    }
}

/// Full machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Which machine this is.
    pub kind: MachineKind,
    /// Integer/pointer registers available to the allocator.
    pub int_regs: u32,
    /// Float registers available to the allocator.
    pub fp_regs: u32,
    /// L1 data cache.
    pub l1: CacheParams,
    /// L2 unified cache.
    pub l2: CacheParams,
    /// Memory latency (L2 miss), cycles.
    pub mem_cycles: u64,
    /// Branch misprediction penalty, cycles.
    pub mispredict_penalty: u64,
    /// Branch-predictor table size (entries).
    pub predictor_entries: usize,
    /// Extra cycles for a taken branch (front-end redirect).
    pub taken_branch_cost: u64,
    /// Discount on the taken-branch cost when the target is aligned.
    pub aligned_discount: u64,
    /// Whether the ISA has a branch delay slot (`delayed-branch` flag).
    pub has_delay_slot: bool,
    /// Call/return overhead, cycles.
    pub call_overhead: u64,
    /// Cycles per instrumentation counter bump.
    pub counter_cost: u64,
    /// Statements that fit the I-cache comfortably; beyond this every
    /// block entry pays a fetch penalty.
    pub icache_stmt_capacity: usize,
    /// Per-block-entry penalty when over I-cache capacity.
    pub icache_penalty: u64,
    /// Extra cycles per spill-slot access beyond the cache latency.
    /// Models store-to-load forwarding stalls in spill/fill code — a
    /// notorious Pentium 4 pathology (x87 fxch + forwarding misses),
    /// essentially absent on SPARC with its register windows. This is the
    /// asymmetry behind the paper's §5.2 ART anecdote: register promotion
    /// under strict aliasing is free on SPARC II and disastrous on P4.
    pub spill_extra_cycles: u64,
    /// Out-of-order depth factor: fraction (per mille) of a dependence
    /// stall actually exposed (in-order = 1000, aggressive OoO lower).
    pub stall_exposure_permille: u64,
    /// Timer noise: multiplicative Gaussian sigma (per mille).
    pub timer_sigma_permille: u64,
    /// Timer noise: probability of an interrupt-like outlier (per million
    /// invocations).
    pub outlier_per_million: u64,
    /// Outlier magnitude, cycles.
    pub outlier_cycles: u64,
}

impl MachineSpec {
    /// The SPARC II-like model.
    pub fn sparc_ii() -> Self {
        MachineSpec {
            kind: MachineKind::SparcII,
            int_regs: 24,
            fp_regs: 32,
            l1: CacheParams { sets: 512, ways: 1, line_elems: 4, hit_cycles: 2 },
            l2: CacheParams { sets: 2048, ways: 4, line_elems: 8, hit_cycles: 10 },
            mem_cycles: 70,
            mispredict_penalty: 4,
            predictor_entries: 512,
            taken_branch_cost: 2,
            aligned_discount: 1,
            has_delay_slot: true,
            call_overhead: 8,
            counter_cost: 2,
            icache_stmt_capacity: 1800,
            icache_penalty: 2,
            spill_extra_cycles: 0,
            stall_exposure_permille: 1000, // in-order
            timer_sigma_permille: 8,
            outlier_per_million: 1500,
            outlier_cycles: 60_000,
        }
    }

    /// The Pentium IV-like model.
    pub fn pentium_iv() -> Self {
        MachineSpec {
            kind: MachineKind::PentiumIV,
            int_regs: 6, // 8 GPRs minus ESP and one scratch
            fp_regs: 8,  // x87 stack
            l1: CacheParams { sets: 64, ways: 4, line_elems: 8, hit_cycles: 2 },
            l2: CacheParams { sets: 1024, ways: 8, line_elems: 16, hit_cycles: 18 },
            mem_cycles: 220,
            mispredict_penalty: 20,
            predictor_entries: 4096,
            taken_branch_cost: 1,
            aligned_discount: 1,
            has_delay_slot: false,
            call_overhead: 12,
            counter_cost: 2,
            icache_stmt_capacity: 1200, // trace cache is small
            icache_penalty: 3,
            spill_extra_cycles: 7,
            stall_exposure_permille: 350, // deep OoO hides most stalls
            timer_sigma_permille: 12,
            outlier_per_million: 2500,
            outlier_cycles: 120_000,
        }
    }

    /// Construct by kind.
    pub fn of(kind: MachineKind) -> Self {
        match kind {
            MachineKind::SparcII => Self::sparc_ii(),
            MachineKind::PentiumIV => Self::pentium_iv(),
        }
    }

    /// Execution cycles of a binary operator (excluding operand fetch).
    pub fn binop_cost(&self, op: BinOp) -> u64 {
        use BinOp::*;
        match self.kind {
            MachineKind::SparcII => match op {
                Add | Sub | And | Or | Xor | Shl | Shr | Min | Max | PtrAdd | PtrDiff => 1,
                Mul => 5,
                Div | Rem => 36,
                FAdd | FSub => 3,
                FMul => 3,
                FDiv => 22,
                _ if op.is_comparison() => 1,
                _ => 1,
            },
            MachineKind::PentiumIV => match op {
                Add | Sub | And | Or | Xor | Min | Max | PtrAdd | PtrDiff => 1,
                Shl | Shr => 2, // P4 shifts are slow
                Mul => 10,
                Div | Rem => 56,
                FAdd | FSub => 5,
                FMul => 7,
                FDiv => 38,
                _ if op.is_comparison() => 1,
                _ => 1,
            },
        }
    }

    /// Execution cycles of a unary operator.
    pub fn unop_cost(&self, op: UnOp) -> u64 {
        use UnOp::*;
        match self.kind {
            MachineKind::SparcII => match op {
                Neg | Not | FNeg | FAbs => 1,
                IntToF | FToInt => 4,
                FSqrt => 24,
            },
            MachineKind::PentiumIV => match op {
                Neg | Not | FNeg | FAbs => 1,
                IntToF | FToInt => 6,
                FSqrt => 40,
            },
        }
    }

    /// Producer latency used by the dependence-stall model (cycles the
    /// result takes to become forwardable).
    pub fn result_latency(&self, s: &peak_ir::Stmt) -> u64 {
        match s {
            peak_ir::Stmt::Assign { rv, .. } => match rv {
                peak_ir::Rvalue::Load(_) => self.l1.hit_cycles + 1,
                peak_ir::Rvalue::Binary(op, ..) => self.binop_cost(*op).min(20),
                peak_ir::Rvalue::Unary(op, _) => self.unop_cost(*op).min(20),
                _ => 1,
            },
            _ => 1,
        }
    }

    /// Register budget for `peak-opt`'s allocator.
    pub fn reg_budget(&self) -> peak_opt::RegBudget {
        peak_opt::RegBudget { int_regs: self.int_regs, fp_regs: self.fp_regs }
    }

    /// A fault scenario for this machine scaled by `intensity` (0 = no
    /// faults, 1 = a heavily loaded shared host, >1 = hostile). Spike
    /// magnitude tracks the machine's own outlier model so injected
    /// spikes are the same order as natural ones.
    pub fn fault_profile(&self, intensity: f64, seed: u64) -> crate::faults::FaultConfig {
        let s = intensity.max(0.0);
        crate::faults::FaultConfig {
            seed,
            spike_per_million: (s * 20_000.0) as u64,
            spike_cycles: self.outlier_cycles,
            burst_per_million: (s * 4_000.0) as u64,
            burst_len: (8, 40),
            burst_factor: 1.0 + 0.15 * s,
            dropout_per_million: (s * 30_000.0) as u64,
            perturb_per_million: (s * 50_000.0) as u64,
            perturb_lines: if s > 0.0 { 64 + (s * 192.0) as u32 } else { 0 },
            crash_at: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_differ_where_it_matters() {
        let s = MachineSpec::sparc_ii();
        let p = MachineSpec::pentium_iv();
        assert!(s.int_regs > 2 * p.int_regs, "SPARC II has many more GPRs");
        assert!(p.mispredict_penalty > 3 * s.mispredict_penalty, "P4 pipeline is deep");
        assert!(p.mem_cycles > s.mem_cycles, "P4 memory is relatively farther");
        assert!(s.has_delay_slot && !p.has_delay_slot);
    }

    #[test]
    fn cache_capacities() {
        let s = MachineSpec::sparc_ii();
        // 512 sets × 1 way × 4 elems × 8 B = 16 KiB L1.
        assert_eq!(s.l1.capacity_elems() * 8, 16 * 1024);
        let p = MachineSpec::pentium_iv();
        // 64 × 4 × 8 × 8 = 16 KiB? No: P4 L1 is 8 KiB... 64*4*8 = 2048 elems = 16 KiB.
        // The model uses 16 KiB vs the real 8 KiB to compensate for our
        // 8-byte-element-only memory; relative sizes still favour SPARC II
        // per element budget below.
        assert_eq!(p.l1.capacity_elems(), 2048);
    }

    #[test]
    fn op_costs_reasonable() {
        let p = MachineSpec::pentium_iv();
        assert!(p.binop_cost(BinOp::Div) > p.binop_cost(BinOp::Mul));
        assert!(p.binop_cost(BinOp::Mul) > p.binop_cost(BinOp::Add));
        assert!(p.binop_cost(BinOp::FDiv) > p.binop_cost(BinOp::FMul));
    }
}
