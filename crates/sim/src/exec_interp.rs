//! The slow execution tier: a recompute-everything IR walker.
//!
//! This is the shape of the executor *before* pre-decoding existed —
//! every flag-dependent base cost, dependence stall, spill lookup and
//! terminator charge is rederived per statement from `OptConfig` bits
//! and the machine spec. It exists as the bottom rung of the tier
//! ladder (`interp → predecoded → jit`) so the A/B benches measure real
//! engine deltas, and as a third independent derivation of the cost
//! model for the differential tests.
//!
//! Cost equivalence with the pre-decoded tier is by construction:
//! constant cycle charges commute (only their sum enters
//! `true_cycles`), and every stateful access — data cache lines, branch
//! predictor entries, spill-slot traffic — happens at the same point in
//! the same order. The tier goldens in `peak-core` byte-compare all
//! three tiers over the full 42-scenario grid.

use crate::cache::AddressMap;
use crate::exec::{
    call_save_cost, fault_preamble, taken_cost, ExecError, ExecOptions, ExecResult, ExecScratch,
    MachineState, PreparedVersion, RECURSION_LIMIT, STEP_LIMIT,
};
use peak_ir::ExecError as InterpError;
use peak_ir::{MemBase, MemId, MemRef, MemoryImage, Operand, PtrVal, Rvalue, Stmt, Terminator, Value, VarId};
use peak_opt::Flag;

/// Execute one invocation on the slow tier. Same contract (and same
/// results, bit for bit) as
/// [`execute_with_scratch`](crate::execute_with_scratch).
#[allow(clippy::too_many_arguments)]
pub fn execute_interp_with_scratch(
    pv: &PreparedVersion,
    args: &[Value],
    mem: &mut MemoryImage,
    amap: &AddressMap,
    state: &mut MachineState,
    opts: &ExecOptions,
    scratch: &mut ExecScratch,
) -> Result<ExecResult, ExecError> {
    fault_preamble(state)?;
    if opts.record_writes {
        scratch.begin_write_log();
    }
    let config = pv.version.config;
    let mut ctx = SlowCtx {
        pv,
        amap,
        state,
        counters: vec![0; opts.num_counters],
        writes: Vec::new(),
        record_writes: opts.record_writes,
        steps: 0,
        scratch,
        coalesce: config.enabled(Flag::RegAllocCoalesce),
        rename: config.enabled(Flag::RenameRegisters),
        caller_saves: config.enabled(Flag::CallerSaves),
        delay: false, // resolved against the spec below
        spill_extra: 0,
        spill_sub: if config.enabled(Flag::ScheduleInsns2) { 2 } else { 0 },
    };
    ctx.delay = config.enabled(Flag::DelayedBranch) && ctx.state.spec.has_delay_slot;
    ctx.spill_extra = ctx.state.spec.spill_extra_cycles;
    let mut cycles = 0u64;
    let ret = ctx.call(pv.version.func, args, mem, &mut cycles, 0)?;
    ctx.state.cycles += cycles;
    let steps = ctx.steps;
    ctx.state.instructions += steps;
    Ok(ExecResult { ret, true_cycles: cycles, counters: ctx.counters, writes: ctx.writes })
}

struct SlowCtx<'a> {
    pv: &'a PreparedVersion,
    amap: &'a AddressMap,
    state: &'a mut MachineState,
    counters: Vec<u64>,
    writes: Vec<(MemId, i64, Value)>,
    record_writes: bool,
    steps: u64,
    scratch: &'a mut ExecScratch,
    coalesce: bool,
    rename: bool,
    caller_saves: bool,
    delay: bool,
    spill_extra: u64,
    spill_sub: u64,
}

impl SlowCtx<'_> {
    fn call(
        &mut self,
        func: peak_ir::FuncId,
        args: &[Value],
        mem: &mut MemoryImage,
        cycles: &mut u64,
        depth: usize,
    ) -> Result<Option<Value>, InterpError> {
        if depth > RECURSION_LIMIT {
            return Err(InterpError::RecursionLimit);
        }
        let pv = self.pv;
        let fi = func.index();
        let f = pv.version.program.func(func);
        let spills = &pv.spill_slot[fi];
        let base = pv.slot_base[fi];
        let spec = self.state.spec.clone();
        let exposure = spec.stall_exposure_permille;
        let icache_pen = if pv.over_icache { spec.icache_penalty } else { 0 };
        let call_cost =
            spec.call_overhead + call_save_cost(self.caller_saves, pv.live_across_calls[fi]);

        let mut regs = self.scratch.take_regs(f.num_vars());
        for (prm, a) in f.params.iter().zip(args) {
            regs[prm.index()] = *a;
        }

        let mut uses_buf: Vec<VarId> = Vec::new();
        let mut prev_uses: Vec<VarId> = Vec::new();
        let mut bb = f.entry;
        loop {
            let block = f.block(bb);
            *cycles += icache_pen;
            self.steps += block.stmts.len() as u64 + 1;
            if self.steps > STEP_LIMIT {
                return Err(InterpError::StepLimit);
            }
            // Dependence-stall window: (def, latency) and uses of the
            // previous statement; opens fresh at every block entry.
            let mut prev_def: Option<(VarId, u64)> = None;
            prev_uses.clear();
            for s in block.stmts.iter() {
                uses_buf.clear();
                s.uses(&mut uses_buf);
                let def = s.def();
                if let Some((pd, lat)) = prev_def {
                    if lat > 1 && uses_buf.contains(&pd) {
                        *cycles += (lat - 1) * exposure / 1000;
                    }
                }
                if !self.rename {
                    if let Some(d) = def {
                        if prev_uses.contains(&d) || prev_def.is_some_and(|(p, _)| p == d) {
                            *cycles += 1;
                        }
                    }
                }
                // Spill loads for used variables, before the body.
                for u in &uses_buf {
                    if let Some(slot) = spills[u.index()] {
                        self.spill_access(base + slot, cycles);
                    }
                }
                match s {
                    Stmt::Assign { dst, rv } => {
                        let v = match rv {
                            Rvalue::Use(op) => {
                                let free = self.coalesce
                                    && spills[dst.index()].is_none()
                                    && op.as_var().is_none_or(|v| spills[v.index()].is_none());
                                if !free {
                                    *cycles += 1;
                                }
                                self.operand(op, &regs)
                            }
                            Rvalue::Unary(op, a) => {
                                *cycles += spec.unop_cost(*op);
                                peak_ir::interp::eval_unop(*op, self.operand(a, &regs))
                            }
                            Rvalue::Binary(op, a, b) => {
                                *cycles += spec.binop_cost(*op);
                                peak_ir::interp::eval_binop(
                                    *op,
                                    self.operand(a, &regs),
                                    self.operand(b, &regs),
                                )?
                            }
                            Rvalue::Load(mr) => {
                                *cycles += 1;
                                let (m, idx) = self.resolve(mr, &regs, mem)?;
                                *cycles += self.state.caches.access(self.amap.addr(m, idx));
                                mem.load(m, idx)
                            }
                            Rvalue::AddrOf(m, idx) => {
                                *cycles += 1;
                                Value::Ptr(PtrVal {
                                    mem: *m,
                                    offset: self.operand(idx, &regs).as_i64(),
                                })
                            }
                            Rvalue::Select { cond, on_true, on_false } => {
                                *cycles += 2;
                                if self.operand(cond, &regs).is_true() {
                                    self.operand(on_true, &regs)
                                } else {
                                    self.operand(on_false, &regs)
                                }
                            }
                            Rvalue::Call { func: callee, args } => {
                                *cycles += call_cost;
                                let mut vals = self.scratch.take_vals();
                                for a in args {
                                    vals.push(self.operand(a, &regs));
                                }
                                let r = self.call(*callee, &vals, mem, cycles, depth + 1)?;
                                self.scratch.put_vals(vals);
                                r.expect("value call of void function")
                            }
                        };
                        regs[dst.index()] = v;
                        // Spill store of the defined variable, after the
                        // body.
                        if let Some(slot) = spills[dst.index()] {
                            self.spill_access(base + slot, cycles);
                        }
                    }
                    Stmt::Store { dst, src } => {
                        *cycles += 1;
                        let (m, idx) = self.resolve(dst, &regs, mem)?;
                        *cycles += self.state.caches.access(self.amap.addr(m, idx));
                        if self.record_writes && self.scratch.first_write(m.0, idx) {
                            self.writes.push((m, idx, mem.load(m, idx)));
                            *cycles += 3;
                        }
                        let v = self.operand(src, &regs);
                        mem.store(m, idx, v);
                    }
                    Stmt::CallVoid { func: callee, args } => {
                        *cycles += call_cost;
                        let mut vals = self.scratch.take_vals();
                        for a in args {
                            vals.push(self.operand(a, &regs));
                        }
                        self.call(*callee, &vals, mem, cycles, depth + 1)?;
                        self.scratch.put_vals(vals);
                    }
                    Stmt::Prefetch { addr } => {
                        *cycles += 1;
                        if let Ok((m, idx)) = self.resolve_unchecked(addr, &regs) {
                            let len = mem.buf(m).len() as i64;
                            if idx >= 0 && idx < len {
                                self.state.caches.prefetch(self.amap.addr(m, idx));
                            }
                        }
                    }
                    Stmt::CounterInc { counter } => {
                        *cycles += spec.counter_cost;
                        if counter.index() >= self.counters.len() {
                            self.counters.resize(counter.index() + 1, 0);
                        }
                        self.counters[counter.index()] += 1;
                    }
                }
                prev_def = def.map(|d| (d, spec.result_latency(s)));
                std::mem::swap(&mut prev_uses, &mut uses_buf);
            }
            let fillable = self.delay && !block.stmts.is_empty();
            match &block.term {
                Terminator::Jump(t) => {
                    *cycles += 1 + taken_cost(&spec, f, *t, fillable);
                    bb = *t;
                }
                Terminator::Branch { cond, on_true, on_false } => {
                    *cycles += 1;
                    let taken = self.operand(cond, &regs).is_true();
                    let site = ((fi as u64) << 32) ^ (bb.index() as u64);
                    if self.state.predictor.mispredicted(site, taken) {
                        *cycles += spec.mispredict_penalty;
                    }
                    if taken {
                        *cycles += taken_cost(&spec, f, *on_true, fillable);
                    }
                    bb = if taken { *on_true } else { *on_false };
                }
                Terminator::Return(v) => {
                    *cycles += 1;
                    let ret = v.as_ref().map(|op| self.operand(op, &regs));
                    self.scratch.put_regs(regs);
                    return Ok(ret);
                }
            }
        }
    }

    #[inline]
    fn spill_access(&mut self, slot: u32, cycles: &mut u64) {
        let addr = self.amap.spill_addr(slot);
        let mut c = self.state.caches.access(addr) + self.spill_extra;
        c = c.saturating_sub(self.spill_sub);
        *cycles += c.max(1);
    }

    #[inline]
    fn operand(&self, op: &Operand, regs: &[Value]) -> Value {
        match op {
            Operand::Var(v) => regs[v.index()],
            Operand::Const(c) => *c,
        }
    }

    fn resolve(
        &self,
        mr: &MemRef,
        regs: &[Value],
        mem: &MemoryImage,
    ) -> Result<(MemId, i64), InterpError> {
        let (m, i) = self.resolve_unchecked(mr, regs)?;
        let len = mem.buf(m).len();
        if i < 0 || i as usize >= len {
            return Err(InterpError::OutOfBounds { mem: m.0, index: i, len });
        }
        Ok((m, i))
    }

    fn resolve_unchecked(&self, mr: &MemRef, regs: &[Value]) -> Result<(MemId, i64), InterpError> {
        let idx = self.operand(&mr.index, regs).as_i64();
        Ok(match mr.base {
            MemBase::Global(m) => (m, idx),
            MemBase::Ptr(p) => {
                let pv = regs[p.index()].as_ptr();
                (pv.mem, pv.offset + idx)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_with_scratch;
    use crate::machine::MachineSpec;
    use peak_ir::{BinOp, FunctionBuilder, Program, Type};
    use peak_opt::OptConfig;

    fn sum_kernel() -> (Program, peak_ir::FuncId) {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 4096);
        let mut b = FunctionBuilder::new("sum", Some(Type::F64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, peak_ir::MemRef::global(a, i));
            b.binary_into(acc, BinOp::FAdd, acc, x);
        });
        b.ret(Some(acc.into()));
        let f = prog.add_func(b.finish());
        (prog, f)
    }

    /// The slow tier and the predecoded tier agree bit-for-bit on
    /// results, cycles, and the evolution of cache/predictor state
    /// across several configs and both machines.
    #[test]
    fn slow_tier_bit_identical_to_predecoded() {
        let (prog, f) = sum_kernel();
        for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
            for cfg in [
                OptConfig::o3(),
                OptConfig::o0(),
                OptConfig::o3().without(Flag::RegAllocCoalesce),
                OptConfig::o3().without(Flag::ScheduleInsns2),
            ] {
                let cv = peak_opt::optimize(&prog, f, &cfg);
                let amap = AddressMap::new(
                    &cv.program.mems.iter().map(|m| m.len).collect::<Vec<_>>(),
                );
                let pv = PreparedVersion::prepare(cv, &spec);
                let mut s1 = MachineState::noiseless(spec.clone());
                let mut s2 = MachineState::noiseless(spec.clone());
                let mut m1 = MemoryImage::new(&pv.version.program);
                let mut m2 = MemoryImage::new(&pv.version.program);
                let a = pv.version.program.mem_by_name("a").unwrap();
                for i in 0..4096 {
                    m1.store(a, i, Value::F64(0.5));
                    m2.store(a, i, Value::F64(0.5));
                }
                let mut sc1 = ExecScratch::new();
                let mut sc2 = ExecScratch::new();
                let opts = ExecOptions::default();
                for n in [7i64, 900, 40] {
                    let r1 = execute_with_scratch(
                        &pv, &[Value::I64(n)], &mut m1, &amap, &mut s1, &opts, &mut sc1,
                    )
                    .unwrap();
                    let r2 = execute_interp_with_scratch(
                        &pv, &[Value::I64(n)], &mut m2, &amap, &mut s2, &opts, &mut sc2,
                    )
                    .unwrap();
                    assert_eq!(r1.ret, r2.ret);
                    assert_eq!(r1.true_cycles, r2.true_cycles, "cfg {cfg:?} n={n}");
                    assert_eq!(r1.counters, r2.counters);
                }
                assert_eq!(s1.cycles, s2.cycles);
                assert_eq!(s1.instructions, s2.instructions);
            }
        }
    }
}
