//! Deterministic fault injection: the failure modes a real measurement
//! environment inflicts on a tuning run, reproduced from a seed so every
//! scenario can be replayed exactly.
//!
//! Four fault families (all optional, all off by default):
//!
//! * **timer spikes / jitter bursts** — one-off additive spikes beyond the
//!   machine's own outlier model, and sustained multiplicative inflation
//!   over a window of measurements (a co-tenant or frequency-scaling
//!   episode);
//! * **state perturbation** — between TS invocations, a burst of
//!   co-tenant memory traffic and branch history pollutes the caches and
//!   the predictor (no cycles are charged to the program — the cost shows
//!   up later as extra misses);
//! * **measurement dropout** — an invocation executes but its timing is
//!   lost (lost sample, cycles still spent);
//! * **version crash** — the Nth execution of a run faults, surfaced as
//!   [`crate::exec::ExecError::InjectedCrash`] rather than a panic, so the
//!   driver can abandon the run and degrade gracefully.
//!
//! A [`FaultConfig`] is pure data (JSON round-trip via `peak-util`) and
//! describes the scenario; a [`FaultPlan`] is the per-run RNG state
//! derived from `config.seed ^ run_seed`, so re-running the same run seed
//! replays the same faults — the property checkpoint/resume relies on.

use crate::branch::BranchPredictor;
use crate::cache::Hierarchy;
use peak_util::{Json, ToJson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Serializable description of a fault scenario. Rates are expressed per
/// million events so configs round-trip through JSON without float drift.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Base seed; each run's plan derives its RNG from `seed ^ run_seed`.
    pub seed: u64,
    /// Extra additive timer spikes, per million measurements.
    pub spike_per_million: u64,
    /// Magnitude of an injected spike, cycles (scaled 0.5–3× per spike).
    pub spike_cycles: u64,
    /// Probability a sustained jitter burst starts, per million
    /// measurements.
    pub burst_per_million: u64,
    /// Burst length range in measurements (inclusive).
    pub burst_len: (u32, u32),
    /// Multiplicative inflation applied to every measurement inside a
    /// burst (e.g. `1.25` = 25% slower readings).
    pub burst_factor: f64,
    /// Measurement dropout rate, per million measurements.
    pub dropout_per_million: u64,
    /// Cache/predictor perturbation rate, per million executions.
    pub perturb_per_million: u64,
    /// Co-tenant cache lines touched per perturbation episode.
    pub perturb_lines: u32,
    /// Crash the Nth TS execution of every run (1-based). `None` = never.
    pub crash_at: Option<u64>,
}

impl FaultConfig {
    /// A scenario with every fault disabled (useful as a base to tweak).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            spike_per_million: 0,
            spike_cycles: 0,
            burst_per_million: 0,
            burst_len: (0, 0),
            burst_factor: 1.0,
            dropout_per_million: 0,
            perturb_per_million: 0,
            perturb_lines: 0,
            crash_at: None,
        }
    }

    /// Parse a config back from the JSON produced by [`ToJson`].
    pub fn from_json(j: &Json) -> Option<FaultConfig> {
        let len = j.get("burst_len")?.as_arr()?;
        Some(FaultConfig {
            seed: j.get("seed")?.as_u64()?,
            spike_per_million: j.get("spike_per_million")?.as_u64()?,
            spike_cycles: j.get("spike_cycles")?.as_u64()?,
            burst_per_million: j.get("burst_per_million")?.as_u64()?,
            burst_len: (len.first()?.as_u64()? as u32, len.get(1)?.as_u64()? as u32),
            burst_factor: j.get("burst_factor")?.as_f64()?,
            dropout_per_million: j.get("dropout_per_million")?.as_u64()?,
            perturb_per_million: j.get("perturb_per_million")?.as_u64()?,
            perturb_lines: j.get("perturb_lines")?.as_u64()? as u32,
            crash_at: match j.get("crash_at")? {
                Json::Null => None,
                v => Some(v.as_u64()?),
            },
        })
    }
}

impl ToJson for FaultConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("spike_per_million", self.spike_per_million.to_json()),
            ("spike_cycles", self.spike_cycles.to_json()),
            ("burst_per_million", self.burst_per_million.to_json()),
            ("burst_len", vec![self.burst_len.0 as u64, self.burst_len.1 as u64].to_json()),
            ("burst_factor", self.burst_factor.to_json()),
            ("dropout_per_million", self.dropout_per_million.to_json()),
            ("perturb_per_million", self.perturb_per_million.to_json()),
            ("perturb_lines", (self.perturb_lines as u64).to_json()),
            ("crash_at", self.crash_at.to_json()),
        ])
    }
}

/// Counters of faults actually injected (diagnostics / bench reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Additive spikes injected.
    pub spikes: u64,
    /// Jitter bursts started.
    pub bursts: u64,
    /// Measurements dropped.
    pub dropouts: u64,
    /// Perturbation episodes applied.
    pub perturbations: u64,
    /// Whether this plan crashed its run.
    pub crashed: bool,
}

/// Per-run fault state: the config plus a derived RNG and burst/crash
/// progress. Recreated from `(config, run_seed)` at the start of every
/// run, which keeps fault streams independent of how many runs preceded
/// them — the property that makes checkpoint/resume bit-identical.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: StdRng,
    burst_left: u32,
    executions: u64,
    /// Injection counters.
    pub stats: FaultStats,
}

/// Element-address space co-tenant traffic is drawn from (large enough to
/// sweep every cache set with distinct tags).
const POLLUTION_ADDR_SPACE: u64 = 1 << 22;
/// Branch-site space used for predictor pollution.
const POLLUTION_SITE_SPACE: u64 = 1 << 16;

fn rate(per_million: u64) -> f64 {
    (per_million.min(1_000_000)) as f64 / 1_000_000.0
}

impl FaultPlan {
    /// Instantiate the scenario for one run.
    pub fn new(config: FaultConfig, run_seed: u64) -> Self {
        let rng = StdRng::seed_from_u64(
            config.seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        FaultPlan { config, rng, burst_left: 0, executions: 0, stats: FaultStats::default() }
    }

    /// The scenario this plan executes.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// TS executions seen so far this run.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Called at the top of every execution: advances the execution count
    /// and returns `Some(n)` when this execution must crash.
    pub fn pre_execute_crash(&mut self) -> Option<u64> {
        self.executions += 1;
        match self.config.crash_at {
            Some(n) if self.executions >= n => {
                self.stats.crashed = true;
                Some(self.executions)
            }
            _ => None,
        }
    }

    /// Possibly pollute machine state with co-tenant traffic (cache line
    /// fills and branch outcomes at foreign sites). No cycles are charged:
    /// the cost surfaces as the program's own extra misses afterwards.
    pub fn maybe_perturb(&mut self, caches: &mut Hierarchy, predictor: &mut BranchPredictor) {
        let p = rate(self.config.perturb_per_million);
        if p <= 0.0 || !self.rng.gen_bool(p) {
            return;
        }
        self.stats.perturbations += 1;
        for _ in 0..self.config.perturb_lines {
            let addr = self.rng.gen_range(0..POLLUTION_ADDR_SPACE);
            let _ = caches.access(addr);
        }
        for _ in 0..self.config.perturb_lines {
            let site = self.rng.gen_range(0..POLLUTION_SITE_SPACE);
            let taken = self.rng.gen_bool(0.5);
            let _ = predictor.mispredicted(site, taken);
        }
    }

    /// Filter one measured timing through the measurement faults: burst
    /// inflation, additive spikes, and dropout (`None` = reading lost).
    pub fn filter_measurement(&mut self, measured: u64) -> Option<u64> {
        let mut out = measured;
        if self.burst_left == 0 {
            let p = rate(self.config.burst_per_million);
            if p > 0.0 && self.rng.gen_bool(p) {
                let (lo, hi) = self.config.burst_len;
                self.burst_left = if hi > lo { self.rng.gen_range(lo..=hi) } else { lo.max(1) };
                self.stats.bursts += 1;
            }
        }
        if self.burst_left > 0 {
            self.burst_left -= 1;
            out = ((out as f64) * self.config.burst_factor.max(1.0)) as u64;
        }
        let sp = rate(self.config.spike_per_million);
        if sp > 0.0 && self.rng.gen_bool(sp) {
            let scale: f64 = self.rng.gen_range(0.5..3.0);
            out += (self.config.spike_cycles as f64 * scale) as u64;
            self.stats.spikes += 1;
        }
        let dp = rate(self.config.dropout_per_million);
        if dp > 0.0 && self.rng.gen_bool(dp) {
            self.stats.dropouts += 1;
            return None;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    fn jittery() -> FaultConfig {
        FaultConfig {
            spike_per_million: 50_000,
            spike_cycles: 10_000,
            burst_per_million: 20_000,
            burst_len: (5, 20),
            burst_factor: 1.5,
            dropout_per_million: 100_000,
            perturb_per_million: 200_000,
            perturb_lines: 64,
            ..FaultConfig::none(7)
        }
    }

    #[test]
    fn config_json_roundtrip() {
        for cfg in [FaultConfig::none(3), jittery(), FaultConfig { crash_at: Some(17), ..jittery() }] {
            let s = peak_util::to_string_pretty(&cfg);
            let parsed = FaultConfig::from_json(&peak_util::from_str(&s).unwrap()).unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn same_seed_replays_identically() {
        let mk = || FaultPlan::new(jittery(), 42);
        let mut a = mk();
        let mut b = mk();
        for i in 0..5000u64 {
            assert_eq!(a.pre_execute_crash(), b.pre_execute_crash());
            assert_eq!(a.filter_measurement(1000 + i), b.filter_measurement(1000 + i));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_run_seeds_diverge() {
        let mut a = FaultPlan::new(jittery(), 1);
        let mut b = FaultPlan::new(jittery(), 2);
        let xs: Vec<_> = (0..2000).map(|_| a.filter_measurement(1000)).collect();
        let ys: Vec<_> = (0..2000).map(|_| b.filter_measurement(1000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn crash_fires_exactly_at_n() {
        let mut p = FaultPlan::new(FaultConfig { crash_at: Some(3), ..FaultConfig::none(1) }, 9);
        assert_eq!(p.pre_execute_crash(), None);
        assert_eq!(p.pre_execute_crash(), None);
        assert_eq!(p.pre_execute_crash(), Some(3));
        assert!(p.stats.crashed);
        // A caller that ignores the crash keeps crashing.
        assert_eq!(p.pre_execute_crash(), Some(4));
    }

    #[test]
    fn dropout_rate_roughly_configured() {
        let mut p = FaultPlan::new(
            FaultConfig { dropout_per_million: 250_000, ..FaultConfig::none(5) },
            11,
        );
        let n = 20_000;
        let lost = (0..n).filter(|_| p.filter_measurement(100).is_none()).count();
        let frac = lost as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "dropout frac {frac}");
    }

    #[test]
    fn bursts_inflate_sustained_windows() {
        let mut p = FaultPlan::new(
            FaultConfig {
                burst_per_million: 30_000,
                burst_len: (10, 10),
                burst_factor: 2.0,
                ..FaultConfig::none(2)
            },
            3,
        );
        let xs: Vec<u64> = (0..5000).filter_map(|_| p.filter_measurement(1000)).collect();
        let inflated = xs.iter().filter(|&&x| x >= 2000).count();
        assert!(p.stats.bursts > 0, "bursts must occur");
        assert!(
            inflated as u64 >= p.stats.bursts * 9,
            "each burst inflates ~10 readings: inflated={inflated} bursts={}",
            p.stats.bursts
        );
    }

    #[test]
    fn perturbation_dirties_caches_and_predictor() {
        let spec = MachineSpec::sparc_ii();
        let mut caches = Hierarchy::new(&spec);
        let mut pred = BranchPredictor::new(spec.predictor_entries);
        let mut p = FaultPlan::new(
            FaultConfig {
                perturb_per_million: 1_000_000,
                perturb_lines: 256,
                ..FaultConfig::none(8)
            },
            4,
        );
        p.maybe_perturb(&mut caches, &mut pred);
        assert_eq!(p.stats.perturbations, 1);
        let (_, l1_misses) = caches.l1.stats();
        assert!(l1_misses > 0, "co-tenant traffic filled lines");
        let (c, w) = pred.stats();
        assert!(c + w > 0, "predictor saw foreign branches");
    }

    #[test]
    fn disabled_faults_are_inert() {
        let mut p = FaultPlan::new(FaultConfig::none(1), 5);
        for c in [1u64, 100, 123_456] {
            assert_eq!(p.filter_measurement(c), Some(c));
            assert_eq!(p.pre_execute_crash(), None);
        }
        assert_eq!(p.stats, FaultStats::default());
    }
}
