//! The cycle-charging executor: runs a [`CompiledVersion`] against a
//! [`MemoryImage`] and persistent machine state (caches, branch
//! predictor), returning exact simulated cycles. The noisy timer wraps
//! these into *measured* times at the driver level.
//!
//! The executor is pre-decoded: [`PreparedVersion::prepare`] flattens
//! every function into a parallel statement stream carrying the
//! use/def lists, resolved spill slots, producer latencies and all
//! flag-/machine-dependent constant costs, so the per-invocation
//! interpreter loop touches no `OptConfig` bits, recomputes no use
//! lists, and scans no spill tables. The decode is cost-preserving by
//! construction: constant cycle charges commute (only their sum enters
//! `true_cycles`), and every *stateful* access — cache lines, branch
//! predictor entries — happens at exactly the same point in exactly the
//! same order as the pre-decode executor did, so results are
//! bit-identical (see the differential goldens in `peak-core`).

use crate::branch::BranchPredictor;
use crate::cache::{AddressMap, Hierarchy};
use crate::faults::FaultPlan;
use crate::machine::MachineSpec;
use crate::timer::NoisyTimer;
use peak_ir::{
    MemBase, MemId, MemRef, MemoryImage, Operand, PtrVal, Rvalue, Stmt, Terminator, Value, VarId,
};
use peak_ir::ExecError as InterpError;
use peak_opt::{CompiledVersion, Flag, SpillInfo};

/// Mutable per-run machine state, persisting across TS invocations.
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Machine description.
    pub spec: MachineSpec,
    /// Data caches.
    pub caches: Hierarchy,
    /// Branch predictor.
    pub predictor: BranchPredictor,
    /// Measured-time generator.
    pub timer: NoisyTimer,
    /// True cycles accumulated this run (all code, tuning overheads
    /// included by the driver).
    pub cycles: u64,
    /// IR statements executed this run (telemetry counter; charged
    /// nothing — costs come from the cycle model).
    pub instructions: u64,
    /// Injected-fault state for this run; `None` (the default) leaves
    /// every execution and measurement path bit-identical to a fault-free
    /// build.
    pub faults: Option<FaultPlan>,
}

impl MachineState {
    /// Fresh cold state.
    pub fn new(spec: MachineSpec, seed: u64) -> Self {
        let caches = Hierarchy::new(&spec);
        let predictor = BranchPredictor::new(spec.predictor_entries);
        let timer = NoisyTimer::new(&spec, seed);
        MachineState { spec, caches, predictor, timer, cycles: 0, instructions: 0, faults: None }
    }

    /// Fresh state with a noiseless timer (tests, calibration).
    pub fn noiseless(spec: MachineSpec) -> Self {
        let caches = Hierarchy::new(&spec);
        let predictor = BranchPredictor::new(spec.predictor_entries);
        MachineState {
            spec,
            caches,
            predictor,
            timer: NoisyTimer::noiseless(),
            cycles: 0,
            instructions: 0,
            faults: None,
        }
    }

    /// Install a fault plan for this run.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Measure `true_cycles` through the timer and any installed
    /// measurement faults. `None` = the reading was dropped. Without a
    /// fault plan this is exactly [`NoisyTimer::measure`].
    pub fn measure(&mut self, true_cycles: u64) -> Option<u64> {
        self.timer.measure_with(true_cycles, self.faults.as_mut())
    }
}

/// Flag- and machine-dependent constants the interpreter loop needs at
/// run time, resolved once in [`PreparedVersion::prepare`] instead of on
/// every `call`. Everything else flag-dependent is folded into the
/// per-block constants of the decoded stream. Public read-only: native
/// tier backends replicate the same spill/branch charges.
#[derive(Debug, Clone, Copy)]
pub struct ExecParams {
    /// Extra cycles per spill-slot access beyond the cache latency.
    spill_extra: u64,
    /// Cycles post-RA scheduling hides per spill access (`schedule-insns2`).
    spill_sub: u64,
    /// Branch misprediction penalty.
    mispredict_penalty: u64,
}

impl ExecParams {
    /// Extra cycles per spill-slot access beyond the cache latency.
    pub fn spill_extra(&self) -> u64 {
        self.spill_extra
    }
    /// Cycles post-RA scheduling hides per spill access.
    pub fn spill_sub(&self) -> u64 {
        self.spill_sub
    }
    /// Branch misprediction penalty.
    pub fn mispredict_penalty(&self) -> u64 {
        self.mispredict_penalty
    }
}

/// One spill access of a block, in execution order. `key` is
/// `(stmt_index << 1) | is_def`: use-spills (loads) fire before the
/// statement body, the def-spill (store) after it — a single sorted
/// stream the executor walks with one cursor.
#[derive(Debug, Clone, Copy)]
pub struct SpillEv {
    key: u32,
    /// Absolute spill slot (function base pre-added).
    slot: u32,
}

impl SpillEv {
    /// `(stmt_index << 1) | is_def` ordering key.
    pub fn key(&self) -> u32 {
        self.key
    }
    /// Absolute spill slot (function base pre-added).
    pub fn slot(&self) -> u32 {
        self.slot
    }
}

/// Pre-decoded per-block data. Everything the cost model charges that
/// does not depend on run-time data — opcode costs, copy-coalescing,
/// call overheads, dependence and false-dependence stalls (both are
/// functions of *adjacent statements only*, and the window resets at
/// block boundaries), I-cache pressure, base terminator cost — is one
/// precomputed constant. Constant cycle charges commute, so folding them
/// per block is exact; only stateful accesses (data cache, branch
/// predictor, spill slots) remain in the loop, in their original order.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    /// Constant cycles per execution of this block: fetch penalty +
    /// every statement's data-independent cost + base terminator cost
    /// (`1 + taken_cost(target)` for jumps, `1` for branches/returns).
    const_cost: u64,
    /// Extra cost when a conditional branch is taken (front-end
    /// redirect, alignment and delay-slot discounts applied).
    taken_extra: u64,
    /// Branch-predictor site key of this block's terminator.
    site: u64,
    /// Predictor-table index of `site` for this machine's table size,
    /// hashed once at prepare time ([`BranchPredictor::index_for`]) so
    /// the execution loops never hash per branch.
    site_idx: u32,
    /// Spill accesses in execution order (empty for most blocks).
    spills: Box<[SpillEv]>,
}

impl DecodedBlock {
    /// Folded constant cycles per execution of this block.
    pub fn const_cost(&self) -> u64 {
        self.const_cost
    }
    /// Extra cycles when the block's conditional branch is taken.
    pub fn taken_extra(&self) -> u64 {
        self.taken_extra
    }
    /// Branch-predictor site key of this block's terminator.
    pub fn site(&self) -> u64 {
        self.site
    }
    /// Precomputed predictor-table index of [`DecodedBlock::site`] for
    /// the machine this version was prepared on.
    pub fn site_idx(&self) -> u32 {
        self.site_idx
    }
    /// Spill accesses in execution order.
    pub fn spills(&self) -> &[SpillEv] {
        &self.spills
    }
}

#[derive(Debug, Clone)]
struct DecodedFunc {
    blocks: Box<[DecodedBlock]>,
}

/// A version prepared for one machine: register allocation done for every
/// function, I-cache pressure precomputed, and the statement stream
/// pre-decoded for the executor.
#[derive(Debug, Clone)]
pub struct PreparedVersion {
    /// The compiled version.
    pub version: CompiledVersion,
    /// Per-function spill slot of each variable (`None` = in register).
    pub spill_slot: Vec<Vec<Option<u32>>>,
    /// Per-function count of values live across calls.
    pub live_across_calls: Vec<u32>,
    /// Whether the version overflows the I-cache/trace-cache budget.
    pub over_icache: bool,
    /// Stack-slot base offset per function (slots are function-private).
    pub slot_base: Vec<u32>,
    decoded: Vec<DecodedFunc>,
    params: ExecParams,
    native: NativeSlot,
}

/// Lazily-attached native-tier artifact of a prepared version. Lowering
/// runs at most once per version (first jit-tier invocation); `None`
/// records a lowering refusal so the harness falls back to the
/// predecoded tier without retrying every invocation. Clones share the
/// already-lowered artifact (it is immutable), matching the
/// `Arc<PreparedVersion>` sharing in the version cache.
#[derive(Default)]
struct NativeSlot(std::sync::OnceLock<Option<std::sync::Arc<dyn crate::tier::TierBackend>>>);

impl std::fmt::Debug for NativeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            None => f.write_str("NativeSlot(unlowered)"),
            Some(None) => f.write_str("NativeSlot(declined)"),
            Some(Some(b)) => write!(f, "NativeSlot({} blocks)", b.blocks_compiled()),
        }
    }
}

impl Clone for NativeSlot {
    fn clone(&self) -> Self {
        let slot = NativeSlot::default();
        if let Some(v) = self.0.get() {
            let _ = slot.0.set(v.clone());
        }
        slot
    }
}

impl PreparedVersion {
    /// Allocate registers for every function of the version on `spec` and
    /// pre-decode the statement streams. A `PreparedVersion` is only
    /// meaningful on machine states built from the same `spec` (register
    /// allocation already depends on it), so flag/spec-dependent costs are
    /// resolved here once.
    pub fn prepare(version: CompiledVersion, spec: &MachineSpec) -> Self {
        let omit_fp = version.config.enabled(Flag::OmitFramePointer);
        let mut spill_slot = Vec::with_capacity(version.program.funcs.len());
        let mut live_across_calls = Vec::new();
        let mut slot_base = Vec::new();
        let mut next_base = 0u32;
        for f in &version.program.funcs {
            let info: SpillInfo = peak_opt::allocate(f, spec.reg_budget(), omit_fp);
            let mut slots = vec![None; f.num_vars()];
            for (v, s) in &info.spilled {
                slots[v.index()] = Some(*s);
            }
            slot_base.push(next_base);
            next_base += info.spilled.len() as u32 + 4;
            live_across_calls.push(info.live_across_calls);
            spill_slot.push(slots);
        }
        let over_icache = version.code_size > spec.icache_stmt_capacity;

        let config = version.config;
        let coalesce = config.enabled(Flag::RegAllocCoalesce);
        let sched2 = config.enabled(Flag::ScheduleInsns2);
        let rename = config.enabled(Flag::RenameRegisters);
        let delay = config.enabled(Flag::DelayedBranch) && spec.has_delay_slot;
        let caller_saves = config.enabled(Flag::CallerSaves);
        let exposure = spec.stall_exposure_permille;
        let icache_pen = if over_icache { spec.icache_penalty } else { 0 };
        let params = ExecParams {
            spill_extra: spec.spill_extra_cycles,
            spill_sub: if sched2 { 2 } else { 0 },
            mispredict_penalty: spec.mispredict_penalty,
        };

        let mut decoded = Vec::with_capacity(version.program.funcs.len());
        let mut uses_buf: Vec<VarId> = Vec::new();
        let mut prev_uses: Vec<VarId> = Vec::new();
        let mut evs: Vec<SpillEv> = Vec::new();
        for (fi, f) in version.program.funcs.iter().enumerate() {
            let spills = &spill_slot[fi];
            let base = slot_base[fi];
            // Constant cost of one call *from* this function: overhead
            // plus saving the caller's call-crossing values.
            let call_cost =
                spec.call_overhead + call_save_cost(caller_saves, live_across_calls[fi]);
            let blocks = f
                .blocks
                .iter()
                .enumerate()
                .map(|(bi, block)| {
                    let mut const_cost = icache_pen;
                    evs.clear();
                    // Dependence-stall window: (def, latency) and uses of
                    // the previous statement. Static per adjacent pair —
                    // the window opens fresh at every block entry.
                    let mut prev_def: Option<(VarId, u64)> = None;
                    prev_uses.clear();
                    for (si, s) in block.stmts.iter().enumerate() {
                        uses_buf.clear();
                        s.uses(&mut uses_buf);
                        let def = s.def();
                        if let Some((pd, lat)) = prev_def {
                            if lat > 1 && uses_buf.contains(&pd) {
                                const_cost += (lat - 1) * exposure / 1000;
                            }
                        }
                        if !rename {
                            // False dependence (WAW/WAR): a small stall on
                            // machines without register renaming help.
                            if let Some(d) = def {
                                if prev_uses.contains(&d) || prev_def.is_some_and(|(p, _)| p == d)
                                {
                                    const_cost += 1;
                                }
                            }
                        }
                        // Spill loads for used variables, then the def
                        // store — the executor replays these in order.
                        let key = (si as u32) << 1;
                        for u in &uses_buf {
                            if let Some(slot) = spills[u.index()] {
                                evs.push(SpillEv { key, slot: base + slot });
                            }
                        }
                        if let Some(slot) = def.and_then(|d| spills[d.index()]) {
                            evs.push(SpillEv { key: key | 1, slot: base + slot });
                        }
                        const_cost += match s {
                            Stmt::Assign { dst, rv } => match rv {
                                Rvalue::Use(op) => {
                                    // Copy: coalescing makes register-to-
                                    // register moves free.
                                    let free = coalesce
                                        && spills[dst.index()].is_none()
                                        && op.as_var().is_none_or(|v| spills[v.index()].is_none());
                                    if free { 0 } else { 1 }
                                }
                                Rvalue::Unary(op, _) => spec.unop_cost(*op),
                                Rvalue::Binary(op, ..) => spec.binop_cost(*op),
                                Rvalue::Load(_) => 1,
                                Rvalue::AddrOf(..) => 1,
                                // cmov-style: fixed 2 cycles, no branch.
                                Rvalue::Select { .. } => 2,
                                Rvalue::Call { .. } => call_cost,
                            },
                            Stmt::Store { .. } => 1,
                            Stmt::CallVoid { .. } => call_cost,
                            Stmt::Prefetch { .. } => 1,
                            Stmt::CounterInc { .. } => spec.counter_cost,
                        };
                        prev_def = def.map(|d| (d, spec.result_latency(s)));
                        std::mem::swap(&mut prev_uses, &mut uses_buf);
                    }
                    // A delay slot is fillable when the block has any
                    // statement to hoist into it.
                    let fillable = delay && !block.stmts.is_empty();
                    let taken_extra = match &block.term {
                        Terminator::Jump(t) => {
                            const_cost += 1 + taken_cost(spec, f, *t, fillable);
                            0
                        }
                        Terminator::Branch { on_true, .. } => {
                            const_cost += 1;
                            taken_cost(spec, f, *on_true, fillable)
                        }
                        Terminator::Return(_) => {
                            const_cost += 1;
                            0
                        }
                    };
                    let site = ((fi as u64) << 32) ^ (bi as u64);
                    DecodedBlock {
                        const_cost,
                        taken_extra,
                        site,
                        site_idx: BranchPredictor::index_for(spec.predictor_entries, site)
                            as u32,
                        spills: evs.as_slice().into(),
                    }
                })
                .collect::<Box<[_]>>();
            decoded.push(DecodedFunc { blocks });
        }
        PreparedVersion {
            version,
            spill_slot,
            live_across_calls,
            over_icache,
            slot_base,
            decoded,
            params,
            native: NativeSlot::default(),
        }
    }

    /// Total spill slots of the entry function (diagnostics).
    pub fn entry_spills(&self) -> usize {
        self.spill_slot[self.version.func.index()]
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Pre-decoded blocks of function `func` (index into
    /// `version.program.funcs`). Native-tier lowerings read the folded
    /// costs, sites and spill streams from here so both tiers charge
    /// from one artifact by construction.
    pub fn decoded_blocks(&self, func: usize) -> &[DecodedBlock] {
        &self.decoded[func].blocks
    }

    /// The resolved flag-/machine-dependent runtime constants.
    pub fn exec_params(&self) -> ExecParams {
        self.params
    }

    /// The native-tier backend of this version, lowering it with `lower`
    /// on first use. `lower` returning `None` is remembered: the version
    /// permanently executes on the fallback tier (the caller observes
    /// the refusal — e.g. to count a deopt — because its closure ran).
    pub fn native_backend(
        &self,
        lower: impl FnOnce(&PreparedVersion) -> Option<std::sync::Arc<dyn crate::tier::TierBackend>>,
    ) -> Option<&std::sync::Arc<dyn crate::tier::TierBackend>> {
        self.native.0.get_or_init(|| lower(self)).as_ref()
    }
}

/// Front-end cost of redirecting fetch to `target`.
pub(crate) fn taken_cost(
    spec: &MachineSpec,
    f: &peak_ir::Function,
    target: peak_ir::BlockId,
    fillable: bool,
) -> u64 {
    let mut c = spec.taken_branch_cost;
    if f.block(target).aligned {
        c = c.saturating_sub(spec.aligned_discount);
    }
    if fillable {
        c = c.saturating_sub(1);
    }
    c
}

/// Result of one simulated invocation.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Return value.
    pub ret: Option<Value>,
    /// Exact simulated cycles of the invocation.
    pub true_cycles: u64,
    /// Instrumentation counter values (CounterInc).
    pub counters: Vec<u64>,
    /// Write log when recording was requested (RBR inspector, paper
    /// §2.4.2): `(region, index, value before the first write)` — an undo
    /// log sufficient to roll the invocation back.
    pub writes: Vec<(MemId, i64, Value)>,
}

/// Execution error: either a genuine interpreter failure or an injected
/// version crash from the fault layer (surfaced as data, not a panic, so
/// the tuning driver can abandon the run and degrade).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A real failure mode shared with the reference interpreter.
    Interp(InterpError),
    /// The fault plan crashed this execution (1-based count within the
    /// run).
    InjectedCrash {
        /// Which execution of the run faulted.
        invocation: u64,
    },
}

impl From<InterpError> for ExecError {
    fn from(e: InterpError) -> Self {
        ExecError::Interp(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Interp(e) => write!(f, "{e}"),
            ExecError::InjectedCrash { invocation } => {
                write!(f, "injected crash on execution {invocation}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Options for one invocation.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Record written addresses (improved-RBR inspector, paper §2.4.2).
    pub record_writes: bool,
    /// Number of counters to size the counter vector for.
    pub num_counters: usize,
}

/// Reusable execution buffers. One lives in each run harness so the
/// steady-state invocation path allocates nothing: register files and
/// call-argument vectors are pooled across invocations (and across the
/// call tree within one), and the write-dedup set keeps its capacity.
/// An invocation that fails mid-call drops the frames it held — error
/// paths abandon the run anyway, and the pool simply refills.
#[derive(Debug, Default)]
pub struct ExecScratch {
    regs_pool: Vec<Vec<Value>>,
    vals_pool: Vec<Vec<Value>>,
    written: std::collections::HashSet<(u32, i64)>,
}

impl ExecScratch {
    /// Fresh scratch (nothing allocated yet).
    pub fn new() -> Self {
        ExecScratch::default()
    }

    /// A zeroed register file of `n` slots, reusing pooled capacity.
    pub fn take_regs(&mut self, n: usize) -> Vec<Value> {
        let mut v = self.regs_pool.pop().unwrap_or_default();
        v.clear();
        v.resize(n, Value::I64(0));
        v
    }

    /// Return a register file to the pool.
    pub fn put_regs(&mut self, v: Vec<Value>) {
        self.regs_pool.push(v);
    }

    /// An empty call-argument buffer, reusing pooled capacity.
    pub fn take_vals(&mut self) -> Vec<Value> {
        let mut v = self.vals_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Return a call-argument buffer to the pool.
    pub fn put_vals(&mut self, v: Vec<Value>) {
        self.vals_pool.push(v);
    }

    /// Reset the write-dedup set for a new recording invocation.
    pub fn begin_write_log(&mut self) {
        self.written.clear();
    }

    /// Record a write to `(mem, idx)`; true when it is this
    /// invocation's first write to that cell (undo-log dedup).
    pub fn first_write(&mut self, mem: u32, idx: i64) -> bool {
        self.written.insert((mem, idx))
    }
}

/// The fault hooks every execution tier runs before touching program
/// state: a crash aborts before any work; a perturbation episode
/// pollutes caches/predictor like a co-tenant time slice (no cycles
/// charged to the program).
pub fn fault_preamble(state: &mut MachineState) -> Result<(), ExecError> {
    let MachineState { faults, caches, predictor, .. } = state;
    if let Some(plan) = faults.as_mut() {
        if let Some(invocation) = plan.pre_execute_crash() {
            return Err(ExecError::InjectedCrash { invocation });
        }
        plan.maybe_perturb(caches, predictor);
    }
    Ok(())
}

/// Execute one invocation of the prepared version's entry function.
///
/// Allocates its own transient [`ExecScratch`]; hot paths that execute
/// many invocations should hold one and call [`execute_with_scratch`].
pub fn execute(
    pv: &PreparedVersion,
    args: &[Value],
    mem: &mut MemoryImage,
    amap: &AddressMap,
    state: &mut MachineState,
    opts: &ExecOptions,
) -> Result<ExecResult, ExecError> {
    let mut scratch = ExecScratch::new();
    execute_with_scratch(pv, args, mem, amap, state, opts, &mut scratch)
}

/// [`execute`] with caller-owned scratch buffers (allocation-free in
/// steady state).
pub fn execute_with_scratch(
    pv: &PreparedVersion,
    args: &[Value],
    mem: &mut MemoryImage,
    amap: &AddressMap,
    state: &mut MachineState,
    opts: &ExecOptions,
    scratch: &mut ExecScratch,
) -> Result<ExecResult, ExecError> {
    fault_preamble(state)?;
    if opts.record_writes {
        scratch.written.clear();
    }
    let mut ctx = Ctx {
        pv,
        amap,
        state,
        counters: vec![0; opts.num_counters],
        writes: Vec::new(),
        record_writes: opts.record_writes,
        steps: 0,
        scratch,
    };
    let mut cycles = 0u64;
    let ret = ctx.call(pv.version.func, args, mem, &mut cycles, 0)?;
    ctx.state.cycles += cycles;
    let steps = ctx.steps;
    ctx.state.instructions += steps;
    Ok(ExecResult { ret, true_cycles: cycles, counters: ctx.counters, writes: ctx.writes })
}

/// Statement budget per invocation before [`InterpError::StepLimit`]
/// (shared by every execution tier).
pub const STEP_LIMIT: u64 = 2_000_000_000;
/// Call-depth budget before [`InterpError::RecursionLimit`] (shared by
/// every execution tier).
pub const RECURSION_LIMIT: usize = 64;

struct Ctx<'a> {
    pv: &'a PreparedVersion,
    amap: &'a AddressMap,
    state: &'a mut MachineState,
    counters: Vec<u64>,
    writes: Vec<(MemId, i64, Value)>,
    record_writes: bool,
    steps: u64,
    scratch: &'a mut ExecScratch,
}

impl<'a> Ctx<'a> {
    fn call(
        &mut self,
        func: peak_ir::FuncId,
        args: &[Value],
        mem: &mut MemoryImage,
        cycles: &mut u64,
        depth: usize,
    ) -> Result<Option<Value>, InterpError> {
        if depth > RECURSION_LIMIT {
            return Err(InterpError::RecursionLimit);
        }
        let pv = self.pv;
        let f = pv.version.program.func(func);
        let df = &pv.decoded[func.index()];
        let p = pv.params;

        let mut regs = self.scratch.take_regs(f.num_vars());
        for (prm, a) in f.params.iter().zip(args) {
            regs[prm.index()] = *a;
        }

        let mut bb = f.entry;
        loop {
            let block = f.block(bb);
            let dblock = &df.blocks[bb.index()];
            // All data-independent costs of this block, in one add.
            *cycles += dblock.const_cost;
            self.steps += block.stmts.len() as u64 + 1;
            if self.steps > STEP_LIMIT {
                return Err(InterpError::StepLimit);
            }
            // Cursor over the block's spill accesses (usually empty).
            let mut evs = dblock.spills.iter();
            let mut next_ev = evs.next();
            for (si, s) in block.stmts.iter().enumerate() {
                // Spill loads for used variables, before the body.
                let key = (si as u32) << 1;
                while let Some(e) = next_ev {
                    if e.key != key {
                        break;
                    }
                    self.spill_access(e.slot, cycles);
                    next_ev = evs.next();
                }
                match s {
                    Stmt::Assign { dst, rv } => {
                        let v = match rv {
                            Rvalue::Use(op) => self.operand(op, &regs),
                            Rvalue::Unary(op, a) => {
                                peak_ir::interp::eval_unop(*op, self.operand(a, &regs))
                            }
                            Rvalue::Binary(op, a, b) => peak_ir::interp::eval_binop(
                                *op,
                                self.operand(a, &regs),
                                self.operand(b, &regs),
                            )?,
                            Rvalue::Load(mr) => {
                                let (m, idx) = self.resolve(mr, &regs, mem)?;
                                *cycles += self.state.caches.access(self.amap.addr(m, idx));
                                mem.load(m, idx)
                            }
                            Rvalue::AddrOf(m, idx) => Value::Ptr(PtrVal {
                                mem: *m,
                                offset: self.operand(idx, &regs).as_i64(),
                            }),
                            Rvalue::Select { cond, on_true, on_false } => {
                                if self.operand(cond, &regs).is_true() {
                                    self.operand(on_true, &regs)
                                } else {
                                    self.operand(on_false, &regs)
                                }
                            }
                            Rvalue::Call { func: callee, args } => {
                                let mut vals = self.scratch.take_vals();
                                for a in args {
                                    vals.push(self.operand(a, &regs));
                                }
                                let r = self.call(*callee, &vals, mem, cycles, depth + 1)?;
                                self.scratch.vals_pool.push(vals);
                                r.expect("value call of void function")
                            }
                        };
                        regs[dst.index()] = v;
                        // Spill store of the defined variable, after the
                        // body (only when the def is spilled).
                        let key = key | 1;
                        while let Some(e) = next_ev {
                            if e.key != key {
                                break;
                            }
                            self.spill_access(e.slot, cycles);
                            next_ev = evs.next();
                        }
                    }
                    Stmt::Store { dst, src } => {
                        let (m, idx) = self.resolve(dst, &regs, mem)?;
                        *cycles += self.state.caches.access(self.amap.addr(m, idx));
                        if self.record_writes && self.scratch.written.insert((m.0, idx)) {
                            // Inspector: log the pre-write value (undo log);
                            // the inspector code itself costs cycles.
                            self.writes.push((m, idx, mem.load(m, idx)));
                            *cycles += 3;
                        }
                        let v = self.operand(src, &regs);
                        mem.store(m, idx, v);
                    }
                    Stmt::CallVoid { func: callee, args } => {
                        let mut vals = self.scratch.take_vals();
                        for a in args {
                            vals.push(self.operand(a, &regs));
                        }
                        self.call(*callee, &vals, mem, cycles, depth + 1)?;
                        self.scratch.vals_pool.push(vals);
                    }
                    Stmt::Prefetch { addr } => {
                        // Best-effort: ignore unresolvable/OOB addresses.
                        if let Ok((m, idx)) = self.resolve_unchecked(addr, &regs) {
                            let len = mem.buf(m).len() as i64;
                            if idx >= 0 && idx < len {
                                self.state.caches.prefetch(self.amap.addr(m, idx));
                            }
                        }
                    }
                    Stmt::CounterInc { counter } => {
                        if counter.index() >= self.counters.len() {
                            self.counters.resize(counter.index() + 1, 0);
                        }
                        self.counters[counter.index()] += 1;
                    }
                }
            }
            // Terminators (base cost already in `const_cost`).
            match &block.term {
                Terminator::Jump(t) => {
                    bb = *t;
                }
                Terminator::Branch { cond, on_true, on_false } => {
                    let taken = self.operand(cond, &regs).is_true();
                    if self.state.predictor.mispredicted_at(dblock.site_idx as usize, taken) {
                        *cycles += p.mispredict_penalty;
                    }
                    if taken {
                        *cycles += dblock.taken_extra;
                    }
                    bb = if taken { *on_true } else { *on_false };
                }
                Terminator::Return(v) => {
                    let ret = v.as_ref().map(|op| self.operand(op, &regs));
                    self.scratch.regs_pool.push(regs);
                    return Ok(ret);
                }
            }
        }
    }

    /// Spill-slot access: through the cache, plus the machine's spill
    /// overhead, minus what post-RA scheduling hides; at least 1 cycle.
    #[inline]
    fn spill_access(&mut self, slot: u32, cycles: &mut u64) {
        let addr = self.amap.spill_addr(slot);
        let mut c = self.state.caches.access(addr) + self.pv.params.spill_extra;
        c = c.saturating_sub(self.pv.params.spill_sub);
        *cycles += c.max(1);
    }

    #[inline]
    fn operand(&self, op: &Operand, regs: &[Value]) -> Value {
        match op {
            Operand::Var(v) => regs[v.index()],
            Operand::Const(c) => *c,
        }
    }

    fn resolve(
        &self,
        mr: &MemRef,
        regs: &[Value],
        mem: &MemoryImage,
    ) -> Result<(MemId, i64), InterpError> {
        let (m, i) = self.resolve_unchecked(mr, regs)?;
        let len = mem.buf(m).len();
        if i < 0 || i as usize >= len {
            return Err(InterpError::OutOfBounds { mem: m.0, index: i, len });
        }
        Ok((m, i))
    }

    fn resolve_unchecked(&self, mr: &MemRef, regs: &[Value]) -> Result<(MemId, i64), InterpError> {
        let idx = self.operand(&mr.index, regs).as_i64();
        Ok(match mr.base {
            MemBase::Global(m) => (m, idx),
            MemBase::Ptr(p) => {
                let pv = regs[p.index()].as_ptr();
                (pv.mem, pv.offset + idx)
            }
        })
    }
}

pub(crate) fn call_save_cost(caller_saves: bool, live_across: u32) -> u64 {
    let per_value = if caller_saves { 2 } else { 4 };
    (live_across.min(12) as u64) * per_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Program, Type};
    use peak_opt::OptConfig;

    fn sum_kernel() -> (Program, peak_ir::FuncId) {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 4096);
        let mut b = FunctionBuilder::new("sum", Some(Type::F64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, peak_ir::MemRef::global(a, i));
            b.binary_into(acc, BinOp::FAdd, acc, x);
        });
        b.ret(Some(acc.into()));
        let f = prog.add_func(b.finish());
        (prog, f)
    }

    fn prep(config: OptConfig, spec: &MachineSpec) -> (PreparedVersion, AddressMap) {
        let (prog, f) = sum_kernel();
        let cv = peak_opt::optimize(&prog, f, &config);
        let amap = AddressMap::new(&cv.program.mems.iter().map(|m| m.len).collect::<Vec<_>>());
        (PreparedVersion::prepare(cv, spec), amap)
    }

    fn run_once(
        pv: &PreparedVersion,
        amap: &AddressMap,
        state: &mut MachineState,
        n: i64,
    ) -> ExecResult {
        let mut mem = MemoryImage::new(&pv.version.program);
        let a = pv.version.program.mem_by_name("a").unwrap();
        for i in 0..4096 {
            mem.store(a, i, Value::F64(1.0));
        }
        execute(pv, &[Value::I64(n)], &mut mem, amap, state, &ExecOptions::default()).unwrap()
    }

    #[test]
    fn result_matches_reference_interpreter() {
        let spec = MachineSpec::sparc_ii();
        let (pv, amap) = prep(OptConfig::o3(), &spec);
        let mut state = MachineState::noiseless(spec);
        let out = run_once(&pv, &amap, &mut state, 100);
        assert_eq!(out.ret, Some(Value::F64(100.0)));
        assert!(out.true_cycles > 100, "loads alone cost cycles");
    }

    #[test]
    fn o3_beats_o0_in_cycles() {
        let spec = MachineSpec::sparc_ii();
        let (pv3, amap) = prep(OptConfig::o3(), &spec);
        let (pv0, _) = prep(OptConfig::o0(), &spec);
        let mut s1 = MachineState::noiseless(spec.clone());
        let mut s2 = MachineState::noiseless(spec);
        // Warm up both, then measure.
        run_once(&pv3, &amap, &mut s1, 1000);
        run_once(&pv0, &amap, &mut s2, 1000);
        let c3 = run_once(&pv3, &amap, &mut s1, 1000).true_cycles;
        let c0 = run_once(&pv0, &amap, &mut s2, 1000).true_cycles;
        assert!(c3 < c0, "O3 {c3} should beat O0 {c0}");
    }

    #[test]
    fn cache_warmup_shows() {
        let spec = MachineSpec::pentium_iv();
        let (pv, amap) = prep(OptConfig::o3().without(Flag::PrefetchLoopArrays), &spec);
        let mut state = MachineState::noiseless(spec);
        let cold = run_once(&pv, &amap, &mut state, 1500).true_cycles;
        let warm = run_once(&pv, &amap, &mut state, 1500).true_cycles;
        assert!(
            warm * 11 / 10 < cold,
            "second run should be visibly faster: cold={cold} warm={warm}"
        );
    }

    #[test]
    fn prefetch_helps_streaming_misses() {
        let spec = MachineSpec::pentium_iv();
        let (with, amap) = prep(OptConfig::o3(), &spec);
        let (without, _) = prep(OptConfig::o3().without(Flag::PrefetchLoopArrays), &spec);
        // Cold caches each time: stream 4096 elements (beyond L1).
        let mut s1 = MachineState::noiseless(spec.clone());
        let mut s2 = MachineState::noiseless(spec);
        let c_with = run_once(&with, &amap, &mut s1, 4000).true_cycles;
        let c_without = run_once(&without, &amap, &mut s2, 4000).true_cycles;
        assert!(
            c_with < c_without,
            "prefetch should pay on a cold stream: with={c_with} without={c_without}"
        );
    }

    #[test]
    fn writes_recorded_when_requested() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 16);
        let mut b = FunctionBuilder::new("w", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.store(peak_ir::MemRef::global(a, i), i);
        });
        b.ret(None);
        let f = prog.add_func(b.finish());
        let cv = peak_opt::optimize(&prog, f, &OptConfig::o0());
        let spec = MachineSpec::sparc_ii();
        let amap = AddressMap::new(&[16]);
        let pv = PreparedVersion::prepare(cv, &spec);
        let mut state = MachineState::noiseless(spec);
        let mut mem = MemoryImage::new(&pv.version.program);
        let out = execute(
            &pv,
            &[Value::I64(5)],
            &mut mem,
            &amap,
            &mut state,
            &ExecOptions { record_writes: true, num_counters: 0 },
        )
        .unwrap();
        assert_eq!(out.writes.len(), 5);
        assert_eq!(out.writes[0], (a, 0, Value::I64(0)), "old value logged");
    }

    #[test]
    fn spills_cost_cycles_on_tight_register_machines() {
        // Wide straight-line code: many live values.
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("wide", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let vars: Vec<_> = (0..14)
            .map(|j| {
                let v = b.var(format!("w{j}"), Type::I64);
                b.binary_into(v, BinOp::Add, p, j as i64);
                v
            })
            .collect();
        let mut acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        for v in vars {
            let t = b.binary(BinOp::Add, acc, v);
            acc = t;
        }
        b.ret(Some(acc.into()));
        let f = prog.add_func(b.finish());
        let cv = peak_opt::optimize(&prog, f, &OptConfig::o0());
        let amap = AddressMap::new(&[]);
        let p4 = PreparedVersion::prepare(cv.clone(), &MachineSpec::pentium_iv());
        let sparc = PreparedVersion::prepare(cv, &MachineSpec::sparc_ii());
        assert!(p4.entry_spills() > 0, "P4 must spill");
        assert_eq!(sparc.entry_spills(), 0, "SPARC II has registers to spare");
        let mut sp4 = MachineState::noiseless(MachineSpec::pentium_iv());
        let mut ssp = MachineState::noiseless(MachineSpec::sparc_ii());
        let mut mem = MemoryImage::new(&p4.version.program);
        let c_p4 = execute(&p4, &[Value::I64(1)], &mut mem, &amap, &mut sp4, &ExecOptions::default())
            .unwrap()
            .true_cycles;
        let mut mem2 = MemoryImage::new(&sparc.version.program);
        let c_sp =
            execute(&sparc, &[Value::I64(1)], &mut mem2, &amap, &mut ssp, &ExecOptions::default())
                .unwrap()
                .true_cycles;
        assert!(c_p4 > c_sp, "spill traffic shows: p4={c_p4} sparc={c_sp}");
    }

    /// Scratch reuse must not change results: same kernel, same state
    /// evolution, shared scratch across invocations.
    #[test]
    fn scratch_reuse_is_bit_identical() {
        let spec = MachineSpec::pentium_iv();
        let (pv, amap) = prep(OptConfig::o3(), &spec);
        let mut s_fresh = MachineState::noiseless(spec.clone());
        let mut s_shared = MachineState::noiseless(spec);
        let mut scratch = ExecScratch::new();
        for n in [10i64, 200, 1000, 200, 10] {
            let mut mem1 = MemoryImage::new(&pv.version.program);
            let mut mem2 = MemoryImage::new(&pv.version.program);
            let a = pv.version.program.mem_by_name("a").unwrap();
            for i in 0..4096 {
                mem1.store(a, i, Value::F64(2.0));
                mem2.store(a, i, Value::F64(2.0));
            }
            let r1 = execute(
                &pv,
                &[Value::I64(n)],
                &mut mem1,
                &amap,
                &mut s_fresh,
                &ExecOptions::default(),
            )
            .unwrap();
            let r2 = execute_with_scratch(
                &pv,
                &[Value::I64(n)],
                &mut mem2,
                &amap,
                &mut s_shared,
                &ExecOptions::default(),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(r1.ret, r2.ret);
            assert_eq!(r1.true_cycles, r2.true_cycles);
        }
    }

    /// The write-undo log is scoped to one invocation even when the
    /// dedup set is reused via scratch.
    #[test]
    fn record_writes_dedup_resets_per_invocation() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 16);
        let mut b = FunctionBuilder::new("w", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.store(peak_ir::MemRef::global(a, i), i);
        });
        b.ret(None);
        let f = prog.add_func(b.finish());
        let cv = peak_opt::optimize(&prog, f, &OptConfig::o0());
        let spec = MachineSpec::sparc_ii();
        let amap = AddressMap::new(&[16]);
        let pv = PreparedVersion::prepare(cv, &spec);
        let mut state = MachineState::noiseless(spec);
        let mut mem = MemoryImage::new(&pv.version.program);
        let mut scratch = ExecScratch::new();
        let opts = ExecOptions { record_writes: true, num_counters: 0 };
        for _ in 0..3 {
            let out = execute_with_scratch(
                &pv,
                &[Value::I64(4)],
                &mut mem,
                &amap,
                &mut state,
                &opts,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(out.writes.len(), 4, "each invocation logs its own first-writes");
        }
    }
}
