//! Two-bit saturating-counter branch predictor with a direct-mapped table.
//! State persists across invocations within a run, so branch behaviour
//! learned on earlier invocations carries over — another source of
//! context-dependent timing the rating methods must cope with.

/// The predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>, // 0..=3; >=2 predicts taken
    correct: u64,
    wrong: u64,
    /// `len - 1` when the table size is a power of two (every shipped
    /// machine spec): `hash & mask == hash % len` there, avoiding a
    /// 64-bit modulo per branch. Same index either way.
    mask: Option<usize>,
}

impl BranchPredictor {
    /// Fresh predictor with `entries` two-bit counters, weakly not-taken.
    pub fn new(entries: usize) -> Self {
        let n = entries.max(1);
        let mask = n.is_power_of_two().then(|| n - 1);
        BranchPredictor { table: vec![1; n], correct: 0, wrong: 0, mask }
    }

    /// Table index `site` maps to in a table of `entries` counters — the
    /// same hash+fold [`BranchPredictor::mispredicted`] applies, exposed
    /// so callers that know their branch sites ahead of time (the
    /// pre-decode step, the jit lowering) can hash each site once instead
    /// of once per executed branch. `entries` must match the value the
    /// predictor was built with.
    #[inline(always)]
    pub fn index_for(entries: usize, site: u64) -> usize {
        let n = entries.max(1);
        let h = (site.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize;
        if n.is_power_of_two() {
            h & (n - 1)
        } else {
            h % n
        }
    }

    /// Predict + update for the branch identified by `site`; returns true
    /// if the prediction was wrong (charge the penalty).
    #[inline(always)]
    pub fn mispredicted(&mut self, site: u64, taken: bool) -> bool {
        let h = (site.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize;
        let idx = match self.mask {
            Some(m) => h & m,
            None => h % self.table.len(),
        };
        self.mispredicted_at(idx, taken)
    }

    /// [`BranchPredictor::mispredicted`] with a precomputed table index
    /// (from [`BranchPredictor::index_for`]): identical state evolution,
    /// no hash in the loop.
    #[inline(always)]
    pub fn mispredicted_at(&mut self, idx: usize, taken: bool) -> bool {
        let ctr = &mut self.table[idx];
        let predicted_taken = *ctr >= 2;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        let wrong = predicted_taken != taken;
        if wrong {
            self.wrong += 1;
        } else {
            self.correct += 1;
        }
        wrong
    }

    /// Commit a staged sequence of `(table index, taken)` observations,
    /// in order, and return how many were mispredicted. Because a
    /// branch's *direction* never depends on predictor state (the
    /// predictor only prices it) and penalty charges are commutative
    /// constant adds, deferring updates into one commit leaves the
    /// table, the counters, and the total penalty bit-identical to
    /// calling [`BranchPredictor::mispredicted_at`] at each branch —
    /// the batched-commit path of the jit tier.
    pub fn commit(&mut self, staged: &[(u32, bool)]) -> u64 {
        let mut wrong = 0u64;
        for &(idx, taken) in staged {
            wrong += self.mispredicted_at(idx as usize, taken) as u64;
        }
        wrong
    }

    /// Table size (two-bit counters).
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// (correct, wrong) counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.correct, self.wrong)
    }

    /// Reset all counters to weakly-not-taken.
    pub fn flush(&mut self) {
        self.table.fill(1);
        self.correct = 0;
        self.wrong = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_branch() {
        let mut p = BranchPredictor::new(64);
        // Always-taken branch: after warmup, no mispredictions.
        let mut late_wrong = 0;
        for i in 0..100 {
            let wrong = p.mispredicted(42, true);
            if i >= 4 && wrong {
                late_wrong += 1;
            }
        }
        assert_eq!(late_wrong, 0);
    }

    #[test]
    fn loop_pattern_mispredicts_once_per_exit() {
        let mut p = BranchPredictor::new(64);
        // 10 iterations taken, then 1 not-taken, repeated.
        let mut wrong_total = 0;
        for _rep in 0..10 {
            for _ in 0..10 {
                if p.mispredicted(7, true) {
                    wrong_total += 1;
                }
            }
            if p.mispredicted(7, false) {
                wrong_total += 1;
            }
        }
        // ~1 mispredict per repetition (the exit), plus warmup.
        assert!(wrong_total <= 10 + 3, "wrong={wrong_total}");
        assert!(wrong_total >= 9);
    }

    #[test]
    fn random_branch_mispredicts_often() {
        let mut p = BranchPredictor::new(64);
        let mut wrong = 0;
        let mut x = 0x12345678u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if p.mispredicted(3, (x >> 40) & 1 == 1) {
                wrong += 1;
            }
        }
        assert!(wrong > 300, "alternating-ish pattern should hurt: {wrong}");
    }

    #[test]
    fn batched_commit_matches_sequential() {
        // Non-power-of-two table exercises the modulo fold too.
        for entries in [64usize, 100] {
            let mut seq = BranchPredictor::new(entries);
            let mut bat = BranchPredictor::new(entries);
            let mut x = 0x9e3779b9u64;
            let mut staged: Vec<(u32, bool)> = Vec::new();
            let mut seq_wrong = 0u64;
            let mut bat_wrong = 0u64;
            for i in 0..5000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let site = x % 37;
                let taken = (x >> 33) & 3 != 0;
                let idx = BranchPredictor::index_for(entries, site);
                seq_wrong += seq.mispredicted(site, taken) as u64;
                staged.push((idx as u32, taken));
                // Flush at irregular boundaries.
                if staged.len() as u64 > 1 + (i % 7) {
                    bat_wrong += bat.commit(&staged);
                    staged.clear();
                }
            }
            bat_wrong += bat.commit(&staged);
            assert_eq!(seq_wrong, bat_wrong);
            assert_eq!(seq.stats(), bat.stats());
            assert_eq!(seq.table, bat.table);
        }
    }

    #[test]
    fn distinct_sites_tracked_separately() {
        let mut p = BranchPredictor::new(1024);
        for _ in 0..50 {
            p.mispredicted(1, true);
            p.mispredicted(2, false);
        }
        // Both learned: next predictions correct.
        assert!(!p.mispredicted(1, true));
        assert!(!p.mispredicted(2, false));
    }
}
