//! The noisy timer: turns true simulated cycles into *measured* cycles.
//!
//! Real measurements suffer multiplicative jitter (frequency scaling, TLB
//! noise) and rare additive spikes (interrupts, scheduling). The rating
//! methods' whole job (paper §3) is to produce consistent EVALs in spite
//! of this, including outlier elimination; the timer therefore generates
//! both noise kinds from a seeded RNG so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timer configuration + RNG state.
#[derive(Debug, Clone)]
pub struct NoisyTimer {
    rng: StdRng,
    sigma: f64,
    outlier_p: f64,
    outlier_cycles: u64,
}

impl NoisyTimer {
    /// Build from a machine spec and seed.
    pub fn new(spec: &crate::machine::MachineSpec, seed: u64) -> Self {
        NoisyTimer {
            rng: StdRng::seed_from_u64(seed),
            sigma: spec.timer_sigma_permille as f64 / 1000.0,
            outlier_p: spec.outlier_per_million as f64 / 1_000_000.0,
            outlier_cycles: spec.outlier_cycles,
        }
    }

    /// A noiseless timer (used by tests that need exact cycles).
    pub fn noiseless() -> Self {
        NoisyTimer { rng: StdRng::seed_from_u64(0), sigma: 0.0, outlier_p: 0.0, outlier_cycles: 0 }
    }

    /// Convert true cycles to a measured value.
    pub fn measure(&mut self, true_cycles: u64) -> u64 {
        let mut t = true_cycles as f64;
        if self.sigma > 0.0 {
            // Box-Muller standard normal.
            let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            t *= 1.0 + self.sigma * z;
        }
        let mut out = t.max(1.0) as u64;
        if self.outlier_p > 0.0 && self.rng.gen_bool(self.outlier_p) {
            // Interrupt-like spike with a heavy-ish tail.
            let scale: f64 = self.rng.gen_range(0.5..3.0);
            out += (self.outlier_cycles as f64 * scale) as u64;
        }
        out
    }

    /// Measure through an optional fault plan: the timer's own noise is
    /// applied first (from its private RNG stream — unchanged whether or
    /// not faults are installed), then the plan's bursts/spikes/dropout.
    /// `None` = the reading was lost to an injected dropout.
    pub fn measure_with(
        &mut self,
        true_cycles: u64,
        faults: Option<&mut crate::faults::FaultPlan>,
    ) -> Option<u64> {
        let measured = self.measure(true_cycles);
        match faults {
            Some(plan) => plan.filter_measurement(measured),
            None => Some(measured),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineSpec;

    #[test]
    fn noiseless_is_identity() {
        let mut t = NoisyTimer::noiseless();
        for c in [1u64, 100, 123456] {
            assert_eq!(t.measure(c), c);
        }
    }

    #[test]
    fn noise_is_small_and_unbiased() {
        let spec = MachineSpec::sparc_ii();
        let mut t = NoisyTimer::new(&spec, 42);
        let true_c = 100_000u64;
        let n = 5000;
        let samples: Vec<u64> = (0..n).map(|_| t.measure(true_c)).collect();
        // Discard outliers (they're the point of the spike model).
        let mut clean: Vec<u64> = samples
            .iter()
            .copied()
            .filter(|&s| s < true_c * 11 / 10)
            .collect();
        clean.sort();
        let mean = clean.iter().sum::<u64>() as f64 / clean.len() as f64;
        assert!((mean - true_c as f64).abs() / (true_c as f64) < 0.01, "mean={mean}");
        // Spread is a few permille.
        let sd = (clean.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>()
            / clean.len() as f64)
            .sqrt();
        assert!(sd > 0.0 && sd / mean < 0.05, "sd={sd}");
    }

    #[test]
    fn outliers_occur_at_roughly_configured_rate() {
        let spec = MachineSpec::pentium_iv();
        let mut t = NoisyTimer::new(&spec, 7);
        let n = 200_000;
        let big = (0..n)
            .filter(|_| t.measure(1000) > 30_000)
            .count();
        let expected = n as f64 * spec.outlier_per_million as f64 / 1e6;
        assert!(
            (big as f64) > expected * 0.5 && (big as f64) < expected * 2.0,
            "outliers={big}, expected≈{expected}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let spec = MachineSpec::sparc_ii();
        let mut a = NoisyTimer::new(&spec, 99);
        let mut b = NoisyTimer::new(&spec, 99);
        for c in [50u64, 5000, 500000] {
            assert_eq!(a.measure(c), b.measure(c));
        }
    }
}
