//! # peak-sim — cycle-cost machine simulator
//!
//! Executes `peak-opt` [`CompiledVersion`](peak_opt::CompiledVersion)s with
//! a performance model detailed enough for the paper's phenomena to exist:
//!
//! * [`machine`] — two targets (SPARC II-like, Pentium IV-like) differing
//!   in register count, pipeline depth, and memory hierarchy;
//! * [`cache`] — two-level set-associative LRU data caches whose state
//!   persists across TS invocations (the RBR preconditioning problem);
//! * [`branch`] — a 2-bit branch predictor (if-conversion trade-offs);
//! * [`exec`] — the executor charging op costs, cache latencies, spills,
//!   dependence stalls, branch penalties, and I-cache pressure;
//! * [`tier`] / [`exec_interp`] — the execution-tier ladder
//!   (`interp → predecoded → jit`): tier selection, the pluggable
//!   native-tier backend interface, and the recompute-everything slow
//!   tier — all charging bit-identical cycles;
//! * [`timer`] — measured-time generation with Gaussian jitter and
//!   interrupt-like outliers (what the rating methods must survive);
//! * [`faults`] — seeded, replayable fault injection (jitter bursts,
//!   state pollution, measurement dropout, version crashes) for
//!   robustness testing of the tuning layer;
//! * [`metrics`] — cumulative counter snapshots ([`SimMetrics`]) the
//!   tuning layer diffs at measurement boundaries for telemetry; the
//!   simulator itself stays free of any tracing dependency.

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod exec;
pub mod exec_interp;
pub mod faults;
pub mod machine;
pub mod metrics;
pub mod tier;
pub mod timer;

pub use branch::BranchPredictor;
pub use cache::{AddressMap, Cache, Hierarchy, RefCache};
pub use exec::{
    execute, execute_with_scratch, fault_preamble, DecodedBlock, ExecError, ExecOptions,
    ExecParams, ExecResult, ExecScratch, MachineState, PreparedVersion, SpillEv, RECURSION_LIMIT,
    STEP_LIMIT,
};
pub use exec_interp::execute_interp_with_scratch;
pub use tier::{ExecTier, TierBackend};
pub use faults::{FaultConfig, FaultPlan, FaultStats};
pub use machine::{CacheParams, MachineKind, MachineSpec};
pub use metrics::SimMetrics;
pub use timer::NoisyTimer;
