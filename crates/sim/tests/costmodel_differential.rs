//! Differential gates for the compressed cost model.
//!
//! Every fast path in the cost model names an oracle and a gate
//! (DESIGN.md §16). This suite is the gate for two of them:
//!
//! - **Compressed cache** ([`peak_sim::Cache`], permutation-word LRU +
//!   generation-stamped reset) vs the stamp-based reference
//!   ([`peak_sim::RefCache`]): per-access hit/miss decisions, counters,
//!   and post-flush behaviour must be identical over seeded random
//!   address streams across every associativity class (1, 2, 3..=8,
//!   >8) and both pow2 and non-pow2 geometries.
//! - **Batched predictor commits** ([`peak_sim::BranchPredictor::commit`])
//!   vs the per-branch update path: same table, same stats, same
//!   misprediction count under irregular batch boundaries.
//!
//! `PEAK_COSTMODEL_SEEDS` scales the stream count (default 200; CI runs
//! 2000+).

use peak_sim::{BranchPredictor, Cache, CacheParams, Hierarchy, MachineSpec, RefCache};

fn seeds() -> u64 {
    std::env::var("PEAK_COSTMODEL_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

/// Deterministic splitmix64 — keeps the suite free of RNG-crate churn.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Geometry grid: every shipped associativity (1, 4, 8) plus the
/// specialized 2-way path, odd widths inside the nibble range, the
/// wide (>8) fallback, and non-pow2 sets/lines for the div/mod path.
fn geometries() -> Vec<CacheParams> {
    vec![
        // Shipped machine shapes (SPARC-II / P4 L1+L2).
        CacheParams { sets: 512, ways: 1, line_elems: 4, hit_cycles: 2 },
        CacheParams { sets: 2048, ways: 4, line_elems: 8, hit_cycles: 10 },
        CacheParams { sets: 64, ways: 4, line_elems: 8, hit_cycles: 2 },
        CacheParams { sets: 1024, ways: 8, line_elems: 16, hit_cycles: 18 },
        // Specialized 2-way path.
        CacheParams { sets: 128, ways: 2, line_elems: 8, hit_cycles: 2 },
        // Odd widths in the permutation range.
        CacheParams { sets: 32, ways: 3, line_elems: 4, hit_cycles: 2 },
        CacheParams { sets: 16, ways: 5, line_elems: 8, hit_cycles: 2 },
        CacheParams { sets: 8, ways: 7, line_elems: 2, hit_cycles: 2 },
        // Wide-associativity fallback (explicit order bytes).
        CacheParams { sets: 16, ways: 12, line_elems: 8, hit_cycles: 2 },
        // Non-pow2 sets and lines: div/mod addressing.
        CacheParams { sets: 48, ways: 4, line_elems: 8, hit_cycles: 2 },
        CacheParams { sets: 64, ways: 2, line_elems: 6, hit_cycles: 2 },
        CacheParams { sets: 3, ways: 9, line_elems: 5, hit_cycles: 2 },
    ]
}

/// One random address stream with a locality mix (tight reuse window +
/// occasional far jumps + same-line streaming runs), interleaved
/// flushes, driven through both implementations in lockstep.
fn drive_stream(params: CacheParams, seed: u64) {
    let mut fast = Cache::new(params);
    let mut reference = RefCache::new(params);
    let mut s = seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1);
    // Footprint chosen to straddle the cache capacity so evictions are
    // common but hits still happen.
    let span = (params.capacity_elems() as u64 * 3).max(64);
    let mut last = 0u64;
    for i in 0..4000u64 {
        let r = splitmix(&mut s);
        let addr = match r % 10 {
            // Same-line streaming: re-touch the previous address (MRU
            // early-out path).
            0..=2 => last,
            // Tight window around the previous address.
            3..=6 => last.wrapping_add(r >> 59) % span,
            // Far jump.
            _ => (r >> 16) % span,
        };
        last = addr;
        let h_fast = fast.access(addr);
        let h_ref = reference.access(addr);
        assert_eq!(
            h_fast, h_ref,
            "hit/miss diverged: {params:?} seed {seed} step {i} addr {addr}"
        );
        // Interleaved flushes exercise the generation-stamp reset.
        if r.is_multiple_of(613) {
            fast.flush();
            reference.flush();
        }
    }
    assert_eq!(fast.stats(), reference.stats(), "{params:?} seed {seed}");
}

/// Wall-clock sanity for the compressed layout vs the stamp oracle —
/// `cargo test --release -p peak-sim --test costmodel_differential -- --ignored --nocapture`.
/// Not a gate (single-core CI hosts are too noisy); run it when touching
/// the access path.
#[test]
#[ignore]
fn bench_compressed_vs_reference() {
    for params in [
        CacheParams { sets: 2048, ways: 4, line_elems: 8, hit_cycles: 10 },
        CacheParams { sets: 1024, ways: 8, line_elems: 16, hit_cycles: 18 },
        CacheParams { sets: 512, ways: 1, line_elems: 4, hit_cycles: 2 },
    ] {
        let span = (params.capacity_elems() as u64 * 3) / 2;
        let mut addrs = Vec::with_capacity(1 << 20);
        let mut s = 0x1234_5678u64;
        let mut last = 0u64;
        for _ in 0..1 << 20 {
            let r = splitmix(&mut s);
            let addr = match r % 10 {
                0..=4 => last.wrapping_add(1) % span,
                5..=7 => last.wrapping_add(r >> 59) % span,
                _ => (r >> 16) % span,
            };
            last = addr;
            addrs.push(addr);
        }
        let mut fast = Cache::new(params);
        let mut reference = RefCache::new(params);
        let t0 = std::time::Instant::now();
        let mut h0 = 0u64;
        for _ in 0..8 {
            for &a in &addrs {
                h0 += fast.access(a) as u64;
            }
        }
        let t_fast = t0.elapsed();
        let t1 = std::time::Instant::now();
        let mut h1 = 0u64;
        for _ in 0..8 {
            for &a in &addrs {
                h1 += reference.access(a) as u64;
            }
        }
        let t_ref = t1.elapsed();
        assert_eq!(h0, h1);
        let hit_rate = h0 as f64 / (8.0 * addrs.len() as f64);
        println!(
            "{}x{}w: fast {:>8.1?}  ref {:>8.1?}  ({:.2}x, hit rate {:.2})",
            params.sets,
            params.ways,
            t_fast,
            t_ref,
            t_ref.as_secs_f64() / t_fast.as_secs_f64(),
            hit_rate
        );
    }
}

/// Stencil-shaped hierarchy timing (MGRID-like 27-point neighbourhoods
/// plus software prefetch) — compressed hierarchy vs the stamp-cache
/// composition. Ignored: wall-clock, not a gate.
#[test]
#[ignore]
fn bench_hierarchy_stencil() {
    for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
        let n = 64u64; // grid side
        let mut addrs: Vec<u64> = Vec::new();
        let plane = n * n;
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let c = k * plane + j * n + i;
                    for dk in [-1i64, 0, 1] {
                        for dj in [-1i64, 0, 1] {
                            for di in [-1i64, 0, 1] {
                                addrs.push(
                                    (c as i64 + dk * plane as i64 + dj * n as i64 + di) as u64,
                                );
                            }
                        }
                    }
                    // store to the result grid + prefetch ahead
                    addrs.push(2 * plane * n + c);
                    addrs.push(c + 2 * n); // stand-in prefetch target
                }
            }
        }
        let mut hier = Hierarchy::new(&spec);
        let t0 = std::time::Instant::now();
        let mut acc0 = 0u64;
        for _ in 0..4 {
            for &a in &addrs {
                acc0 += hier.access(a);
            }
        }
        let t_new = t0.elapsed();
        let mut r1 = RefCache::new(spec.l1);
        let mut r2 = RefCache::new(spec.l2);
        let t1 = std::time::Instant::now();
        let mut acc1 = 0u64;
        for _ in 0..4 {
            for &a in &addrs {
                acc1 += if r1.access(a) {
                    spec.l1.hit_cycles
                } else if r2.access(a) {
                    spec.l2.hit_cycles
                } else {
                    spec.mem_cycles
                };
            }
        }
        let t_ref = t1.elapsed();
        assert_eq!(acc0, acc1);
        println!(
            "{:?}: new {:>8.1?}  ref-compose {:>8.1?}  ({:.2}x)",
            spec.kind,
            t_new,
            t_ref,
            t_ref.as_secs_f64() / t_new.as_secs_f64()
        );
    }
}

#[test]
fn compressed_cache_matches_reference() {
    let n = seeds();
    for params in geometries() {
        for seed in 0..n {
            drive_stream(params, seed);
        }
    }
}

/// Post-flush state must be *identical*, not merely "both empty-ish":
/// after a flush both caches must produce the same decisions on a
/// stream that revisits pre-flush addresses.
#[test]
fn flush_resets_identically() {
    for params in geometries() {
        let mut fast = Cache::new(params);
        let mut reference = RefCache::new(params);
        let span = (params.capacity_elems() as u64 * 2).max(32);
        let mut s = 0xDEAD_BEEFu64;
        for round in 0..6 {
            for i in 0..600u64 {
                let addr = splitmix(&mut s) % span;
                assert_eq!(
                    fast.access(addr),
                    reference.access(addr),
                    "{params:?} round {round} step {i}"
                );
            }
            fast.flush();
            reference.flush();
            // Immediately-post-flush accesses must all miss in both.
            for i in 0..(params.ways as u64 + 2) {
                let addr = i * params.line_elems as u64;
                assert_eq!(
                    fast.access(addr),
                    reference.access(addr),
                    "{params:?} post-flush round {round}"
                );
            }
            assert_eq!(fast.stats(), reference.stats());
        }
    }
}

/// The two-level [`Hierarchy`] over compressed caches vs a plain
/// composition of two [`RefCache`] levels: per-access cycle costs and
/// both levels' hit/miss counters must be identical over streams heavy
/// in sequential element sweeps (the MRU fast-path pattern), with
/// prefetches and flushes mixed in.
#[test]
fn hierarchy_filter_matches_reference_composition() {
    let n = seeds().min(400);
    for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
        let span = (spec.l2.capacity_elems() as u64 * 2).max(256);
        for seed in 0..n {
            let mut hier = Hierarchy::new(&spec);
            let mut r1 = RefCache::new(spec.l1);
            let mut r2 = RefCache::new(spec.l2);
            let mut s = seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(3);
            let mut addr = 0u64;
            for i in 0..3000u64 {
                let r = splitmix(&mut s);
                addr = match r % 16 {
                    // Sequential element sweep — mostly same-line.
                    0..=9 => addr.wrapping_add(1) % span,
                    // Small stride.
                    10..=12 => addr.wrapping_add(spec.l1.line_elems as u64 / 2 + 1) % span,
                    // Far jump.
                    _ => (r >> 16) % span,
                };
                if r.is_multiple_of(71) {
                    let p = (r >> 24) % span;
                    hier.prefetch(p);
                    let _ = r1.access(p);
                    let _ = r2.access(p);
                } else if r.is_multiple_of(1327) {
                    hier.flush();
                    r1.flush();
                    r2.flush();
                }
                let want = if r1.access(addr) {
                    spec.l1.hit_cycles
                } else if r2.access(addr) {
                    spec.l2.hit_cycles
                } else {
                    spec.mem_cycles
                };
                assert_eq!(
                    hier.access(addr),
                    want,
                    "cycles diverged: {:?} seed {seed} step {i} addr {addr}",
                    spec.kind
                );
            }
            assert_eq!(hier.l1.stats(), r1.stats(), "{:?} seed {seed}", spec.kind);
            assert_eq!(hier.l2.stats(), r2.stats(), "{:?} seed {seed}", spec.kind);
        }
    }
}

/// Batched predictor commits vs the sequential path over seeded random
/// (site, taken) streams with irregular batch boundaries — table,
/// stats, and misprediction count all identical.
#[test]
fn batched_predictor_matches_sequential() {
    let n = seeds().min(500);
    for entries in [64usize, 512, 4096, 100] {
        for seed in 0..n {
            let mut seq = BranchPredictor::new(entries);
            let mut bat = BranchPredictor::new(entries);
            let mut s = seed.wrapping_mul(0x9E37_79B9).wrapping_add(17);
            let mut staged: Vec<(u32, bool)> = Vec::new();
            let mut seq_wrong = 0u64;
            let mut bat_wrong = 0u64;
            for i in 0..2000u64 {
                let r = splitmix(&mut s);
                let site = r % 61;
                // Mix of biased and flappy branches.
                let taken = if site.is_multiple_of(3) { r & 7 != 0 } else { r & 1 == 0 };
                seq_wrong += seq.mispredicted(site, taken) as u64;
                staged.push((BranchPredictor::index_for(entries, site) as u32, taken));
                if staged.len() as u64 > r % 97 || i == 1999 {
                    bat_wrong += bat.commit(&staged);
                    staged.clear();
                }
            }
            bat_wrong += bat.commit(&staged);
            assert_eq!(seq_wrong, bat_wrong, "entries {entries} seed {seed}");
            assert_eq!(seq.stats(), bat.stats(), "entries {entries} seed {seed}");
        }
    }
}
