//! Behavioural tests of the machine cost model: each codegen-policy flag
//! must have its documented effect on simulated cycles, on the right
//! machine.

use peak_ir::{BinOp, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value};
use peak_opt::{Flag, OptConfig};
use peak_sim::{execute, AddressMap, ExecOptions, MachineSpec, MachineState, PreparedVersion};

/// A small loop with work in the body (delay-slot-fillable, alignable).
fn loop_program() -> (Program, peak_ir::FuncId) {
    let mut prog = Program::new();
    let a = prog.add_mem("a", Type::I64, 256);
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    b.for_loop(i, 0i64, n, 1, |b| {
        let x = b.load(Type::I64, MemRef::global(a, i));
        b.binary_into(acc, BinOp::Add, acc, x);
    });
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    (prog, f)
}

/// Run one invocation with a config on a machine, noiseless.
fn cycles_of(cfg: OptConfig, spec: &MachineSpec, n: i64) -> u64 {
    let (prog, f) = loop_program();
    let cv = peak_opt::optimize(&prog, f, &cfg);
    let pv = PreparedVersion::prepare(cv, spec);
    let amap = AddressMap::new(&[256]);
    let mut state = MachineState::noiseless(spec.clone());
    let mut mem = MemoryImage::new(&pv.version.program);
    for i in 0..256 {
        mem.store(peak_ir::MemId(0), i, Value::I64(1));
    }
    // Warm run + measured run (stable caches/predictor).
    for _ in 0..2 {
        let _ = execute(&pv, &[Value::I64(n)], &mut mem, &amap, &mut state, &ExecOptions::default())
            .unwrap();
    }
    execute(&pv, &[Value::I64(n)], &mut mem, &amap, &mut state, &ExecOptions::default())
        .unwrap()
        .true_cycles
}

/// A config with only the baseline scalar cleanups (stable code shape) so
/// single codegen flags can be toggled in isolation.
fn base_cfg() -> OptConfig {
    OptConfig::o0()
        .with(Flag::ConstantFolding, true)
        .with(Flag::CopyPropagation, true)
        .with(Flag::DeadCodeElimination, true)
}

#[test]
fn delayed_branch_helps_on_sparc_only() {
    let with = base_cfg().with(Flag::DelayedBranch, true);
    let without = base_cfg();
    let sparc = MachineSpec::sparc_ii();
    let p4 = MachineSpec::pentium_iv();
    assert!(
        cycles_of(with, &sparc, 200) < cycles_of(without, &sparc, 200),
        "delay slots fill on SPARC"
    );
    assert_eq!(
        cycles_of(with, &p4, 200),
        cycles_of(without, &p4, 200),
        "no delay slots on P4"
    );
}

#[test]
fn align_loops_discounts_taken_branches() {
    for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
        let with = base_cfg().with(Flag::AlignLoops, true);
        let without = base_cfg();
        assert!(
            cycles_of(with, &spec, 200) < cycles_of(without, &spec, 200),
            "alignment pays on {}",
            spec.kind.name()
        );
    }
}

#[test]
fn coalescing_removes_copy_cost() {
    let with = base_cfg().with(Flag::RegAllocCoalesce, true);
    let without = base_cfg();
    let spec = MachineSpec::sparc_ii();
    // The loop body has a copy (`acc` update chain after copy-prop);
    // coalescing must never be slower.
    assert!(cycles_of(with, &spec, 200) <= cycles_of(without, &spec, 200));
}

#[test]
fn icache_pressure_penalizes_oversized_code() {
    // Same dynamic behaviour, bloated static size: full unrolling with a
    // long constant loop inflates code size past the trace-cache budget.
    let mut prog = Program::new();
    let a = prog.add_mem("a", Type::I64, 64);
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let outer = b.param("outer", Type::I64);
    let o = b.var("o", Type::I64);
    let i = b.var("i", Type::I64);
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    b.for_loop(o, 0i64, outer, 1, |b| {
        b.for_loop(i, 0i64, 8i64, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            b.binary_into(acc, BinOp::Add, acc, x);
        });
    });
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    let spec = MachineSpec::pentium_iv();
    // Unrolled version: bigger code.
    let small = peak_opt::optimize(&prog, f, &base_cfg());
    let big = peak_opt::optimize(
        &prog,
        f,
        &base_cfg().with(Flag::LoopUnrollSmall, true).with(Flag::LoopUnroll, true),
    );
    let small_pv = PreparedVersion::prepare(small, &spec);
    let big_pv = PreparedVersion::prepare(big, &spec);
    // The flag effects themselves are legitimate; here we check the
    // footprint bookkeeping that feeds the penalty.
    assert!(big_pv.version.code_size > small_pv.version.code_size);
    if big_pv.version.code_size > spec.icache_stmt_capacity {
        assert!(big_pv.over_icache);
    }
    assert!(!small_pv.over_icache);
}

#[test]
fn branch_predictor_rewards_stable_branches() {
    // A loop whose inner branch is always-taken vs data-random: the same
    // static code must cost more cycles with unpredictable data.
    let mut prog = Program::new();
    let a = prog.add_mem("a", Type::I64, 1024);
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    b.for_loop(i, 0i64, n, 1, |b| {
        let x = b.load(Type::I64, MemRef::global(a, i));
        let c = b.binary(BinOp::Gt, x, 0i64);
        b.if_then(c, |b| {
            b.binary_into(acc, BinOp::Add, acc, 1i64);
        });
    });
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    // No if-conversion: keep the branch.
    let cfg = base_cfg();
    let cv = peak_opt::optimize(&prog, f, &cfg);
    let spec = MachineSpec::pentium_iv();
    let pv = PreparedVersion::prepare(cv, &spec);
    let amap = AddressMap::new(&[1024]);
    let run_with = |fill: &dyn Fn(i64) -> i64| -> u64 {
        let mut state = MachineState::noiseless(spec.clone());
        let mut mem = MemoryImage::new(&pv.version.program);
        for i in 0..1024 {
            mem.store(peak_ir::MemId(0), i, Value::I64(fill(i)));
        }
        let mut total = 0;
        for _ in 0..3 {
            total = execute(
                &pv,
                &[Value::I64(1000)],
                &mut mem,
                &amap,
                &mut state,
                &ExecOptions::default(),
            )
            .unwrap()
            .true_cycles;
        }
        total
    };
    let stable = run_with(&|_| 1);
    let random = run_with(&|i| (i.wrapping_mul(2654435761) >> 7) & 1);
    assert!(
        random > stable + 1000,
        "mispredictions must show: stable={stable} random={random}"
    );
}

#[test]
fn if_conversion_wins_on_unpredictable_branches_p4() {
    // The same random-branch loop, with vs without if-conversion, on the
    // machine with the 20-cycle mispredict penalty.
    let mut prog = Program::new();
    let a = prog.add_mem("a", Type::I64, 1024);
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    b.for_loop(i, 0i64, n, 1, |b| {
        let x = b.load(Type::I64, MemRef::global(a, i));
        let c = b.binary(BinOp::Gt, x, 0i64);
        b.if_then(c, |b| {
            b.binary_into(acc, BinOp::Add, acc, 1i64);
        });
    });
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    let spec = MachineSpec::pentium_iv();
    let amap = AddressMap::new(&[1024]);
    let measure = |cfg: OptConfig| -> u64 {
        let cv = peak_opt::optimize(&prog, f, &cfg);
        let pv = PreparedVersion::prepare(cv, &spec);
        let mut state = MachineState::noiseless(spec.clone());
        let mut mem = MemoryImage::new(&pv.version.program);
        for i in 0..1024 {
            mem.store(
                peak_ir::MemId(0),
                i,
                Value::I64((i.wrapping_mul(2654435761) >> 7) & 1),
            );
        }
        let mut last = 0;
        for _ in 0..3 {
            last = execute(
                &pv,
                &[Value::I64(1000)],
                &mut mem,
                &amap,
                &mut state,
                &ExecOptions::default(),
            )
            .unwrap()
            .true_cycles;
        }
        last
    };
    let branchy = measure(base_cfg());
    let converted = measure(base_cfg().with(Flag::IfConversion, true));
    assert!(
        converted < branchy,
        "cmov beats 50% mispredicts on P4: converted={converted} branchy={branchy}"
    );
}

#[test]
fn caller_saves_cheapens_calls_with_live_values() {
    // A loop calling a helper while several values stay live across the
    // call: `caller-saves` keeps them in caller-saved registers (2 cy per
    // value) instead of memory (4 cy per value).
    let mut prog = Program::new();
    let mut cb = peak_ir::FunctionBuilder::new("helper", Some(Type::I64));
    let x = cb.param("x", Type::I64);
    let r = cb.binary(BinOp::Add, x, 1i64);
    cb.ret(Some(r.into()));
    let callee = prog.add_func(cb.finish());
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let i = b.var("i", Type::I64);
    // Live-across-call values.
    let keep: Vec<_> = (0..4)
        .map(|j| {
            let v = b.var(format!("k{j}"), Type::I64);
            b.copy(v, j as i64 + 10);
            v
        })
        .collect();
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    b.for_loop(i, 0i64, n, 1, |b| {
        let c = b.call(Type::I64, callee, vec![i.into()]);
        b.binary_into(acc, BinOp::Add, acc, c);
    });
    for &v in &keep {
        b.binary_into(acc, BinOp::Add, acc, v);
    }
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    // Inlining must stay off so calls actually execute.
    let cfg_base = OptConfig::o0();
    let with = cfg_base.with(Flag::CallerSaves, true);
    let spec = MachineSpec::sparc_ii();
    let measure = |cfg: OptConfig| -> u64 {
        let cv = peak_opt::optimize(&prog, f, &cfg);
        let pv = PreparedVersion::prepare(cv, &spec);
        let amap = AddressMap::new(&[]);
        let mut state = MachineState::noiseless(spec.clone());
        let mut mem = MemoryImage::new(&pv.version.program);
        execute(&pv, &[Value::I64(50)], &mut mem, &amap, &mut state, &ExecOptions::default())
            .unwrap()
            .true_cycles
    };
    let cheap = measure(with);
    let dear = measure(cfg_base);
    assert!(
        cheap < dear,
        "caller-saves must cheapen live-across-call traffic: {cheap} vs {dear}"
    );
    // The difference scales with the live count × call count.
    assert!(dear - cheap >= 50 * 2, "≥2 cycles × 50 calls saved: {}", dear - cheap);
}

#[test]
fn rename_registers_hides_false_dependences() {
    // A chain that reuses one temp repeatedly: consecutive WAW/WAR on the
    // same register stall without renaming.
    let mut prog = Program::new();
    let mut b = FunctionBuilder::new("f", Some(Type::I64));
    let p = b.param("p", Type::I64);
    let t = b.var("t", Type::I64);
    let acc = b.var("acc", Type::I64);
    b.copy(acc, 0i64);
    for k in 0..24 {
        b.binary_into(t, BinOp::Add, p, k as i64); // redefines t (WAW chain)
        b.binary_into(acc, BinOp::Xor, acc, t);
    }
    b.ret(Some(acc.into()));
    let f = prog.add_func(b.finish());
    let spec = MachineSpec::sparc_ii(); // in-order: stalls fully exposed
    let measure = |cfg: OptConfig| -> u64 {
        let cv = peak_opt::optimize(&prog, f, &cfg);
        let pv = PreparedVersion::prepare(cv, &spec);
        let amap = AddressMap::new(&[]);
        let mut state = MachineState::noiseless(spec.clone());
        let mut mem = MemoryImage::new(&pv.version.program);
        execute(&pv, &[Value::I64(3)], &mut mem, &amap, &mut state, &ExecOptions::default())
            .unwrap()
            .true_cycles
    };
    let without = measure(OptConfig::o0());
    let with = measure(OptConfig::o0().with(Flag::RenameRegisters, true));
    assert!(
        with < without,
        "renaming must remove false-dependence stalls: {with} vs {without}"
    );
    assert!(without - with >= 20, "one stall per reuse pair: saved {}", without - with);
}
