//! Graceful degradation of the rating layer (robustness extension).
//!
//! The paper's §3 fallback ("if the system cannot achieve enough accuracy
//! … it switches to the next applicable rating method") assumes the only
//! failure mode is an unconverged window. Under injected faults — version
//! crashes, measurement dropout, jitter bursts — a rating can fail in
//! ways retrying cannot fix. The [`RatingSupervisor`] wraps
//! [`rate_with`](crate::rating::rate_with) with:
//!
//! 1. **Retry with backoff**: an unconverged rating is retried with a
//!    widened window budget (`window_scale *= widen_factor`), up to
//!    `max_retries` times and within an optional tuning-cycle budget;
//! 2. **Fallback cascade**: persistent failures walk down
//!    preferred → consultant order → WHL, which is terminal and
//!    best-effort (it accepts whatever it measures);
//! 3. **Structured logging**: every downgrade is recorded as a
//!    [`DegradeEvent`] — serializable, so fault scenarios replay to
//!    byte-identical event streams and checkpoints carry the log.

use crate::consultant::Method;
use crate::rating::{rate_with, RateOptions, RateOutcome, TuningSetup};
use peak_obs::event;
use peak_opt::OptConfig;
use peak_util::{Json, ToJson};

/// Why the supervisor moved from one rating method to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeTrigger {
    /// Method structurally inapplicable (no consultant plan).
    Inapplicable,
    /// Context space too large/fragmented for CBR to rate in budget.
    ContextExplosion,
    /// Too many candidate windows failed to converge even after retries.
    Unconverged,
    /// Measurement dropout rate exceeded the configured threshold.
    DropoutRate,
    /// A version crashed during rating; deterministic crashes recur, so
    /// the method is abandoned without retry.
    VersionCrash,
    /// Regression system was singular / variance unbounded (MBR).
    IllConditioned,
}

impl DegradeTrigger {
    /// Stable string form (JSON + logs).
    pub fn name(self) -> &'static str {
        match self {
            DegradeTrigger::Inapplicable => "inapplicable",
            DegradeTrigger::ContextExplosion => "context-explosion",
            DegradeTrigger::Unconverged => "unconverged",
            DegradeTrigger::DropoutRate => "dropout-rate",
            DegradeTrigger::VersionCrash => "version-crash",
            DegradeTrigger::IllConditioned => "ill-conditioned",
        }
    }

    /// Parse the string written by [`DegradeTrigger::name`].
    pub fn from_name(name: &str) -> Option<DegradeTrigger> {
        Some(match name {
            "inapplicable" => DegradeTrigger::Inapplicable,
            "context-explosion" => DegradeTrigger::ContextExplosion,
            "unconverged" => DegradeTrigger::Unconverged,
            "dropout-rate" => DegradeTrigger::DropoutRate,
            "version-crash" => DegradeTrigger::VersionCrash,
            "ill-conditioned" => DegradeTrigger::IllConditioned,
            _ => return None,
        })
    }
}

impl ToJson for DegradeTrigger {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_owned())
    }
}

/// One downgrade step, logged by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeEvent {
    /// Which supervised rating call this happened in (0-based).
    pub rating: usize,
    /// Method given up on.
    pub from: Method,
    /// Method degraded to.
    pub to: Method,
    /// Why.
    pub trigger: DegradeTrigger,
    /// Widening retries spent on `from` before giving up.
    pub retries: u32,
}

impl ToJson for DegradeEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rating", self.rating.to_json()),
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
            ("trigger", self.trigger.to_json()),
            ("retries", self.retries.to_json()),
        ])
    }
}

impl DegradeEvent {
    /// Parse the JSON written by [`ToJson`].
    pub fn from_json(j: &Json) -> Option<DegradeEvent> {
        Some(DegradeEvent {
            rating: j.get("rating")?.as_u64()? as usize,
            from: Method::from_json_name(j.get("from")?.as_str()?)?,
            to: Method::from_json_name(j.get("to")?.as_str()?)?,
            trigger: DegradeTrigger::from_name(j.get("trigger")?.as_str()?)?,
            retries: j.get("retries")?.as_u64()? as u32,
        })
    }
}

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Widening retries per method before degrading.
    pub max_retries: u32,
    /// Window-budget multiplier applied per retry.
    pub widen_factor: f64,
    /// Dropout rate above which a method is abandoned immediately.
    pub dropout_threshold: f64,
    /// Fraction of candidates allowed to stay unconverged (mirrors the
    /// §3 method-switch trigger).
    pub switch_fraction: f64,
    /// Optional tuning-cycle budget: once exceeded, no more retries are
    /// spent (degradation still proceeds so the rating completes).
    pub cycle_budget: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            widen_factor: 1.8,
            dropout_threshold: 0.25,
            switch_fraction: crate::search::SWITCH_FRACTION,
            cycle_budget: None,
        }
    }
}

/// Supervises rating calls: retries, degrades, and logs.
#[derive(Debug, Clone)]
pub struct RatingSupervisor {
    config: SupervisorConfig,
    events: Vec<DegradeEvent>,
    ratings: usize,
}

impl RatingSupervisor {
    /// New supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> Self {
        RatingSupervisor { config, events: Vec::new(), ratings: 0 }
    }

    /// The policy in effect.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// All downgrades logged so far.
    pub fn events(&self) -> &[DegradeEvent] {
        &self.events
    }

    /// Supervised rating calls made so far.
    pub fn ratings(&self) -> usize {
        self.ratings
    }

    /// Restore supervisor state from a checkpoint.
    pub fn restore(&mut self, events: Vec<DegradeEvent>, ratings: usize) {
        self.events = events;
        self.ratings = ratings;
    }

    /// The method cascade for a given preferred method: the preferred
    /// method first, then the consultant's remaining order, ending in WHL
    /// (always applicable, accepts any outcome).
    fn cascade(&self, setup: &TuningSetup<'_>, preferred: Method) -> Vec<Method> {
        let order = &setup.consult.order;
        let mut list = vec![preferred];
        let start = order.iter().position(|&m| m == preferred).map_or(0, |i| i + 1);
        for &m in &order[start.min(order.len())..] {
            if !list.contains(&m) {
                list.push(m);
            }
        }
        if !list.contains(&Method::Whl) {
            list.push(Method::Whl);
        }
        list
    }

    /// Whether the cycle budget still allows spending more on retries.
    fn budget_allows_retry(&self, setup: &TuningSetup<'_>) -> bool {
        match self.config.cycle_budget {
            Some(budget) => setup.tuning_cycles < budget,
            None => true,
        }
    }

    /// Inspect an outcome for a reason to abandon the method right away
    /// (retrying cannot fix these: injected crashes are deterministic per
    /// invocation index, and a lossy channel stays lossy).
    fn fatal_trigger(&self, out: &RateOutcome) -> Option<DegradeTrigger> {
        if out.crashes > 0 {
            return Some(DegradeTrigger::VersionCrash);
        }
        if out.dropout_rate() > self.config.dropout_threshold {
            return Some(DegradeTrigger::DropoutRate);
        }
        None
    }

    /// Trigger for an outcome that stayed unconverged after retries.
    fn unconverged_trigger(&self, out: &RateOutcome) -> DegradeTrigger {
        if out.method == Method::Mbr && out.vars.iter().any(|v| !v.is_finite()) {
            DegradeTrigger::IllConditioned
        } else {
            DegradeTrigger::Unconverged
        }
    }

    /// Trigger for a method that refused to rate at all.
    fn inapplicable_trigger(method: Method) -> DegradeTrigger {
        match method {
            Method::Cbr => DegradeTrigger::ContextExplosion,
            _ => DegradeTrigger::Inapplicable,
        }
    }

    /// Rate `candidates` against `base`, starting from `preferred` and
    /// degrading down the cascade as needed. Always returns an outcome:
    /// the terminal WHL accepts whatever it measures.
    pub fn rate(
        &mut self,
        setup: &mut TuningSetup<'_>,
        preferred: Method,
        base: OptConfig,
        candidates: &[OptConfig],
    ) -> (RateOutcome, Method) {
        let rating = self.ratings;
        self.ratings += 1;
        let tracer = setup.tracer().clone();
        let cascade = self.cascade(setup, preferred);
        let ncand = candidates.len().max(1) as f64;
        let mut last: Option<RateOutcome> = None;
        for (pos, &m) in cascade.iter().enumerate() {
            let terminal = pos + 1 == cascade.len();
            let next = cascade.get(pos + 1).copied().unwrap_or(Method::Whl);
            let log = |trigger: DegradeTrigger, retries: u32, events: &mut Vec<DegradeEvent>| {
                events.push(DegradeEvent { rating, from: m, to: next, trigger, retries });
                event!(
                    tracer,
                    "supervisor.degrade",
                    rating = rating as u64,
                    from = m.name(),
                    to = next.name(),
                    trigger = trigger.name(),
                    retries = retries as u64,
                );
            };
            let mut opts = RateOptions::default();
            let mut retries = 0u32;
            loop {
                let Some(out) = rate_with(setup, m, base, candidates, &opts) else {
                    log(Self::inapplicable_trigger(m), retries, &mut self.events);
                    break;
                };
                if terminal {
                    // Best-effort terminal method: accept any outcome.
                    return (out, m);
                }
                if let Some(trigger) = self.fatal_trigger(&out) {
                    log(trigger, retries, &mut self.events);
                    last = Some(out);
                    break;
                }
                let frac_bad = out.unconverged as f64 / ncand;
                if frac_bad <= self.config.switch_fraction {
                    return (out, m);
                }
                if retries < self.config.max_retries && self.budget_allows_retry(setup) {
                    retries += 1;
                    opts.window_scale *= self.config.widen_factor;
                    event!(
                        tracer,
                        "supervisor.retry",
                        rating = rating as u64,
                        method = m.name(),
                        retry = retries as u64,
                        window_scale = opts.window_scale,
                        unconverged = out.unconverged as u64,
                    );
                    continue;
                }
                log(self.unconverged_trigger(&out), retries, &mut self.events);
                last = Some(out);
                break;
            }
        }
        // Unreachable in practice (WHL is terminal and always rates), but
        // keep a defensive completion path.
        let m = *cascade.last().expect("cascade never empty");
        let out = last.unwrap_or_else(|| {
            rate_with(setup, Method::Whl, base, candidates, &RateOptions::default())
                .expect("WHL always rates")
        });
        (out, m)
    }
}

impl Default for RatingSupervisor {
    fn default() -> Self {
        Self::new(SupervisorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_sim::{FaultConfig, MachineSpec};
    use peak_workloads::{swim::SwimCalc3, Dataset};

    #[test]
    fn clean_rating_needs_no_degradation() {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let base = peak_opt::OptConfig::o3();
        let mut sup = RatingSupervisor::default();
        let (out, m) = sup.rate(&mut setup, Method::Cbr, base, &[base]);
        assert_eq!(m, Method::Cbr);
        assert!(sup.events().is_empty(), "{:?}", sup.events());
        assert!((out.improvements[0] - 1.0).abs() < 0.03);
    }

    #[test]
    fn crash_degrades_without_panic() {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let mut fc = FaultConfig::none(7);
        fc.crash_at = Some(3);
        setup.set_faults(Some(fc));
        let base = peak_opt::OptConfig::o3();
        let mut sup = RatingSupervisor::default();
        let (_, m) = sup.rate(&mut setup, Method::Cbr, base, &[base]);
        // Every method that measures per-invocation crashes on the 3rd
        // execution of every run; WHL is the terminal best-effort fallback.
        assert_eq!(m, Method::Whl, "events: {:?}", sup.events());
        assert!(
            sup.events().iter().any(|e| e.trigger == DegradeTrigger::VersionCrash),
            "{:?}",
            sup.events()
        );
    }

    #[test]
    fn heavy_dropout_triggers_dropout_degrade() {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let mut fc = FaultConfig::none(11);
        fc.dropout_per_million = 600_000; // 60% of readings lost
        setup.set_faults(Some(fc));
        let base = peak_opt::OptConfig::o3();
        let mut sup = RatingSupervisor::default();
        let (_, _) = sup.rate(&mut setup, Method::Cbr, base, &[base]);
        assert!(
            sup.events().iter().any(|e| e.trigger == DegradeTrigger::DropoutRate),
            "{:?}",
            sup.events()
        );
    }

    #[test]
    fn event_json_roundtrip() {
        let e = DegradeEvent {
            rating: 3,
            from: Method::Cbr,
            to: Method::Mbr,
            trigger: DegradeTrigger::DropoutRate,
            retries: 2,
        };
        let j = e.to_json();
        let parsed = DegradeEvent::from_json(&j).unwrap();
        assert_eq!(parsed, e);
        let text = j.pretty();
        let back = DegradeEvent::from_json(&peak_util::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
