//! Search over the 2^38 optimization-flag space.
//!
//! Primary algorithm: **Iterative Elimination** (paper §5.2, citing the
//! authors' TR \[11\]): start from -O3, rate each enabled flag's removal
//! against the current base, remove the most harmful flag, repeat until
//! no removal helps. O(n²) ratings instead of 2^n. Exhaustive search
//! (small subspaces) and biased random search (Cooper-style) are provided
//! for the ablation benchmarks.

use crate::consultant::Method;
use crate::rating::{rate, RateOutcome, TuningSetup};
use crate::sched::Pool;
use crate::strategy::{FrontierRater, IterativeElimination, RandomSearchStrategy, SearchStrategy};
use peak_opt::{Flag, OptConfig};
use peak_util::{Json, ToJson};

/// Search outcome.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best configuration found (not serialized; `disabled_flags` is the
    /// report-friendly form).
    pub best: OptConfig,
    /// Flags disabled relative to -O3 (report-friendly).
    pub disabled_flags: Vec<String>,
    /// Rating method that produced the final decision.
    pub method: Method,
    /// Method switches that occurred (§3's fallback).
    pub switches: u32,
    /// Total candidate ratings performed.
    pub ratings: usize,
    /// Tuning cycles consumed (true cycles of all tuning runs).
    pub tuning_cycles: u64,
    /// Application runs used.
    pub runs: usize,
    /// TS invocations consumed.
    pub invocations: u64,
}

impl ToJson for SearchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("disabled_flags", self.disabled_flags.to_json()),
            ("method", self.method.to_json()),
            ("switches", self.switches.to_json()),
            ("ratings", self.ratings.to_json()),
            ("tuning_cycles", self.tuning_cycles.to_json()),
            ("runs", self.runs.to_json()),
            ("invocations", self.invocations.to_json()),
        ])
    }
}

/// Live count of IE rounds executed (serial and parallel variants), fed
/// to the global metrics registry; handle cached so steady state is one
/// flag load + one `fetch_add`.
#[inline]
pub(crate) fn count_ie_round() {
    use std::sync::OnceLock;
    if !peak_obs::metrics::enabled() {
        return;
    }
    static ROUNDS: OnceLock<std::sync::Arc<peak_obs::Counter>> = OnceLock::new();
    ROUNDS
        .get_or_init(|| {
            peak_obs::MetricsRegistry::global()
                .counter("core.search.ie_rounds", "Iterative-elimination rounds executed")
        })
        .inc();
}

/// Minimum relative improvement for a flag removal to count (noise guard).
pub(crate) const MIN_GAIN: f64 = 1.012;
/// Round cap for Iterative Elimination: each round removes one flag, and
/// gains below [`MIN_GAIN`] stop the search anyway; the cap bounds tuning
/// cost when measurement noise keeps producing marginal "wins".
pub(crate) const MAX_IE_ROUNDS: usize = 10;
/// Fraction of candidates allowed to stay unconverged before the tuner
/// switches rating methods.
pub(crate) const SWITCH_FRACTION: f64 = 0.34;

/// Rate with automatic method switching down the consultant's order
/// (paper §3: "If the system cannot achieve enough accuracy … it switches
/// to the next applicable rating method").
pub fn rate_with_fallback(
    setup: &mut TuningSetup<'_>,
    preferred: Method,
    base: OptConfig,
    candidates: &[OptConfig],
    switches: &mut u32,
) -> (RateOutcome, Method) {
    // Try the preferred method first even when the consultant left it out
    // of the order (a *forced* method, e.g. Figure 7's MGRID_CBR cell),
    // then continue down the order from that point. A forced method that
    // cannot converge falls through exactly like an in-order one — and its
    // wasted cycles stay on the bill, which is what the figure shows.
    let order = setup.consult.order.clone();
    let mut try_list = vec![preferred];
    let start = order.iter().position(|&m| m == preferred).map_or(0, |i| i + 1);
    for &m in &order[start.min(order.len())..] {
        if !try_list.contains(&m) {
            try_list.push(m);
        }
    }
    let mut last: Option<RateOutcome> = None;
    for &m in &try_list {
        if let Some(out) = rate(setup, m, base, candidates) {
            let frac_bad = out.unconverged as f64 / (candidates.len().max(1) as f64);
            if frac_bad <= SWITCH_FRACTION {
                return (out, m);
            }
            last = Some(out);
            *switches += 1;
        }
    }
    // Everything struggled: use the last (most applicable) method anyway.
    let m = *order.last().expect("RBR always applicable");
    match last {
        Some(out) => (out, m),
        None => {
            let out = rate(setup, m, base, candidates).expect("RBR always rates");
            (out, m)
        }
    }
}

/// Iterative Elimination with the given (initial) rating method,
/// starting from -O3 (the paper's protocol).
pub fn iterative_elimination(setup: &mut TuningSetup<'_>, method: Method) -> SearchResult {
    iterative_elimination_from(setup, method, OptConfig::o3())
}

/// [`iterative_elimination`] from an explicit start configuration — the
/// serve daemon's knowledge-store warm start seeds the search with a
/// nearest-neighbour best config instead of -O3. With `start =
/// OptConfig::o3()` this is exactly [`iterative_elimination`].
///
/// Each round boundary is a cooperative cancellation point
/// ([`TuningSetup::check_cancel`]); with the default token this is
/// a no-op.
///
/// Since the strategy extraction this is a thin wrapper: the IE loop
/// lives in [`IterativeElimination`] and runs on a
/// [`FrontierRater::serial`] rater — the serial interleaved rating
/// protocol the Table 1 / Figure 7 goldens pin down, with an unlimited
/// compilation budget. The differential suite asserts this wrapper is
/// byte-identical to the pre-trait implementation.
pub fn iterative_elimination_from(
    setup: &mut TuningSetup<'_>,
    method: Method,
    start: OptConfig,
) -> SearchResult {
    let strategy = IterativeElimination { start, max_rounds: MAX_IE_ROUNDS };
    let mut rater = FrontierRater::serial(setup, method);
    strategy.run(&mut rater)
}

/// Seed base for one (round, method-attempt) frontier; each candidate
/// job offsets by [`JOB_SEED_STRIDE`]. A rating call starts at most
/// [`MAX_RUNS_PER_RATING`](crate::rating) ≤ 60 runs (one seed increment
/// each), so strides of 1024 keep every job's run-seed range disjoint
/// and — more importantly — *fixed*, independent of scheduling.
pub(crate) fn frontier_seed_base(round: usize, attempt: usize) -> u64 {
    1 + ((round as u64 * 8 + attempt as u64) << 16)
}
const JOB_SEED_STRIDE: u64 = 1024;

/// Rate a candidate frontier with per-candidate parallel jobs: candidate
/// `j` is rated in its own forked scratch setup (deterministically
/// seeded from `seed_base + j·stride`) against a fresh measurement of
/// the base, and the outcomes are merged in candidate order. Returns
/// `None` when `method` is structurally inapplicable (mirrors [`rate`]).
///
/// This is a *restructured* protocol, not a parallelization of the
/// serial one: serial rating interleaves all candidates inside shared
/// application runs (joint window picking, shared machine state), which
/// is inherently sequential. Decomposing per candidate re-measures the
/// base in every job (~2× the measurements on small frontiers) but
/// makes each job independent — so the merged result is bit-identical
/// at **any** thread count, which the differential tests pin down.
pub(crate) fn rate_frontier_parallel(
    setup: &mut TuningSetup<'_>,
    pool: &Pool,
    method: Method,
    base: OptConfig,
    candidates: &[OptConfig],
    seed_base: u64,
) -> Option<RateOutcome> {
    match method {
        Method::Cbr if setup.consult.cbr.is_none() => return None,
        Method::Mbr if setup.consult.mbr.is_none() => return None,
        _ => {}
    }
    struct JobResult {
        improvement: f64,
        var: f64,
        unconverged: usize,
        samples: usize,
        trimmed: usize,
        dropouts: u64,
        crashes: u64,
        tuning_cycles: u64,
        runs_used: usize,
        invocations_used: u64,
    }
    let results: Vec<JobResult> = {
        let shared: &TuningSetup<'_> = setup;
        pool.map(candidates.len(), |j| {
            let mut scratch = shared.fork_for_job(seed_base + j as u64 * JOB_SEED_STRIDE);
            let out = rate(&mut scratch, method, base, &[candidates[j]])
                .expect("applicability checked before fan-out");
            JobResult {
                improvement: out.improvements[0],
                var: out.vars[0],
                unconverged: out.unconverged,
                samples: out.samples,
                trimmed: out.trimmed,
                dropouts: out.dropouts,
                crashes: out.crashes,
                tuning_cycles: scratch.tuning_cycles,
                runs_used: scratch.runs_used,
                invocations_used: scratch.invocations_used,
            }
        })
    };
    // Merge in candidate order (the pool already returns index-ordered
    // results; the fold below keeps the canonical order explicit).
    let mut merged = RateOutcome {
        improvements: Vec::with_capacity(candidates.len()),
        vars: Vec::with_capacity(candidates.len()),
        unconverged: 0,
        method,
        samples: 0,
        trimmed: 0,
        dropouts: 0,
        crashes: 0,
    };
    for r in &results {
        merged.improvements.push(r.improvement);
        merged.vars.push(r.var);
        merged.unconverged += r.unconverged;
        merged.samples += r.samples;
        merged.trimmed += r.trimmed;
        merged.dropouts += r.dropouts;
        merged.crashes += r.crashes;
        setup.tuning_cycles += r.tuning_cycles;
        setup.runs_used += r.runs_used;
        setup.invocations_used += r.invocations_used;
    }
    Some(merged)
}

/// Frontier-level method fallback: the §3 switch decision is made
/// *jointly* over the merged frontier outcome (same unconverged-fraction
/// rule as [`rate_with_fallback`]), after all candidate jobs of the
/// attempt have completed.
pub(crate) fn rate_frontier_with_fallback(
    setup: &mut TuningSetup<'_>,
    pool: &Pool,
    preferred: Method,
    base: OptConfig,
    candidates: &[OptConfig],
    switches: &mut u32,
    round: usize,
) -> (RateOutcome, Method) {
    let order = setup.consult.order.clone();
    let mut try_list = vec![preferred];
    let start = order.iter().position(|&m| m == preferred).map_or(0, |i| i + 1);
    for &m in &order[start.min(order.len())..] {
        if !try_list.contains(&m) {
            try_list.push(m);
        }
    }
    let mut last: Option<RateOutcome> = None;
    for (attempt, &m) in try_list.iter().enumerate() {
        let seed = frontier_seed_base(round, attempt);
        if let Some(out) = rate_frontier_parallel(setup, pool, m, base, candidates, seed) {
            let frac_bad = out.unconverged as f64 / (candidates.len().max(1) as f64);
            if frac_bad <= SWITCH_FRACTION {
                return (out, m);
            }
            last = Some(out);
            *switches += 1;
        }
    }
    let m = *order.last().expect("RBR always applicable");
    match last {
        Some(out) => (out, m),
        None => {
            let seed = frontier_seed_base(round, try_list.len());
            let out = rate_frontier_parallel(setup, pool, m, base, candidates, seed)
                .expect("RBR always rates");
            (out, m)
        }
    }
}

/// Iterative Elimination with a parallel candidate frontier: each round
/// pre-compiles the whole frontier through the shared [`VersionCache`]
/// (in-flight de-duplicated) and rates every candidate concurrently on
/// `pool`, each candidate in its own deterministically-seeded scratch
/// [`TuningSetup`]. Results are merged in candidate order, so the
/// returned [`SearchResult`] — flags, ratings count, tuning cycles, run
/// and invocation accounting — is **bit-identical at any thread count**
/// (`Pool::with_threads(1)` is the serial reference).
///
/// Note this is a restructured search, not a drop-in replacement for
/// [`iterative_elimination`]: per-candidate decomposition changes the
/// measurement protocol (see [`rate_frontier_parallel`]), so its numbers
/// differ from the serial interleaved protocol's. The Figure 7 / Table 1
/// pipelines keep the serial protocol; this entry point is for
/// throughput-bound consumers (`BENCH_search`, future sharded drivers).
pub fn iterative_elimination_parallel(
    setup: &mut TuningSetup<'_>,
    method: Method,
    pool: &Pool,
) -> SearchResult {
    iterative_elimination_parallel_capped(setup, method, pool, MAX_IE_ROUNDS)
}

/// [`iterative_elimination_parallel`] with an explicit round cap
/// (`max_rounds ≤` [`MAX_IE_ROUNDS`] is not enforced — benches use small
/// caps to bound latency measurements).
///
/// Since the strategy extraction this is the same [`IterativeElimination`]
/// loop on a [`FrontierRater::pooled`] rater (per-candidate protocol).
/// One behavioral addition over the pre-trait code: round boundaries are
/// now cooperative cancellation points here too, matching the serial
/// entry point — output-invisible unless the job is cancelled.
pub fn iterative_elimination_parallel_capped(
    setup: &mut TuningSetup<'_>,
    method: Method,
    pool: &Pool,
    max_rounds: usize,
) -> SearchResult {
    let strategy = IterativeElimination { start: OptConfig::o3(), max_rounds };
    let mut rater = FrontierRater::pooled(setup, pool.clone(), method);
    strategy.run(&mut rater)
}

/// Exhaustive search over a small flag subset (all other flags stay on).
/// 2^k ratings — only for ablation studies on ≤ 12 flags.
pub fn exhaustive(setup: &mut TuningSetup<'_>, method: Method, flags: &[Flag]) -> SearchResult {
    assert!(flags.len() <= 12, "exhaustive search is 2^k");
    let base = OptConfig::o3();
    let mut candidates = Vec::new();
    for mask in 1u64..(1 << flags.len()) {
        let mut cfg = base;
        for (i, &f) in flags.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cfg = cfg.without(f);
            }
        }
        candidates.push(cfg);
    }
    let mut switches = 0;
    let (out, used) = rate_with_fallback(setup, method, base, &candidates, &mut switches);
    let besti = (0..candidates.len())
        .max_by(|&a, &b| out.improvements[a].total_cmp(&out.improvements[b]));
    let best = match besti {
        Some(i) if out.improvements[i] >= MIN_GAIN => candidates[i],
        _ => base,
    };
    SearchResult {
        best,
        disabled_flags: best.disabled_flags().iter().map(|f| f.name().to_string()).collect(),
        method: used,
        switches,
        ratings: candidates.len(),
        tuning_cycles: setup.tuning_cycles,
        runs: setup.runs_used,
        invocations: setup.invocations_used,
    }
}

/// Biased random search (Cooper-style): sample configurations with each
/// flag independently off with probability `p_off`, keep the best.
///
/// Ported onto the strategy layer: sampling now uses the strategy
/// doctrine's splitmix64 (`p_off` is rounded to integer per-mille) and
/// rating uses the pooled per-candidate protocol on the setup's pool —
/// so, unlike the pre-trait version, results are bit-identical at any
/// thread count and stable across dependency bumps. Numbers differ from
/// the old `StdRng`-sampled, serially-rated implementation; no golden
/// consumed those.
pub fn random_search(
    setup: &mut TuningSetup<'_>,
    method: Method,
    samples: usize,
    p_off: f64,
    seed: u64,
) -> SearchResult {
    let per_mille = ((p_off * 1000.0).round() as i64).clamp(0, 1000) as u64;
    let strategy = RandomSearchStrategy { samples, p_off_per_mille: per_mille, seed };
    let pool = setup.pool().clone();
    let mut rater = FrontierRater::pooled(setup, pool, method);
    strategy.run(&mut rater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_sim::MachineSpec;
    use peak_workloads::{art::ArtMatch, Dataset};

    #[test]
    fn ie_on_art_p4_disables_strict_aliasing() {
        // The paper's marquee result: on Pentium IV, tuning ART discovers
        // that turning off strict aliasing is a large win.
        let w = ArtMatch::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
        let result = iterative_elimination(&mut setup, Method::Rbr);
        assert!(
            result.disabled_flags.iter().any(|f| f == "strict-aliasing"),
            "IE must turn off strict aliasing on P4: {:?}",
            result.disabled_flags
        );
        assert!(result.ratings >= 38, "at least one IE round");
    }

    #[test]
    fn ie_on_art_sparc_keeps_strict_aliasing() {
        let w = ArtMatch::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let result = iterative_elimination(&mut setup, Method::Rbr);
        assert!(
            !result.disabled_flags.iter().any(|f| f == "strict-aliasing"),
            "SPARC II tolerates the pressure: {:?}",
            result.disabled_flags
        );
    }
}
