//! Serializable tuner state: the checkpointed tuning driver writes one
//! JSON document after every completed rating step, and
//! [`Tuner::resume`](crate::tuner::Tuner::resume) continues bit-identically
//! from it — the checkpoint carries everything the search depends on
//! (current base configuration, run-seed cursor, accounting, fault
//! scenario, degradation log), so a killed tuning job loses at most one
//! rating step of work.

use crate::consultant::Method;
use crate::degrade::DegradeEvent;
use peak_sim::FaultConfig;
use peak_util::{Json, ToJson};
use std::path::Path;

/// A complete snapshot of an in-progress (or finished) tuning job.
#[derive(Debug, Clone, PartialEq)]
pub struct TunerCheckpoint {
    /// Benchmark name (validated on resume).
    pub benchmark: String,
    /// Machine name (validated on resume).
    pub machine: String,
    /// Tuning dataset, `"train"` or `"ref"` (validated on resume).
    pub dataset: String,
    /// The initially preferred rating method.
    pub method: Method,
    /// Method that produced the most recent rating (the one a finished
    /// search reports).
    pub last_method: Method,
    /// Current Iterative-Elimination base configuration (flag bits).
    pub base_bits: u64,
    /// Completed IE rounds.
    pub round: usize,
    /// Candidate ratings performed so far.
    pub ratings: usize,
    /// Supervised rating calls made so far (the supervisor's counter).
    pub supervised: usize,
    /// Method downgrades so far.
    pub switches: u32,
    /// Run-seed cursor of the underlying [`TuningSetup`](crate::rating::TuningSetup).
    pub next_seed: u64,
    /// True cycles consumed by tuning runs.
    pub tuning_cycles: u64,
    /// Application runs started.
    pub runs_used: usize,
    /// TS invocations consumed.
    pub invocations_used: u64,
    /// Installed fault scenario, if any (replayed on resume).
    pub fault_config: Option<FaultConfig>,
    /// Degradation log so far.
    pub events: Vec<DegradeEvent>,
    /// Whether the search has terminated.
    pub done: bool,
}

impl ToJson for TunerCheckpoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("machine", self.machine.to_json()),
            ("dataset", self.dataset.to_json()),
            ("method", self.method.to_json()),
            ("last_method", self.last_method.to_json()),
            ("base_bits", self.base_bits.to_json()),
            ("round", self.round.to_json()),
            ("ratings", self.ratings.to_json()),
            ("supervised", self.supervised.to_json()),
            ("switches", self.switches.to_json()),
            ("next_seed", self.next_seed.to_json()),
            ("tuning_cycles", self.tuning_cycles.to_json()),
            ("runs_used", self.runs_used.to_json()),
            ("invocations_used", self.invocations_used.to_json()),
            (
                "fault_config",
                match &self.fault_config {
                    Some(c) => c.to_json(),
                    None => Json::Null,
                },
            ),
            ("events", Json::Arr(self.events.iter().map(|e| e.to_json()).collect())),
            ("done", self.done.to_json()),
        ])
    }
}

impl TunerCheckpoint {
    /// Parse the JSON written by [`ToJson`].
    pub fn from_json(j: &Json) -> Option<TunerCheckpoint> {
        let fault_config = match j.get("fault_config")? {
            Json::Null => None,
            fc => Some(FaultConfig::from_json(fc)?),
        };
        let events = j
            .get("events")?
            .as_arr()?
            .iter()
            .map(DegradeEvent::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(TunerCheckpoint {
            benchmark: j.get("benchmark")?.as_str()?.to_owned(),
            machine: j.get("machine")?.as_str()?.to_owned(),
            dataset: j.get("dataset")?.as_str()?.to_owned(),
            method: Method::from_json_name(j.get("method")?.as_str()?)?,
            last_method: Method::from_json_name(j.get("last_method")?.as_str()?)?,
            base_bits: j.get("base_bits")?.as_u64()?,
            round: j.get("round")?.as_u64()? as usize,
            ratings: j.get("ratings")?.as_u64()? as usize,
            supervised: j.get("supervised")?.as_u64()? as usize,
            switches: j.get("switches")?.as_u64()? as u32,
            next_seed: j.get("next_seed")?.as_u64()?,
            tuning_cycles: j.get("tuning_cycles")?.as_u64()?,
            runs_used: j.get("runs_used")?.as_u64()? as usize,
            invocations_used: j.get("invocations_used")?.as_u64()?,
            fault_config,
            events,
            done: j.get("done")?.as_bool()?,
        })
    }

    /// Write the checkpoint atomically *and durably*: the temp file is
    /// fsynced before the rename and the parent directory after it
    /// ([`peak_util::write_durable`]), so a kill mid-save never leaves a
    /// truncated checkpoint behind and a power loss after a successful
    /// save never rolls it back. The serve knowledge store shares the
    /// same helper for its segment files.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        peak_util::write_durable(path, self.to_json().pretty().as_bytes())
    }

    /// Load a checkpoint from disk.
    pub fn load(path: &Path) -> std::io::Result<TunerCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        let j = peak_util::from_str(&text).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path:?}: {e}"))
        })?;
        TunerCheckpoint::from_json(&j).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{path:?}: not a tuner checkpoint"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::DegradeTrigger;

    fn sample() -> TunerCheckpoint {
        TunerCheckpoint {
            benchmark: "SWIM".into(),
            machine: "SPARC-II".into(),
            dataset: "train".into(),
            method: Method::Cbr,
            last_method: Method::Mbr,
            base_bits: 0x3FF_FFFF_FFFF,
            round: 3,
            ratings: 114,
            supervised: 3,
            switches: 1,
            next_seed: 42,
            tuning_cycles: 123_456_789,
            runs_used: 17,
            invocations_used: 5_000,
            fault_config: Some(FaultConfig::none(9)),
            events: vec![DegradeEvent {
                rating: 1,
                from: Method::Cbr,
                to: Method::Mbr,
                trigger: DegradeTrigger::Unconverged,
                retries: 2,
            }],
            done: false,
        }
    }

    #[test]
    fn json_roundtrip() {
        let cp = sample();
        let text = cp.to_json().pretty();
        let back = TunerCheckpoint::from_json(&peak_util::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn save_load_roundtrip() {
        let cp = sample();
        let dir = std::env::temp_dir().join("peak-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        cp.save(&path).unwrap();
        let back = TunerCheckpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn none_fault_config_roundtrips() {
        let mut cp = sample();
        cp.fault_config = None;
        let text = cp.to_json().pretty();
        let back = TunerCheckpoint::from_json(&peak_util::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, cp);
    }
}
