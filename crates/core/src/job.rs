//! The tuning-job API: one self-contained, deterministic unit of tuning
//! work (spec + machine + budget → [`TuneReport`]), extracted from the
//! table1/figure7 drivers so the serve daemon, the storm harness, and
//! the offline bins all run the *same* code path.
//!
//! Robustness contract:
//!
//! * **Panic isolation.** [`run_tuning_job`] executes the whole job
//!   under `catch_unwind`; any panic — a workload bug, an injected
//!   fault, a poisoned invariant — comes back as a structured
//!   [`JobError::Panicked`], never unwinds into the caller's loop.
//! * **Cooperative cancellation.** A [`CancelToken`] is threaded through
//!   the [`TuningSetup`](crate::rating::TuningSetup): every application-
//!   run start and IE round boundary checks it and unwinds with the
//!   [`Cancelled`] sentinel, which the job boundary maps to
//!   [`JobError::Cancelled`]. Deadline enforcement is just "arm a timer
//!   that fires the token" (see `peak-serve`'s supervisor).
//! * **Determinism.** With a token that never fires and the default O3
//!   start, a job's [`TuneReport`] is bit-identical to
//!   [`tune_traced_pooled`](crate::tuner::tune_traced_pooled) — the
//!   serve_storm harness pins this down.

use crate::consultant::Method;
use crate::sched::Pool;
use crate::tuner::{tune_with_options, TuneOptions, TuneReport};
use peak_obs::Tracer;
use peak_sim::MachineSpec;
use peak_util::{Json, ToJson};
use peak_workloads::Dataset;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Panic payload used for cooperative cancellation: the tuning loop
/// unwinds with this sentinel (via [`CancelToken::check`]) and the job
/// boundary converts it to [`JobError::Cancelled`] instead of treating
/// it as a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

/// Shared cancellation flag. Clones observe the same flag; firing it is
/// sticky. Cancellation is *cooperative*: nothing stops until the
/// running job reaches its next check point (an application-run start or
/// an IE round boundary).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// New un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire the token: every holder's next [`CancelToken::check`]
    /// unwinds.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Cancellation point: unwind with the [`Cancelled`] sentinel when
    /// fired, else no-op.
    pub fn check(&self) {
        if self.is_cancelled() {
            std::panic::panic_any(Cancelled);
        }
    }
}

/// Specification of one tuning job — everything needed to reproduce the
/// result offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningJobSpec {
    /// Benchmark name (case-insensitive; must resolve via
    /// [`peak_workloads::workload_by_name`]).
    pub benchmark: String,
    /// Machine name (`"SPARC-II"` or `"Pentium-IV"`, case-insensitive;
    /// `"sparc"`/`"p4"` shorthands accepted).
    pub machine: String,
    /// Rating method; `None` lets the consultant pick (its preferred
    /// method for this TS).
    pub method: Option<Method>,
    /// Tuning dataset (production evaluation always runs on ref).
    pub dataset: Dataset,
    /// IE start configuration (flag bits); `None` starts from O3. Set by
    /// the serve daemon's knowledge-store warm start.
    pub start_bits: Option<u64>,
    /// Search strategy name (resolved via
    /// [`strategy_kind_by_name`](crate::strategy::strategy_kind_by_name)).
    /// `None` runs the legacy serial IE — the goldens-compatible path;
    /// note that even explicit `"ie"` selects the restructured
    /// per-candidate parallel protocol, whose numbers differ from the
    /// serial one's.
    pub strategy: Option<String>,
}

impl TuningJobSpec {
    /// Job for `benchmark` on `machine` with the consultant-preferred
    /// method, tuning on train, starting from O3.
    pub fn new(benchmark: &str, machine: &str) -> Self {
        TuningJobSpec {
            benchmark: benchmark.to_owned(),
            machine: machine.to_owned(),
            method: None,
            dataset: Dataset::Train,
            start_bits: None,
            strategy: None,
        }
    }
}

impl ToJson for TuningJobSpec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("machine", self.machine.to_json()),
            ("method", self.method.map(|m| m.name().to_owned()).to_json()),
            (
                "dataset",
                match self.dataset {
                    Dataset::Train => "train",
                    Dataset::Ref => "ref",
                }
                .to_json(),
            ),
            ("start_bits", self.start_bits.to_json()),
            ("strategy", self.strategy.clone().to_json()),
        ])
    }
}

/// Structured job failure — the serve daemon's error taxonomy at the
/// core layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// `benchmark` did not resolve to a workload.
    UnknownBenchmark(String),
    /// `machine` did not resolve to a machine spec.
    UnknownMachine(String),
    /// `method` string did not resolve to a rating method.
    UnknownMethod(String),
    /// `strategy` string did not resolve to a search strategy.
    UnknownStrategy(String),
    /// The cancel token fired mid-job (deadline or shutdown).
    Cancelled,
    /// The job panicked; the payload's message, best-effort.
    Panicked(String),
}

impl JobError {
    /// Stable machine-readable kind string (serve protocol `error` field).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::UnknownBenchmark(_) => "unknown_benchmark",
            JobError::UnknownMachine(_) => "unknown_machine",
            JobError::UnknownMethod(_) => "unknown_method",
            JobError::UnknownStrategy(_) => "unknown_strategy",
            JobError::Cancelled => "cancelled",
            JobError::Panicked(_) => "panicked",
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::UnknownBenchmark(b) => write!(f, "unknown benchmark {b:?}"),
            JobError::UnknownMachine(m) => write!(f, "unknown machine {m:?}"),
            JobError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            JobError::UnknownStrategy(s) => write!(f, "unknown strategy {s:?}"),
            JobError::Cancelled => write!(f, "cancelled (deadline or shutdown)"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Resolve a machine name (the [`MachineKind::name`](peak_sim::MachineKind)
/// strings, case-insensitive, plus `"sparc"`/`"p4"` shorthands).
pub fn machine_spec_by_name(name: &str) -> Option<MachineSpec> {
    match name.to_ascii_lowercase().as_str() {
        "sparc-ii" | "sparc" | "sparcii" => Some(MachineSpec::sparc_ii()),
        "pentium-iv" | "p4" | "pentiumiv" | "pentium" => Some(MachineSpec::pentium_iv()),
        _ => None,
    }
}

/// Resolve a rating method name (case-insensitive `CBR`/`MBR`/`RBR`/
/// `AVG`/`WHL`).
pub fn method_by_name(name: &str) -> Option<Method> {
    match name.to_ascii_lowercase().as_str() {
        "cbr" => Some(Method::Cbr),
        "mbr" => Some(Method::Mbr),
        "rbr" => Some(Method::Rbr),
        "avg" => Some(Method::Avg),
        "whl" => Some(Method::Whl),
        _ => None,
    }
}

/// Run one tuning job to completion under panic isolation.
///
/// Spec errors (unknown benchmark/machine) return structured errors
/// before any tuning work. The tuning itself runs under `catch_unwind`:
/// the [`Cancelled`] sentinel maps to [`JobError::Cancelled`], any other
/// panic to [`JobError::Panicked`]. The pool stays usable afterwards
/// (`peak-core::sched` locks are poison-tolerant and its token budget is
/// released on unwind).
pub fn run_tuning_job(
    spec: &TuningJobSpec,
    tracer: Tracer,
    pool: &Pool,
    cancel: CancelToken,
) -> Result<TuneReport, JobError> {
    let workload = peak_workloads::workload_by_name(&spec.benchmark)
        .ok_or_else(|| JobError::UnknownBenchmark(spec.benchmark.clone()))?;
    let machine = machine_spec_by_name(&spec.machine)
        .ok_or_else(|| JobError::UnknownMachine(spec.machine.clone()))?;
    let method = match spec.method {
        Some(m) => m,
        // Consultant picks: its order always starts with the preferred
        // applicable method (RBR is universally applicable).
        None => crate::consultant::consult(workload.as_ref(), &machine).order[0],
    };
    let strategy = match &spec.strategy {
        None => None,
        Some(name) => Some(
            crate::strategy::strategy_kind_by_name(name)
                .ok_or_else(|| JobError::UnknownStrategy(name.clone()))?,
        ),
    };
    let opts = TuneOptions {
        start: spec.start_bits.map(peak_opt::OptConfig::from_bits),
        cancel,
        strategy,
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        tune_with_options(workload.as_ref(), &machine, method, spec.dataset, tracer, pool, &opts)
    }));
    match result {
        Ok(report) => Ok(report),
        Err(payload) => Err(classify_panic(payload)),
    }
}

/// Map a caught panic payload to a [`JobError`]: the [`Cancelled`]
/// sentinel is a deadline, everything else a crash (message extracted
/// when the payload is a string).
pub fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> JobError {
    if payload.is::<Cancelled>() {
        return JobError::Cancelled;
    }
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    JobError::Panicked(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled() && clone.is_cancelled());
        let caught = catch_unwind(AssertUnwindSafe(|| t.check()));
        assert!(matches!(classify_panic(caught.unwrap_err()), JobError::Cancelled));
    }

    #[test]
    fn spec_errors_are_structured() {
        let pool = Pool::with_threads(1);
        let bad_bench = TuningJobSpec::new("NOPE", "SPARC-II");
        assert_eq!(
            run_tuning_job(&bad_bench, Tracer::disabled(), &pool, CancelToken::new()).unwrap_err(),
            JobError::UnknownBenchmark("NOPE".into())
        );
        let bad_machine = TuningJobSpec::new("SWIM", "vax");
        assert_eq!(
            run_tuning_job(&bad_machine, Tracer::disabled(), &pool, CancelToken::new())
                .unwrap_err(),
            JobError::UnknownMachine("vax".into())
        );
    }

    #[test]
    fn pre_fired_token_cancels_without_tuning_work() {
        let pool = Pool::with_threads(1);
        let cancel = CancelToken::new();
        cancel.cancel();
        let spec = TuningJobSpec::new("SWIM", "SPARC-II");
        let got = run_tuning_job(&spec, Tracer::disabled(), &pool, cancel);
        assert_eq!(got.unwrap_err(), JobError::Cancelled);
    }

    #[test]
    fn machine_and_method_lookup() {
        assert!(machine_spec_by_name("sparc").is_some());
        assert!(machine_spec_by_name("Pentium-IV").is_some());
        assert!(machine_spec_by_name("riscv").is_none());
        assert_eq!(method_by_name("cbr"), Some(Method::Cbr));
        assert_eq!(method_by_name("WHL"), Some(Method::Whl));
        assert_eq!(method_by_name("best"), None);
    }

    #[test]
    fn classify_extracts_string_payloads() {
        let p = catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(classify_panic(p), JobError::Panicked("boom 7".into()));
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(classify_panic(p), JobError::Panicked("non-string panic payload".into()));
    }
}
