//! Rating statistics: EVAL/VAR windows and measurement-outlier
//! elimination (paper §3).
//!
//! "The tuning engine also identifies and eliminates measurement
//! outliers, which are far away from the average. Such data may result
//! from system perturbations, such as interrupts."

/// Basic sample statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Samples used (after any trimming).
    pub n: usize,
}

impl Summary {
    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Coefficient of variation (σ/μ) — the VAR the window controller
    /// compares against its threshold; dimensionless so one threshold
    /// works across TSs of very different magnitude.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            return f64::INFINITY;
        }
        self.std_dev() / self.mean.abs()
    }
}

/// Mean/variance of a slice.
pub fn summarize(xs: &[f64]) -> Summary {
    let n = xs.len();
    if n == 0 {
        return Summary { mean: 0.0, variance: 0.0, n: 0 };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let variance = if n > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Summary { mean, variance, n }
}

/// Remove outliers: samples farther than `k` MADs from the median
/// (median absolute deviation is robust against the very outliers being
/// removed, unlike a mean/σ filter). Returns the retained samples.
pub fn trim_outliers(xs: &[f64], k: f64) -> Vec<f64> {
    if xs.len() < 4 {
        return xs.to_vec();
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f64> = xs.iter().map(|x| (x - median).abs()).collect();
    devs.sort_by(|a, b| a.total_cmp(b));
    let mad = devs[devs.len() / 2].max(median.abs() * 1e-6).max(f64::EPSILON);
    xs.iter()
        .copied()
        .filter(|x| (x - median).abs() <= k * mad)
        .collect()
}

/// Default MAD multiplier (≈ 5σ for Gaussian data).
pub const OUTLIER_K: f64 = 7.5;

/// Summary after outlier elimination.
pub fn robust_summary(xs: &[f64]) -> Summary {
    summarize(&trim_outliers(xs, OUTLIER_K))
}

/// An EVAL/VAR accumulation window (paper §3): collects samples until the
/// coefficient of variation of the *mean estimate* falls below a
/// threshold, then reports a consistent rating.
#[derive(Debug, Clone)]
pub struct Window {
    samples: Vec<f64>,
    /// Minimum samples before a rating may be produced.
    pub min_samples: usize,
    /// Maximum samples before giving up (method switch trigger).
    pub max_samples: usize,
    /// CV-of-mean threshold for convergence.
    pub var_threshold: f64,
}

impl Window {
    /// Standard window: w≥10, convergence when the standard error of the
    /// mean drops under 1% of the mean.
    pub fn new() -> Self {
        Window { samples: Vec::new(), min_samples: 10, max_samples: 400, var_threshold: 0.01 }
    }

    /// Window with custom bounds.
    pub fn with(min_samples: usize, max_samples: usize, var_threshold: f64) -> Self {
        Window { samples: Vec::new(), min_samples, max_samples, var_threshold }
    }

    /// Add a measurement.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Samples collected so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Current robust summary.
    pub fn summary(&self) -> Summary {
        robust_summary(&self.samples)
    }

    /// Samples rejected by the outlier filter.
    pub fn rejected(&self) -> usize {
        self.samples.len() - self.summary().n
    }

    /// CV of the *mean estimate* (standard error of the mean over |mean|)
    /// — the VAR quantity convergence is judged on. Infinite when no
    /// samples survive trimming or the mean is zero, so an
    /// exhausted-but-unconverged window always carries a meaningful
    /// (possibly infinite) value into `RateOutcome::vars` instead of
    /// vanishing into the `unconverged` count alone.
    pub fn mean_cv(&self) -> f64 {
        let s = self.summary();
        if s.n == 0 || s.mean.abs() < f64::EPSILON {
            return f64::INFINITY;
        }
        let sem = s.std_dev() / (s.n as f64).sqrt();
        sem / s.mean.abs()
    }

    /// Converged? (standard error of mean below threshold)
    pub fn converged(&self) -> bool {
        if self.samples.len() < self.min_samples {
            return false;
        }
        let s = self.summary();
        if s.n < self.min_samples.min(4) {
            return false;
        }
        self.mean_cv() < self.var_threshold
    }

    /// Exhausted without convergence? (the §3 method-switch trigger)
    pub fn exhausted(&self) -> bool {
        self.samples.len() >= self.max_samples && !self.converged()
    }
}

impl Default for Window {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.n, 4);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn outliers_removed_by_mad_filter() {
        // 20 clean samples around 100 plus two interrupt spikes.
        let mut xs: Vec<f64> = (0..20).map(|i| 100.0 + (i % 5) as f64).collect();
        xs.push(60_000.0);
        xs.push(45_000.0);
        let clean = trim_outliers(&xs, OUTLIER_K);
        assert_eq!(clean.len(), 20);
        assert!(clean.iter().all(|&x| x < 200.0));
        let s = robust_summary(&xs);
        assert!(s.mean < 110.0, "spikes excluded from the mean: {}", s.mean);
    }

    #[test]
    fn clean_data_untouched() {
        let xs: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
        assert_eq!(trim_outliers(&xs, OUTLIER_K).len(), xs.len());
    }

    #[test]
    fn window_converges_on_consistent_data() {
        let mut w = Window::new();
        for i in 0..40 {
            w.push(1000.0 + (i % 3) as f64);
        }
        assert!(w.converged());
        assert!(!w.exhausted());
    }

    #[test]
    fn window_does_not_converge_prematurely() {
        let mut w = Window::new();
        for _ in 0..5 {
            w.push(1000.0);
        }
        assert!(!w.converged(), "below min_samples");
    }

    #[test]
    fn noisy_window_exhausts() {
        let mut w = Window::with(10, 50, 0.0001);
        // Alternating wildly: cv stays large.
        for i in 0..50 {
            w.push(if i % 2 == 0 { 100.0 } else { 300.0 });
        }
        assert!(!w.converged());
        assert!(w.exhausted());
    }

    #[test]
    fn cv_of_zero_mean_is_infinite() {
        let s = summarize(&[-1.0, 1.0]);
        assert!(s.cv().is_infinite());
    }

    #[test]
    fn exhausted_window_reports_finite_mean_cv() {
        let mut w = Window::with(10, 50, 0.0001);
        for i in 0..50 {
            w.push(if i % 2 == 0 { 100.0 } else { 300.0 });
        }
        assert!(w.exhausted());
        let cv = w.mean_cv();
        assert!(cv.is_finite() && cv > w.var_threshold, "cv={cv}");
    }

    #[test]
    fn empty_window_mean_cv_is_infinite() {
        assert!(Window::new().mean_cv().is_infinite());
    }

    #[test]
    fn window_counts_rejected_outliers() {
        let mut w = Window::new();
        for i in 0..30 {
            w.push(1000.0 + (i % 3) as f64);
        }
        assert_eq!(w.rejected(), 0);
        w.push(250_000.0);
        assert_eq!(w.rejected(), 1);
    }
}
