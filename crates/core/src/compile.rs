//! Validated compilation for tuner paths.
//!
//! Every compile the tuning system performs (rating, frontier warm-up,
//! MBR instrumentation, consistency studies) funnels through
//! [`compile_validated`], which applies the process-wide
//! [`ValidationLevel`]: [`peak_opt::default_level`] — `PEAK_VALIDATE`
//! override, else structural verification in debug builds and nothing in
//! release — unless overridden with [`set_validation_level`].
//!
//! A validation failure must not crash a long tuning run: the offending
//! configuration is *degraded*, not fatal. The compile falls back to the
//! known-correct `-O0` pipeline (labeled with the requested
//! configuration, so rating charges the honest — slow — cost to that
//! flag set and the search walks away from it), and the failure is
//! recorded in a process-wide incident registry that drivers and tests
//! can inspect or drain.

use peak_ir::{FuncId, Program};
use peak_opt::{CompiledVersion, OptConfig, ValidationFailure, ValidationLevel};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// One degraded compile: the validation failure and what was substituted.
#[derive(Debug, Clone)]
pub struct ValidationIncident {
    /// The pass-level failure reported by the oracle/verifier.
    pub failure: ValidationFailure,
    /// Flag bits of the configuration that was degraded to `-O0`.
    pub config_bits: u64,
}

/// Process-wide validation-level override: 0 = unset (use
/// [`peak_opt::default_level`]), 1..=3 = Off/Structural/Full.
static LEVEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn incident_log() -> &'static Mutex<Vec<ValidationIncident>> {
    static LOG: OnceLock<Mutex<Vec<ValidationIncident>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Override (or with `None`, restore) the process-wide validation level
/// used by [`compile_validated`]. Tests and CI drivers use this to force
/// full oracle checking regardless of build profile.
pub fn set_validation_level(level: Option<ValidationLevel>) {
    let enc = match level {
        None => 0,
        Some(ValidationLevel::Off) => 1,
        Some(ValidationLevel::Structural) => 2,
        Some(ValidationLevel::Full) => 3,
    };
    LEVEL_OVERRIDE.store(enc, Ordering::SeqCst);
}

/// The validation level tuner-path compiles currently run at.
pub fn validation_level() -> ValidationLevel {
    match LEVEL_OVERRIDE.load(Ordering::SeqCst) {
        1 => ValidationLevel::Off,
        2 => ValidationLevel::Structural,
        3 => ValidationLevel::Full,
        _ => peak_opt::default_level(),
    }
}

/// Number of validation incidents recorded so far.
pub fn incident_count() -> usize {
    incident_log().lock().expect("incident log lock").len()
}

/// Snapshot of the recorded incidents.
pub fn incidents() -> Vec<ValidationIncident> {
    incident_log().lock().expect("incident log lock").clone()
}

/// Drain the incident registry (tests; driver end-of-run reporting).
pub fn take_incidents() -> Vec<ValidationIncident> {
    std::mem::take(&mut *incident_log().lock().expect("incident log lock"))
}

/// Record an externally-detected validation incident. Public so drivers
/// that call [`peak_opt::optimize_checked`] directly (e.g. the fuzz
/// fleet) can share the registry.
pub fn record_incident(failure: ValidationFailure, config_bits: u64) {
    eprintln!("warning: translation validation failed (degrading to -O0): {failure}");
    incident_log()
        .lock()
        .expect("incident log lock")
        .push(ValidationIncident { failure, config_bits });
}

/// Compile `func` under `cfg` at the process-wide validation level.
///
/// On validation failure the tuner must keep running: the result is the
/// `-O0` compile of the same program relabeled with the requested
/// configuration — semantically correct, honestly slow, and charged to
/// the flag set that miscompiled, so rating steers the search away from
/// it instead of silently trusting a broken binary (the exact failure
/// mode the rating methods exist to avoid).
pub fn compile_validated(prog: &Program, func: FuncId, cfg: &OptConfig) -> CompiledVersion {
    match validation_level() {
        ValidationLevel::Off => peak_opt::optimize(prog, func, cfg),
        level => match peak_opt::optimize_checked(prog, func, cfg, level) {
            Ok(v) => v,
            Err(failure) => {
                record_incident(failure, cfg.bits());
                let mut v = peak_opt::optimize(prog, func, &OptConfig::o0());
                v.config = *cfg;
                v
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::swim::SwimCalc3;
    use peak_workloads::Workload;

    #[test]
    fn validated_compile_matches_plain_compile() {
        let w = SwimCalc3::new();
        set_validation_level(Some(ValidationLevel::Full));
        let checked = compile_validated(w.program(), w.ts(), &OptConfig::o3());
        set_validation_level(None);
        let plain = peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3());
        assert_eq!(
            checked.program.func(checked.func),
            plain.program.func(plain.func),
            "validation must be observation-only"
        );
        assert_eq!(checked.code_size, plain.code_size);
    }

    #[test]
    fn incident_registry_records_and_drains() {
        let before = incident_count();
        let failure = ValidationFailure {
            pass: peak_opt::PassId::Dse,
            func: "synthetic".into(),
            config: OptConfig::o3(),
            kind: peak_opt::FailureKind::Semantic {
                input: 0,
                detail: "synthetic incident for registry test".into(),
            },
        };
        record_incident(failure.clone(), OptConfig::o3().bits());
        assert_eq!(incident_count(), before + 1);
        let all = incidents();
        assert!(all
            .iter()
            .any(|i| i.failure == failure && i.config_bits == OptConfig::o3().bits()));
        // Drain leaves the registry empty for later tests in this process.
        let drained = take_incidents();
        assert!(drained.len() > before);
        assert_eq!(incident_count(), 0);
    }

    #[test]
    fn level_override_wins_over_default() {
        set_validation_level(Some(ValidationLevel::Off));
        assert_eq!(validation_level(), ValidationLevel::Off);
        set_validation_level(Some(ValidationLevel::Full));
        assert_eq!(validation_level(), ValidationLevel::Full);
        set_validation_level(None);
        assert_eq!(validation_level(), peak_opt::default_level());
    }
}
