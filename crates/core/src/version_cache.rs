//! Process-wide compile/prepare cache for tuning-section versions.
//!
//! Every layer of the tuning pipeline — rating calls, the checkpointed
//! [`Tuner`](crate::Tuner), the degradation cascade, the consultant's MBR
//! profile, the Table 1 collectors, production measurement — needs a
//! [`PreparedVersion`] for some `(workload, config, machine)` triple, and
//! until now each call site ran `peak_opt::optimize` +
//! `PreparedVersion::prepare` from scratch. Both are pure functions of
//! their inputs: the workload's program is a fixed artifact, the
//! optimization pipeline is deterministic, and register allocation
//! depends only on the machine spec. So one shared cache keyed by
//! (workload, TS, instrumented?, config bits, machine kind) can hand out
//! `Arc<PreparedVersion>` clones forever without changing a single
//! simulated cycle — the "never compile the same version twice"
//! amortization that FOGA-style flag-evaluation caches and the Collective
//! Tuning Initiative build their tuning-time wins on.
//!
//! The cache is process-wide ([`VersionCache::global`]) because the
//! experiment drivers (`table1`, `figure7`) fan benchmarks out across a
//! shared [`Pool`] and repeat configurations across cells, rating
//! retries, the CBR→MBR→RBR→WHL cascade, and checkpoint resume.
//! Compilation happens outside the map lock behind an **in-flight
//! gate**: the first thread to miss a key installs a building slot and
//! compiles; concurrent requesters of the same key block on the gate and
//! share the one artifact, so racing workers never compile the same
//! config twice (the `compiles` counter is exact). [`VersionCache::warm`]
//! exposes that as a bulk pre-compilation API: the search layer hands a
//! round's whole candidate frontier to the pool and rating then runs
//! against a hot cache. Entries are never evicted — the whole 38-flag
//! search space for every Table 1 workload is a few hundred small IR
//! programs — but [`VersionCache::clear`] exists for long-lived
//! embedders.

use crate::sched::Pool;
use peak_opt::{CompiledVersion, OptConfig};
use peak_sim::{ExecTier, MachineKind, MachineSpec, PreparedVersion};
use peak_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Identity of one compiled + prepared version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionKey {
    /// Benchmark name (workloads are fixed artifacts, so the name
    /// identifies the program).
    pub workload: &'static str,
    /// Tuning-section name.
    pub ts: &'static str,
    /// Whether the source is the MBR-instrumented variant of the TS
    /// (deterministically derived from the workload, so the flag
    /// identifies it).
    pub instrumented: bool,
    /// Optimization configuration bits ([`OptConfig::bits`]).
    pub config_bits: u64,
    /// Target machine (register allocation and pre-decoding depend on it).
    pub machine: MachineKind,
    /// Execution tier the version is requested for. The prepared
    /// artifact itself is tier-independent, but the lazily-attached
    /// native backend (and its remembered refusal) is per-artifact
    /// state: sharing one artifact across tiers would let a jit-tier
    /// consumer's deopt memo leak into predecoded-tier accounting, and
    /// tier-forced A/B drivers (`hotpath --jit`) need genuinely
    /// independent entries.
    pub tier: ExecTier,
}

impl VersionKey {
    /// Key for the plain (uninstrumented) TS of `workload`, under the
    /// process default execution tier (`PEAK_TIER`).
    pub fn plain(workload: &dyn Workload, cfg: OptConfig, machine: MachineKind) -> Self {
        VersionKey {
            workload: workload.name(),
            ts: workload.ts_name(),
            instrumented: false,
            config_bits: cfg.bits(),
            machine,
            tier: ExecTier::from_env(),
        }
    }

    /// Key for the MBR-instrumented TS of `workload`.
    pub fn instrumented(workload: &dyn Workload, cfg: OptConfig, machine: MachineKind) -> Self {
        VersionKey { instrumented: true, ..Self::plain(workload, cfg, machine) }
    }

    /// The same key pinned to an explicit execution tier (tier-forced
    /// drivers and A/B benchmarks).
    pub fn with_tier(self, tier: ExecTier) -> Self {
        VersionKey { tier, ..self }
    }
}

/// Counter snapshot of a cache (monotonic; taken with
/// [`VersionCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that did not find a ready version (each triggers or waits
    /// for exactly one compile).
    pub misses: u64,
    /// Compile+prepare executions actually performed. With the in-flight
    /// gate this counts *unique work*: `misses - compiles` lookups were
    /// coalesced onto a concurrent compile of the same key.
    pub compiles: u64,
    /// Missing lookups that blocked on another thread's in-flight
    /// compile instead of compiling themselves.
    pub coalesced: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            compiles: self.compiles.saturating_sub(earlier.compiles),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
        }
    }

    /// The one human-readable summary line every consumer prints
    /// (figure7's stderr report, `peak_serve stats`), so the format
    /// lives in exactly one place. `entries` is
    /// [`VersionCache::len`] at render time.
    pub fn render(&self, entries: usize) -> String {
        format!(
            "version cache: {} hits / {} lookups ({:.0}% hit rate, {} entries)",
            self.hits,
            self.hits + self.misses,
            self.hit_rate() * 100.0,
            entries,
        )
    }
}

/// In-flight gate: the slot a missing key holds while its first
/// requester compiles. Waiters block on the condvar; on panic the
/// builder marks the gate failed and waiters retry the full lookup.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

enum GateState {
    Pending,
    Ready(Arc<PreparedVersion>),
    Failed,
}

enum Slot {
    Ready(Arc<PreparedVersion>),
    Building(Arc<Gate>),
}

/// Removes the building slot and fails the gate if the compile panics,
/// so waiters retry instead of hanging.
struct BuildGuard<'a> {
    cache: &'a VersionCache,
    key: VersionKey,
    gate: Arc<Gate>,
    done: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        self.cache.map.lock().expect("version cache lock").remove(&self.key);
        *self.gate.state.lock().expect("gate lock") = GateState::Failed;
        self.gate.cv.notify_all();
    }
}

/// A compile/prepare cache: `VersionKey` → `Arc<PreparedVersion>`, with
/// in-flight de-duplication of concurrent compiles.
#[derive(Default)]
pub struct VersionCache {
    map: Mutex<HashMap<VersionKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for VersionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionCache").field("stats", &self.stats()).finish()
    }
}

impl VersionCache {
    /// Fresh empty cache (tests; everything else uses
    /// [`VersionCache::global`]).
    pub fn new() -> Self {
        VersionCache::default()
    }

    /// The process-wide cache shared by every tuning layer.
    pub fn global() -> &'static VersionCache {
        static GLOBAL: OnceLock<VersionCache> = OnceLock::new();
        GLOBAL.get_or_init(VersionCache::new)
    }

    /// Return the prepared version for `key`, compiling it with `compile`
    /// and [`PreparedVersion::prepare`] on first use. `spec.kind` must
    /// match `key.machine` — the prepared artifact is machine-specific.
    ///
    /// Concurrent calls with the same key compile **once**: the first
    /// requester compiles outside the map lock while later ones wait on
    /// the in-flight gate and share the artifact.
    pub fn get_or_prepare(
        &self,
        key: VersionKey,
        spec: &MachineSpec,
        compile: impl FnOnce() -> CompiledVersion,
    ) -> Arc<PreparedVersion> {
        debug_assert_eq!(spec.kind, key.machine, "key/spec machine mismatch");
        let mut compile = Some(compile);
        loop {
            let found: Option<Result<Arc<PreparedVersion>, Arc<Gate>>> = {
                let mut map = self.map.lock().expect("version cache lock");
                let probe = match map.get(&key) {
                    Some(Slot::Ready(v)) => Some(Ok(v.clone())),
                    Some(Slot::Building(gate)) => Some(Err(gate.clone())),
                    None => None,
                };
                if probe.is_none() {
                    let gate = Arc::new(Gate {
                        state: Mutex::new(GateState::Pending),
                        cv: Condvar::new(),
                    });
                    map.insert(key.clone(), Slot::Building(gate.clone()));
                    drop(map);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return self.build(key, spec, gate, compile.take().expect("compile fn"));
                }
                probe
            };
            let gate = match found.expect("probe populated") {
                Ok(v) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return v;
                }
                Err(gate) => gate,
            };
            // Someone else is compiling this key: wait on the gate.
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut state = gate.state.lock().expect("gate lock");
            loop {
                match &*state {
                    GateState::Ready(v) => return v.clone(),
                    GateState::Failed => break, // builder died: retry the lookup
                    GateState::Pending => {
                        state = gate.cv.wait(state).expect("gate wait");
                    }
                }
            }
        }
    }

    fn build(
        &self,
        key: VersionKey,
        spec: &MachineSpec,
        gate: Arc<Gate>,
        compile: impl FnOnce() -> CompiledVersion,
    ) -> Arc<PreparedVersion> {
        let mut guard = BuildGuard { cache: self, key, gate, done: false };
        // Compile outside the map lock: compilation dominates, and the
        // building slot keeps racing requesters parked on the gate.
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let pv = Arc::new(PreparedVersion::prepare(compile(), spec));
        self.map
            .lock()
            .expect("version cache lock")
            .insert(guard.key.clone(), Slot::Ready(pv.clone()));
        *guard.gate.state.lock().expect("gate lock") = GateState::Ready(pv.clone());
        guard.gate.cv.notify_all();
        guard.done = true;
        pv
    }

    /// Shorthand: compile (or fetch) the plain TS of `workload` under
    /// `cfg` for `spec`.
    pub fn prepare_workload(
        &self,
        workload: &dyn Workload,
        spec: &MachineSpec,
        cfg: OptConfig,
    ) -> Arc<PreparedVersion> {
        self.get_or_prepare(VersionKey::plain(workload, cfg, spec.kind), spec, || {
            crate::compile::compile_validated(workload.program(), workload.ts(), &cfg)
        })
    }

    /// Bulk pre-compilation: push every `(key, compile)` request through
    /// the cache on `pool`, in parallel. Purely a warm-up — results land
    /// in the cache (shared, deduplicated in flight) and later
    /// [`VersionCache::get_or_prepare`] calls hit. Safe to call with
    /// keys that are already cached (they count as hits and cost one map
    /// probe).
    pub fn warm<F>(&self, pool: &Pool, spec: &MachineSpec, requests: Vec<(VersionKey, F)>)
    where
        F: FnOnce() -> CompiledVersion + Send,
    {
        let slots: Vec<Mutex<Option<(VersionKey, F)>>> =
            requests.into_iter().map(|r| Mutex::new(Some(r))).collect();
        pool.map(slots.len(), |i| {
            let (key, compile) =
                slots[i].lock().expect("warm slot").take().expect("warm request taken once");
            let _ = self.get_or_prepare(key, spec, compile);
        });
    }

    /// Cached versions currently held (ready or in flight).
    pub fn len(&self) -> usize {
        self.map.lock().expect("version cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss/compile counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Drop every cached version (counters keep running). In-flight
    /// builds complete against their gates and re-insert themselves.
    pub fn clear(&self) {
        self.map.lock().expect("version cache lock").clear();
    }

    /// Mirror this cache's counters into the global
    /// [`MetricsRegistry`](peak_obs::MetricsRegistry) as
    /// `core.version_cache.*`. The cache keeps its own atomics hot-path
    /// side; this sync-on-read (called by whoever is about to snapshot —
    /// the serve daemon's stats handler) advances the registry counters
    /// by the accumulated delta, so the exported series stays monotonic
    /// without double-counting.
    pub fn publish_metrics(&self) {
        use peak_obs::metrics::MetricsRegistry;
        let r = MetricsRegistry::global();
        let s = self.stats();
        let sync = |name: &str, help: &str, now: u64| {
            let c = r.counter(name, help);
            c.add(now.saturating_sub(c.get()));
        };
        sync("core.version_cache.hits", "Version-cache lookups served from cache", s.hits);
        sync("core.version_cache.misses", "Version-cache lookups that compiled or waited", s.misses);
        sync("core.version_cache.compiles", "Unique compile+prepare executions", s.compiles);
        sync(
            "core.version_cache.coalesced",
            "Missing lookups coalesced onto an in-flight compile",
            s.coalesced,
        );
        r.gauge("core.version_cache.entries", "Prepared versions currently cached")
            .set(self.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::swim::SwimCalc3;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let a = cache.prepare_workload(&w, &spec, OptConfig::o3());
        let b = cache.prepare_workload(&w, &spec, OptConfig::o3());
        assert!(Arc::ptr_eq(&a, &b), "same key shares one artifact");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!((s.compiles, s.coalesced), (1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_separate_machine_config_and_instrumentation() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let sparc = MachineSpec::sparc_ii();
        let p4 = MachineSpec::pentium_iv();
        let _ = cache.prepare_workload(&w, &sparc, OptConfig::o3());
        let _ = cache.prepare_workload(&w, &p4, OptConfig::o3());
        let _ = cache.prepare_workload(&w, &sparc, OptConfig::o0());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().compiles, 3);
        assert_ne!(
            VersionKey::plain(&w, OptConfig::o3(), MachineKind::SparcII),
            VersionKey::instrumented(&w, OptConfig::o3(), MachineKind::SparcII),
        );
    }

    /// Regression: keys must separate execution tiers — the native
    /// backend (and its remembered refusal) is per-artifact state, so a
    /// jit-tier consumer must not share an artifact with a
    /// predecoded-tier one.
    #[test]
    fn keys_separate_execution_tier() {
        use peak_sim::ExecTier;
        let base = VersionKey::plain(&SwimCalc3::new(), OptConfig::o3(), MachineKind::SparcII);
        let jit = base.clone().with_tier(ExecTier::Jit);
        let interp = base.clone().with_tier(ExecTier::Interp);
        let pre = base.clone().with_tier(ExecTier::Predecoded);
        assert_ne!(jit, pre);
        assert_ne!(jit, interp);
        assert_ne!(interp, pre);

        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        for tier in ExecTier::ALL {
            let key = VersionKey::plain(&w, OptConfig::o3(), spec.kind).with_tier(tier);
            let _ = cache.get_or_prepare(key, &spec, || {
                peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3())
            });
        }
        assert_eq!(cache.len(), 3, "one entry per tier");
        assert_eq!(cache.stats().compiles, 3);
    }

    #[test]
    fn cached_version_matches_fresh_compile() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let cached = cache.prepare_workload(&w, &spec, OptConfig::o3());
        let fresh = PreparedVersion::prepare(
            peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()),
            &spec,
        );
        assert_eq!(cached.version.code_size, fresh.version.code_size);
        assert_eq!(cached.spill_slot, fresh.spill_slot);
        assert_eq!(cached.slot_base, fresh.slot_base);
        assert_eq!(cached.live_across_calls, fresh.live_across_calls);
        assert_eq!(cached.over_icache, fresh.over_icache);
    }

    /// Satellite of the scheduler work: under real thread contention,
    /// every unique key compiles exactly once — racing requesters either
    /// hit a ready slot or coalesce onto the in-flight build.
    #[test]
    fn contended_lookups_compile_each_key_once() {
        const THREADS: usize = 8;
        let cache = Arc::new(VersionCache::new());
        let w = Arc::new(SwimCalc3::new());
        let spec = MachineSpec::sparc_ii();
        let cfgs =
            [OptConfig::o3(), OptConfig::o0(), OptConfig::o3().without(peak_opt::Flag::LoopUnroll)];
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = cache.clone();
            let w = w.clone();
            let spec = spec.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                // Different starting offsets per thread maximize overlap
                // on distinct keys at the same instant.
                for i in 0..cfgs.len() {
                    let cfg = cfgs[(t + i) % cfgs.len()];
                    let _ = cache.prepare_workload(w.as_ref(), &spec, cfg);
                }
            }));
        }
        for h in handles {
            h.join().expect("lookup thread");
        }
        let s = cache.stats();
        assert_eq!(s.compiles, cfgs.len() as u64, "each unique key compiles exactly once: {s:?}");
        assert_eq!(
            s.hits + s.misses,
            (THREADS * cfgs.len()) as u64,
            "every lookup accounted: {s:?}"
        );
        assert_eq!(
            s.misses,
            s.compiles + s.coalesced,
            "misses split exactly into builders and coalesced waiters: {s:?}"
        );
        assert_eq!(cache.len(), cfgs.len());
    }

    /// The bulk warm-up API dedupes duplicate keys in the request list
    /// itself and leaves the cache hot for subsequent lookups.
    #[test]
    fn warm_bulk_precompile_dedupes_and_hits_after() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let pool = Pool::with_threads(4);
        // Frontier with a duplicate: o3 appears twice.
        let cfgs = [OptConfig::o3(), OptConfig::o0(), OptConfig::o3()];
        let requests: Vec<_> = cfgs
            .iter()
            .map(|&cfg| {
                let key = VersionKey::plain(&w, cfg, spec.kind);
                let (prog, ts) = (w.program(), w.ts());
                (key, move || peak_opt::optimize(prog, ts, &cfg))
            })
            .collect();
        cache.warm(&pool, &spec, requests);
        let s = cache.stats();
        assert_eq!(s.compiles, 2, "duplicate key compiles once: {s:?}");
        assert_eq!(cache.len(), 2);
        let before = cache.stats();
        let _ = cache.prepare_workload(&w, &spec, OptConfig::o3());
        let _ = cache.prepare_workload(&w, &spec, OptConfig::o0());
        let d = cache.stats().delta(&before);
        assert_eq!((d.hits, d.misses), (2, 0), "warmed keys hit: {d:?}");
    }

    #[test]
    fn failed_build_unblocks_waiters_and_retries() {
        let cache = Arc::new(VersionCache::new());
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let key = VersionKey::plain(&w, OptConfig::o3(), spec.kind);
        // First builder panics mid-compile…
        let c2 = cache.clone();
        let k2 = key.clone();
        let s2 = spec.clone();
        let panicked = std::thread::spawn(move || {
            let _ = c2.get_or_prepare(k2, &s2, || panic!("injected compile failure"));
        })
        .join();
        assert!(panicked.is_err(), "builder thread must have panicked");
        // …and the key is usable again: the next lookup compiles fresh.
        let v = cache.get_or_prepare(key, &spec, || {
            peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3())
        });
        assert_eq!(cache.len(), 1);
        assert!(v.version.code_size > 0);
    }
}
