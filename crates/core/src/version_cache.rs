//! Process-wide compile/prepare cache for tuning-section versions.
//!
//! Every layer of the tuning pipeline — rating calls, the checkpointed
//! [`Tuner`](crate::Tuner), the degradation cascade, the consultant's MBR
//! profile, the Table 1 collectors, production measurement — needs a
//! [`PreparedVersion`] for some `(workload, config, machine)` triple, and
//! until now each call site ran `peak_opt::optimize` +
//! `PreparedVersion::prepare` from scratch. Both are pure functions of
//! their inputs: the workload's program is a fixed artifact, the
//! optimization pipeline is deterministic, and register allocation
//! depends only on the machine spec. So one shared cache keyed by
//! (workload, TS, instrumented?, config bits, machine kind) can hand out
//! `Arc<PreparedVersion>` clones forever without changing a single
//! simulated cycle — the "never compile the same version twice"
//! amortization that FOGA-style flag-evaluation caches and the Collective
//! Tuning Initiative build their tuning-time wins on.
//!
//! The cache is process-wide ([`VersionCache::global`]) because the
//! experiment drivers (`table1`, `figure7`) fan benchmarks out across
//! threads and repeat configurations across cells, rating retries, the
//! CBR→MBR→RBR→WHL cascade, and checkpoint resume. Compilation happens
//! outside the map lock; two threads racing on the same key at worst
//! compile it twice and then share one copy. Entries are never evicted —
//! the whole 38-flag search space for every Table 1 workload is a few
//! hundred small IR programs — but [`VersionCache::clear`] exists for
//! long-lived embedders.

use peak_opt::{CompiledVersion, OptConfig};
use peak_sim::{MachineKind, MachineSpec, PreparedVersion};
use peak_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of one compiled + prepared version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionKey {
    /// Benchmark name (workloads are fixed artifacts, so the name
    /// identifies the program).
    pub workload: &'static str,
    /// Tuning-section name.
    pub ts: &'static str,
    /// Whether the source is the MBR-instrumented variant of the TS
    /// (deterministically derived from the workload, so the flag
    /// identifies it).
    pub instrumented: bool,
    /// Optimization configuration bits ([`OptConfig::bits`]).
    pub config_bits: u64,
    /// Target machine (register allocation and pre-decoding depend on it).
    pub machine: MachineKind,
}

impl VersionKey {
    /// Key for the plain (uninstrumented) TS of `workload`.
    pub fn plain(workload: &dyn Workload, cfg: OptConfig, machine: MachineKind) -> Self {
        VersionKey {
            workload: workload.name(),
            ts: workload.ts_name(),
            instrumented: false,
            config_bits: cfg.bits(),
            machine,
        }
    }

    /// Key for the MBR-instrumented TS of `workload`.
    pub fn instrumented(workload: &dyn Workload, cfg: OptConfig, machine: MachineKind) -> Self {
        VersionKey { instrumented: true, ..Self::plain(workload, cfg, machine) }
    }
}

/// Hit/miss counters of a cache (monotonic; snapshot with
/// [`VersionCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled and prepared a fresh version.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counters accumulated since `earlier`.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A compile/prepare cache: `VersionKey` → `Arc<PreparedVersion>`.
#[derive(Debug, Default)]
pub struct VersionCache {
    map: Mutex<HashMap<VersionKey, Arc<PreparedVersion>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VersionCache {
    /// Fresh empty cache (tests; everything else uses
    /// [`VersionCache::global`]).
    pub fn new() -> Self {
        VersionCache::default()
    }

    /// The process-wide cache shared by every tuning layer.
    pub fn global() -> &'static VersionCache {
        static GLOBAL: OnceLock<VersionCache> = OnceLock::new();
        GLOBAL.get_or_init(VersionCache::new)
    }

    /// Return the prepared version for `key`, compiling it with `compile`
    /// and [`PreparedVersion::prepare`] on first use. `spec.kind` must
    /// match `key.machine` — the prepared artifact is machine-specific.
    pub fn get_or_prepare(
        &self,
        key: VersionKey,
        spec: &MachineSpec,
        compile: impl FnOnce() -> CompiledVersion,
    ) -> Arc<PreparedVersion> {
        debug_assert_eq!(spec.kind, key.machine, "key/spec machine mismatch");
        if let Some(v) = self.map.lock().expect("version cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside the lock: compilation dominates, and a racing
        // duplicate compile of the same deterministic inputs is harmless.
        let pv = Arc::new(PreparedVersion::prepare(compile(), spec));
        self.map
            .lock()
            .expect("version cache lock")
            .entry(key)
            .or_insert(pv)
            .clone()
    }

    /// Shorthand: compile (or fetch) the plain TS of `workload` under
    /// `cfg` for `spec`.
    pub fn prepare_workload(
        &self,
        workload: &dyn Workload,
        spec: &MachineSpec,
        cfg: OptConfig,
    ) -> Arc<PreparedVersion> {
        self.get_or_prepare(VersionKey::plain(workload, cfg, spec.kind), spec, || {
            peak_opt::optimize(workload.program(), workload.ts(), &cfg)
        })
    }

    /// Cached versions currently held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("version cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drop every cached version (counters keep running).
    pub fn clear(&self) {
        self.map.lock().expect("version cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::swim::SwimCalc3;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let a = cache.prepare_workload(&w, &spec, OptConfig::o3());
        let b = cache.prepare_workload(&w, &spec, OptConfig::o3());
        assert!(Arc::ptr_eq(&a, &b), "same key shares one artifact");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_separate_machine_config_and_instrumentation() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let sparc = MachineSpec::sparc_ii();
        let p4 = MachineSpec::pentium_iv();
        let _ = cache.prepare_workload(&w, &sparc, OptConfig::o3());
        let _ = cache.prepare_workload(&w, &p4, OptConfig::o3());
        let _ = cache.prepare_workload(&w, &sparc, OptConfig::o0());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
        assert_ne!(
            VersionKey::plain(&w, OptConfig::o3(), MachineKind::SparcII),
            VersionKey::instrumented(&w, OptConfig::o3(), MachineKind::SparcII),
        );
    }

    #[test]
    fn cached_version_matches_fresh_compile() {
        let cache = VersionCache::new();
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let cached = cache.prepare_workload(&w, &spec, OptConfig::o3());
        let fresh = PreparedVersion::prepare(
            peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()),
            &spec,
        );
        assert_eq!(cached.version.code_size, fresh.version.code_size);
        assert_eq!(cached.spill_slot, fresh.spill_slot);
        assert_eq!(cached.slot_base, fresh.slot_base);
        assert_eq!(cached.live_across_calls, fresh.live_across_calls);
        assert_eq!(cached.over_icache, fresh.over_icache);
    }
}
