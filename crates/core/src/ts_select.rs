//! Tuning-section selection (paper §4.1): "we choose as TS's the most
//! time-consuming functions and loops, according to the program execution
//! profiles".
//!
//! Our workloads pre-extract their TS, but the selector is implemented
//! generally: profile a program's functions over a set of entry calls and
//! rank by inclusive simulated time.

use peak_ir::{FuncId, Interp, MemoryImage, Program, Value};

/// Profile result for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncProfile {
    /// Function id.
    pub func: FuncId,
    /// Function name.
    pub name: String,
    /// Inclusive statement count attributed to calls of this function.
    pub steps: u64,
    /// Times the function was invoked as an entry.
    pub calls: u64,
}

/// Profile `entries` (a stream of top-level calls) and rank functions by
/// inclusive cost. Statement counts from the reference interpreter stand
/// in for profile timer ticks — the ranking is what matters.
pub fn profile_and_rank(
    prog: &Program,
    entries: &[(FuncId, Vec<Value>)],
    mem: &mut MemoryImage,
) -> Vec<FuncProfile> {
    let interp = Interp::default();
    let mut acc: Vec<FuncProfile> = prog
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| FuncProfile {
            func: FuncId(i as u32),
            name: f.name.clone(),
            steps: 0,
            calls: 0,
        })
        .collect();
    for (func, args) in entries {
        if let Ok(out) = interp.run(prog, *func, args, mem) {
            acc[func.index()].steps += out.steps;
            acc[func.index()].calls += 1;
        }
    }
    acc.retain(|p| p.calls > 0);
    acc.sort_by_key(|p| std::cmp::Reverse(p.steps));
    acc
}

/// Select the hottest function as the tuning section.
pub fn select_ts(profiles: &[FuncProfile]) -> Option<FuncId> {
    profiles.first().map(|p| p.func)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn hottest_function_selected() {
        let mut prog = Program::new();
        // cheap(x) = x+1
        let mut cb = FunctionBuilder::new("cheap", Some(Type::I64));
        let x = cb.param("x", Type::I64);
        let r = cb.binary(BinOp::Add, x, 1i64);
        cb.ret(Some(r.into()));
        let cheap = prog.add_func(cb.finish());
        // hot(n) = sum 0..n
        let mut hb = FunctionBuilder::new("hot", Some(Type::I64));
        let n = hb.param("n", Type::I64);
        let i = hb.var("i", Type::I64);
        let acc = hb.var("acc", Type::I64);
        hb.copy(acc, 0i64);
        hb.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        hb.ret(Some(acc.into()));
        let hot = prog.add_func(hb.finish());
        let mut mem = MemoryImage::new(&prog);
        let entries: Vec<(FuncId, Vec<Value>)> = (0..10)
            .flat_map(|_| {
                vec![
                    (cheap, vec![Value::I64(1)]),
                    (hot, vec![Value::I64(500)]),
                ]
            })
            .collect();
        let ranked = profile_and_rank(&prog, &entries, &mut mem);
        assert_eq!(select_ts(&ranked), Some(hot));
        assert_eq!(ranked[0].name, "hot");
        assert!(ranked[0].steps > ranked[1].steps * 10);
    }

    #[test]
    fn uncalled_functions_excluded() {
        let mut prog = Program::new();
        let mut fb = FunctionBuilder::new("used", None);
        fb.ret(None);
        let used = prog.add_func(fb.finish());
        let mut gb = FunctionBuilder::new("unused", None);
        gb.ret(None);
        let _unused = prog.add_func(gb.finish());
        let mut mem = MemoryImage::new(&prog);
        let ranked = profile_and_rank(&prog, &[(used, vec![])], &mut mem);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].name, "used");
    }
}
