//! Top-level offline tuning (the PEAK flow of paper Fig. 5) and the
//! production measurements behind Figure 7.
//!
//! `tune` runs Iterative Elimination with a chosen rating method on the
//! tuning dataset; `production_time` measures the tuned binary on the
//! (different) production dataset — the train-bar/ref-bar distinction of
//! Figure 7.

use crate::consultant::Method;
use crate::rating::TuningSetup;
use crate::search::{iterative_elimination, SearchResult};
use peak_opt::OptConfig;
use peak_sim::{ExecOptions, MachineSpec, PreparedVersion};
use peak_workloads::{Dataset, Workload};
use serde::Serialize;

/// One tuned result plus its production-side evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct TuneReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Tuning section.
    pub ts: String,
    /// Machine name.
    pub machine: String,
    /// Rating method requested.
    pub method: Method,
    /// Dataset used for tuning.
    pub tuned_on: String,
    /// The search result.
    pub search: SearchResult,
    /// Whole-program cycles of the -O3 baseline on the ref input.
    pub baseline_cycles: u64,
    /// Whole-program cycles of the tuned version on the ref input.
    pub tuned_cycles: u64,
    /// Performance improvement over -O3, percent (Figure 7a/b bars).
    pub improvement_pct: f64,
}

/// Measure a full production run (no instrumentation, no tuning
/// overheads): total true cycles of one application run.
pub fn production_time(
    workload: &dyn Workload,
    spec: &MachineSpec,
    cfg: OptConfig,
    ds: Dataset,
) -> u64 {
    let cv = peak_opt::optimize(workload.program(), workload.ts(), &cfg);
    let pv = PreparedVersion::prepare(cv, spec);
    let mut h = crate::harness::RunHarness::new(workload, ds, spec, 0);
    let opts = ExecOptions::default();
    while let Some(args) = h.next_args() {
        let _ = h.execute(&pv, &args, &opts);
    }
    h.cycles()
}

/// Tune a workload with `method` on `tuned_on`, then evaluate on the ref
/// input. This is one bar of Figure 7(a)/(b) plus the tuning-time number
/// for 7(c)/(d).
pub fn tune(
    workload: &dyn Workload,
    spec: &MachineSpec,
    method: Method,
    tuned_on: Dataset,
) -> TuneReport {
    let mut setup = TuningSetup::new(workload, spec.clone(), tuned_on);
    let search = iterative_elimination(&mut setup, method);
    let baseline_cycles = production_time(workload, spec, OptConfig::o3(), Dataset::Ref);
    let tuned_cycles = production_time(workload, spec, search.best, Dataset::Ref);
    let improvement_pct =
        (baseline_cycles as f64 / tuned_cycles.max(1) as f64 - 1.0) * 100.0;
    TuneReport {
        benchmark: workload.name().to_string(),
        ts: workload.ts_name().to_string(),
        machine: spec.kind.name().to_string(),
        method,
        tuned_on: match tuned_on {
            Dataset::Train => "train".into(),
            Dataset::Ref => "ref".into(),
        },
        search,
        baseline_cycles,
        tuned_cycles,
        improvement_pct,
    }
}

/// The methods evaluated for one benchmark in Figure 7: every applicable
/// rating method plus the AVG and WHL baselines.
pub fn figure7_methods(workload: &dyn Workload, spec: &MachineSpec) -> Vec<Method> {
    let consult = crate::consultant::consult(workload, spec);
    let mut ms = consult.order.clone();
    ms.push(Method::Avg);
    ms.push(Method::Whl);
    ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::swim::SwimCalc3;

    #[test]
    fn production_time_scales_with_dataset() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let train = production_time(&w, &spec, OptConfig::o3(), Dataset::Train);
        let reft = production_time(&w, &spec, OptConfig::o3(), Dataset::Ref);
        assert!(reft > train, "ref {reft} > train {train}");
    }

    #[test]
    fn o3_production_beats_o0() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let o3 = production_time(&w, &spec, OptConfig::o3(), Dataset::Train);
        let o0 = production_time(&w, &spec, OptConfig::o0(), Dataset::Train);
        assert!(o3 < o0);
    }

    #[test]
    fn tuned_swim_not_slower_than_o3() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let report = tune(&w, &spec, Method::Cbr, Dataset::Train);
        assert!(
            report.improvement_pct > -2.0,
            "tuning must not noticeably hurt: {:+.1}% (flags off: {:?})",
            report.improvement_pct,
            report.search.disabled_flags
        );
    }

    #[test]
    fn figure7_method_lists() {
        let w = SwimCalc3::new();
        let ms = figure7_methods(&w, &MachineSpec::sparc_ii());
        assert_eq!(ms.first(), Some(&Method::Cbr));
        assert!(ms.contains(&Method::Avg));
        assert!(ms.contains(&Method::Whl));
        assert_eq!(ms.last(), Some(&Method::Whl));
    }
}
