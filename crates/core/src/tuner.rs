//! Top-level offline tuning (the PEAK flow of paper Fig. 5) and the
//! production measurements behind Figure 7.
//!
//! `tune` runs Iterative Elimination with a chosen rating method on the
//! tuning dataset; `production_time` measures the tuned binary on the
//! (different) production dataset — the train-bar/ref-bar distinction of
//! Figure 7.

use crate::checkpoint::TunerCheckpoint;
use crate::consultant::Method;
use crate::degrade::{DegradeEvent, RatingSupervisor, SupervisorConfig};
use crate::job::CancelToken;
use crate::rating::{rate, TuningSetup};
use crate::sched::Pool;
use crate::search::{iterative_elimination_from, SearchResult};
use crate::strategy::{
    build_strategy, strategy_seed, FrontierRater, IterativeElimination, SearchStrategy,
    StrategyKind,
};
use crate::version_cache::VersionCache;
use peak_obs::{event, Tracer};
use peak_opt::OptConfig;
use peak_sim::{ExecOptions, FaultConfig, MachineSpec};
use peak_util::{Json, ToJson};
use peak_workloads::{Dataset, Workload};
use std::path::{Path, PathBuf};

/// One tuned result plus its production-side evaluation.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Tuning section.
    pub ts: String,
    /// Machine name.
    pub machine: String,
    /// Rating method requested.
    pub method: Method,
    /// Dataset used for tuning.
    pub tuned_on: String,
    /// The search result.
    pub search: SearchResult,
    /// Whole-program cycles of the -O3 baseline on the ref input.
    pub baseline_cycles: u64,
    /// Whole-program cycles of the tuned version on the ref input.
    pub tuned_cycles: u64,
    /// Performance improvement over -O3, percent (Figure 7a/b bars).
    pub improvement_pct: f64,
}

impl ToJson for TuneReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("ts", self.ts.to_json()),
            ("machine", self.machine.to_json()),
            ("method", self.method.to_json()),
            ("tuned_on", self.tuned_on.to_json()),
            ("search", self.search.to_json()),
            ("baseline_cycles", self.baseline_cycles.to_json()),
            ("tuned_cycles", self.tuned_cycles.to_json()),
            ("improvement_pct", self.improvement_pct.to_json()),
        ])
    }
}

/// Measure a full production run (no instrumentation, no tuning
/// overheads): total true cycles of one application run.
pub fn production_time(
    workload: &dyn Workload,
    spec: &MachineSpec,
    cfg: OptConfig,
    ds: Dataset,
) -> u64 {
    let pv = VersionCache::global().prepare_workload(workload, spec, cfg);
    let mut h = crate::harness::RunHarness::new(workload, ds, spec, 0);
    let opts = ExecOptions::default();
    while let Some(args) = h.next_args() {
        let _ = h.execute(&pv, &args, &opts);
    }
    h.cycles()
}

/// Tune a workload with `method` on `tuned_on`, then evaluate on the ref
/// input. This is one bar of Figure 7(a)/(b) plus the tuning-time number
/// for 7(c)/(d).
pub fn tune(
    workload: &dyn Workload,
    spec: &MachineSpec,
    method: Method,
    tuned_on: Dataset,
) -> TuneReport {
    tune_traced(workload, spec, method, tuned_on, Tracer::disabled())
}

/// [`tune`] with a tracer installed for the tuning phase: every rating
/// call and tuning run emits telemetry. With a disabled tracer this is
/// exactly [`tune`] (which delegates here).
pub fn tune_traced(
    workload: &dyn Workload,
    spec: &MachineSpec,
    method: Method,
    tuned_on: Dataset,
    tracer: Tracer,
) -> TuneReport {
    tune_traced_pooled(workload, spec, method, tuned_on, tracer, &Pool::with_threads(1))
}

/// [`tune_traced`] with a job pool installed on the tuning setup: each
/// IE round's candidate frontier is pre-compiled in parallel through the
/// shared [`VersionCache`]. Warm-up is pure (compilation is
/// deterministic and cached), so every output — ratings, flags, cycles,
/// traces — is byte-identical to [`tune_traced`] at any pool size; only
/// wall-clock time changes.
pub fn tune_traced_pooled(
    workload: &dyn Workload,
    spec: &MachineSpec,
    method: Method,
    tuned_on: Dataset,
    tracer: Tracer,
    pool: &Pool,
) -> TuneReport {
    tune_with_options(workload, spec, method, tuned_on, tracer, pool, &TuneOptions::default())
}

/// Job-layer knobs for [`tune_with_options`]. The default — O3 start, a
/// cancel token that never fires — makes it exactly
/// [`tune_traced_pooled`].
#[derive(Debug, Clone, Default)]
pub struct TuneOptions {
    /// IE start configuration (`None` = O3; the serve daemon's
    /// knowledge-store warm start supplies a nearest-neighbour config).
    pub start: Option<OptConfig>,
    /// Cooperative cancellation token, checked at run starts, IE round
    /// boundaries, and between the tuning and production phases.
    pub cancel: CancelToken,
    /// Search strategy. `None` runs the legacy serial IE — the
    /// goldens-compatible protocol. `Some(kind)` runs `kind` on the
    /// pooled per-candidate rater ([`FrontierRater::pooled`]), seeded
    /// deterministically from the (workload, machine) pair — so even
    /// `Some(StrategyKind::Ie)` differs numerically from `None` (the
    /// rating protocol is restructured), but is bit-identical at any
    /// pool size.
    pub strategy: Option<StrategyKind>,
}

/// [`tune_traced_pooled`] with job-layer options (warm start +
/// cancellation) — the entry point behind
/// [`run_tuning_job`](crate::job::run_tuning_job).
pub fn tune_with_options(
    workload: &dyn Workload,
    spec: &MachineSpec,
    method: Method,
    tuned_on: Dataset,
    tracer: Tracer,
    pool: &Pool,
    options: &TuneOptions,
) -> TuneReport {
    let mut setup = TuningSetup::new(workload, spec.clone(), tuned_on);
    setup.set_tracer(tracer);
    setup.set_pool(pool.clone());
    setup.set_cancel(options.cancel.clone());
    let start = options.start.unwrap_or_else(OptConfig::o3);
    let search = match options.strategy {
        None => iterative_elimination_from(&mut setup, method, start),
        Some(kind) => {
            let seed = strategy_seed(workload.name(), spec.kind.name());
            // IE honors the warm start; the seeded strategies define
            // their own initialization off O3.
            let strategy: Box<dyn SearchStrategy> = match kind {
                StrategyKind::Ie => Box::new(IterativeElimination {
                    start,
                    max_rounds: crate::search::MAX_IE_ROUNDS,
                }),
                _ => build_strategy(kind, seed),
            };
            let mut rater = FrontierRater::pooled(&mut setup, pool.clone(), method);
            strategy.run(&mut rater)
        }
    };
    options.cancel.check();
    let baseline_cycles = production_time(workload, spec, OptConfig::o3(), Dataset::Ref);
    options.cancel.check();
    let tuned_cycles = production_time(workload, spec, search.best, Dataset::Ref);
    let improvement_pct =
        (baseline_cycles as f64 / tuned_cycles.max(1) as f64 - 1.0) * 100.0;
    TuneReport {
        benchmark: workload.name().to_string(),
        ts: workload.ts_name().to_string(),
        machine: spec.kind.name().to_string(),
        method,
        tuned_on: match tuned_on {
            Dataset::Train => "train".into(),
            Dataset::Ref => "ref".into(),
        },
        search,
        baseline_cycles,
        tuned_cycles,
        improvement_pct,
    }
}

/// Checkpointed, fault-tolerant tuning driver: Iterative Elimination with
/// the [`RatingSupervisor`] in the loop (retry-with-backoff + degradation
/// cascade), serializing its full state after every rating step so a
/// killed job resumes bit-identically via [`Tuner::resume`].
///
/// With no faults installed and no degradation triggered, `run()` visits
/// the same (base, candidates) rating sequence as
/// [`iterative_elimination`] — the supervisor's accept path is the §3
/// fallback check — but drives it one observable, resumable step at a
/// time.
pub struct Tuner<'w> {
    setup: TuningSetup<'w>,
    supervisor: RatingSupervisor,
    method: Method,
    last_method: Method,
    base: OptConfig,
    round: usize,
    ratings: usize,
    done: bool,
    checkpoint_path: Option<PathBuf>,
}

impl<'w> Tuner<'w> {
    /// New fault-free tuner (equivalent to [`Tuner::with_faults`] with
    /// `None`).
    pub fn new(
        workload: &'w dyn Workload,
        spec: MachineSpec,
        method: Method,
        ds: Dataset,
    ) -> Self {
        Self::with_faults(workload, spec, method, ds, None)
    }

    /// New tuner with an optional fault scenario installed on every
    /// tuning run.
    pub fn with_faults(
        workload: &'w dyn Workload,
        spec: MachineSpec,
        method: Method,
        ds: Dataset,
        faults: Option<FaultConfig>,
    ) -> Self {
        let mut setup = TuningSetup::new(workload, spec, ds);
        setup.set_faults(faults);
        Tuner {
            setup,
            supervisor: RatingSupervisor::default(),
            method,
            last_method: method,
            base: OptConfig::o3(),
            round: 0,
            ratings: 0,
            done: false,
            checkpoint_path: None,
        }
    }

    /// Override the supervisor policy (must be called before stepping).
    pub fn set_supervisor(&mut self, config: SupervisorConfig) {
        self.supervisor = RatingSupervisor::new(config);
    }

    /// Install a tracer on the underlying [`TuningSetup`]: tuner rounds,
    /// supervised ratings, and per-run simulator metrics all emit
    /// through it. The default disabled tracer changes nothing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.setup.set_tracer(tracer);
    }

    /// Install a job pool on the underlying [`TuningSetup`]: each round's
    /// candidate frontier is pre-compiled in parallel before rating.
    /// Pure warm-up — results and checkpoints stay bit-identical.
    pub fn set_pool(&mut self, pool: Pool) {
        self.setup.set_pool(pool);
    }

    /// Write a checkpoint to `path` after every rating step (and one
    /// immediately, so even a job killed before its first step resumes).
    pub fn checkpoint_to(&mut self, path: &Path) -> std::io::Result<()> {
        self.checkpoint_path = Some(path.to_path_buf());
        self.checkpoint().save(path)
    }

    /// Snapshot the current state.
    pub fn checkpoint(&self) -> TunerCheckpoint {
        TunerCheckpoint {
            benchmark: self.setup.workload.name().to_string(),
            machine: self.setup.spec.kind.name().to_string(),
            dataset: dataset_name(self.setup.ds).to_string(),
            method: self.method,
            last_method: self.last_method,
            base_bits: self.base.bits(),
            round: self.round,
            ratings: self.ratings,
            supervised: self.supervisor.ratings(),
            switches: self.supervisor.events().len() as u32,
            next_seed: self.setup.next_seed(),
            tuning_cycles: self.setup.tuning_cycles,
            runs_used: self.setup.runs_used,
            invocations_used: self.setup.invocations_used,
            fault_config: self.setup.fault_config().cloned(),
            events: self.supervisor.events().to_vec(),
            done: self.done,
        }
    }

    /// Resume from a checkpoint written by a previous [`Tuner`]. The
    /// workload and machine must match the ones the checkpoint was taken
    /// with (validated by name); the tuning dataset is restored from the
    /// checkpoint. Stepping a resumed tuner replays the exact run-seed
    /// sequence of the uninterrupted job, so the final result is
    /// identical.
    pub fn resume(
        workload: &'w dyn Workload,
        spec: MachineSpec,
        path: &Path,
    ) -> std::io::Result<Self> {
        let cp = TunerCheckpoint::load(path)?;
        let invalid = |what: &str, want: &str, got: &str| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("checkpoint {what} mismatch: checkpoint has {got:?}, caller supplied {want:?}"),
            )
        };
        if cp.benchmark != workload.name() {
            return Err(invalid("benchmark", workload.name(), &cp.benchmark));
        }
        if cp.machine != spec.kind.name() {
            return Err(invalid("machine", spec.kind.name(), &cp.machine));
        }
        let ds = match cp.dataset.as_str() {
            "train" => Dataset::Train,
            "ref" => Dataset::Ref,
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("checkpoint has unknown dataset {other:?}"),
                ))
            }
        };
        let mut tuner = Self::with_faults(workload, spec, cp.method, ds, cp.fault_config.clone());
        tuner.setup.restore_accounting(
            cp.next_seed,
            cp.tuning_cycles,
            cp.runs_used,
            cp.invocations_used,
        );
        tuner.supervisor.restore(cp.events.clone(), cp.supervised);
        tuner.last_method = cp.last_method;
        tuner.base = OptConfig::from_bits(cp.base_bits);
        tuner.round = cp.round;
        tuner.ratings = cp.ratings;
        tuner.done = cp.done;
        tuner.checkpoint_path = Some(path.to_path_buf());
        Ok(tuner)
    }

    /// Perform one Iterative-Elimination round (one supervised rating of
    /// all single-flag removals), then checkpoint. Returns `false` once
    /// the search has terminated.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        let flags = self.base.enabled_flags();
        if flags.is_empty() {
            self.done = true;
            self.save_checkpoint();
            return false;
        }
        let tracer = self.setup.tracer().clone();
        let _round_span = if tracer.enabled() {
            Some(tracer.span(
                "tuner.round",
                vec![
                    ("round".to_owned(), Json::U(self.round as u64)),
                    ("base".to_owned(), Json::U(self.base.bits())),
                    ("flags_enabled".to_owned(), Json::U(flags.len() as u64)),
                ],
            ))
        } else {
            None
        };
        let candidates: Vec<OptConfig> =
            flags.iter().map(|&f| self.base.without(f)).collect();
        // Pre-compile the frontier (pure; see `TuningSetup::warm_frontier`).
        let mut warm = candidates.clone();
        warm.push(self.base);
        self.setup.warm_frontier(&warm, matches!(self.method, Method::Mbr));
        let (out, used) = if matches!(self.method, Method::Whl | Method::Avg) {
            // Baselines rate directly; the cascade has nowhere to go.
            (
                rate(&mut self.setup, self.method, self.base, &candidates)
                    .expect("baseline method rates"),
                self.method,
            )
        } else {
            self.supervisor.rate(&mut self.setup, self.method, self.base, &candidates)
        };
        self.last_method = used;
        self.ratings += candidates.len();
        self.round += 1;
        let bestidx = (0..candidates.len())
            .max_by(|&a, &b| out.improvements[a].total_cmp(&out.improvements[b]));
        let mut removed: Option<&'static str> = None;
        match bestidx {
            Some(i) if out.improvements[i] >= crate::search::MIN_GAIN => {
                removed = Some(flags[i].name());
                self.base = candidates[i];
            }
            _ => self.done = true,
        }
        if self.round >= crate::search::MAX_IE_ROUNDS {
            self.done = true;
        }
        if tracer.enabled() {
            let best = bestidx.map(|i| out.improvements[i]).unwrap_or(1.0);
            event!(
                tracer,
                "tuner.step",
                round = (self.round - 1) as u64,
                method = used.name(),
                best_improvement = best,
                removed_flag = removed,
                done = self.done,
            );
        }
        self.save_checkpoint();
        !self.done
    }

    /// Run the search to completion and return the result.
    pub fn run(&mut self) -> SearchResult {
        while self.step() {}
        self.result()
    }

    /// Downgrades logged so far.
    pub fn events(&self) -> &[DegradeEvent] {
        self.supervisor.events()
    }

    /// Whether the search has terminated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The search result for the current state (final once
    /// [`Tuner::is_done`]).
    pub fn result(&self) -> SearchResult {
        SearchResult {
            best: self.base,
            disabled_flags: self
                .base
                .disabled_flags()
                .iter()
                .map(|f| f.name().to_string())
                .collect(),
            method: self.last_method,
            switches: self.supervisor.events().len() as u32,
            ratings: self.ratings,
            tuning_cycles: self.setup.tuning_cycles,
            runs: self.setup.runs_used,
            invocations: self.setup.invocations_used,
        }
    }

    fn save_checkpoint(&self) {
        if let Some(path) = &self.checkpoint_path {
            if let Err(e) = self.checkpoint().save(path) {
                let tracer = self.setup.tracer();
                if tracer.enabled() {
                    event!(
                        tracer,
                        "warn.checkpoint_save",
                        path = path.display().to_string(),
                        error = e.to_string(),
                    );
                } else {
                    eprintln!("warning: checkpoint save to {path:?} failed: {e}");
                }
            }
        }
    }
}

fn dataset_name(ds: Dataset) -> &'static str {
    match ds {
        Dataset::Train => "train",
        Dataset::Ref => "ref",
    }
}

/// The methods evaluated for one benchmark in Figure 7: every applicable
/// rating method plus the AVG and WHL baselines.
pub fn figure7_methods(workload: &dyn Workload, spec: &MachineSpec) -> Vec<Method> {
    let consult = crate::consultant::consult(workload, spec);
    let mut ms = consult.order.clone();
    ms.push(Method::Avg);
    ms.push(Method::Whl);
    ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::swim::SwimCalc3;

    #[test]
    fn production_time_scales_with_dataset() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let train = production_time(&w, &spec, OptConfig::o3(), Dataset::Train);
        let reft = production_time(&w, &spec, OptConfig::o3(), Dataset::Ref);
        assert!(reft > train, "ref {reft} > train {train}");
    }

    #[test]
    fn o3_production_beats_o0() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let o3 = production_time(&w, &spec, OptConfig::o3(), Dataset::Train);
        let o0 = production_time(&w, &spec, OptConfig::o0(), Dataset::Train);
        assert!(o3 < o0);
    }

    #[test]
    fn tuned_swim_not_slower_than_o3() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let report = tune(&w, &spec, Method::Cbr, Dataset::Train);
        assert!(
            report.improvement_pct > -2.0,
            "tuning must not noticeably hurt: {:+.1}% (flags off: {:?})",
            report.improvement_pct,
            report.search.disabled_flags
        );
    }

    #[test]
    fn figure7_method_lists() {
        let w = SwimCalc3::new();
        let ms = figure7_methods(&w, &MachineSpec::sparc_ii());
        assert_eq!(ms.first(), Some(&Method::Cbr));
        assert!(ms.contains(&Method::Avg));
        assert!(ms.contains(&Method::Whl));
        assert_eq!(ms.last(), Some(&Method::Whl));
    }

    #[test]
    fn tuner_matches_iterative_elimination_when_clean() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut setup = TuningSetup::new(&w, spec.clone(), Dataset::Train);
        let reference = crate::search::iterative_elimination(&mut setup, Method::Cbr);
        let mut tuner = Tuner::new(&w, spec, Method::Cbr, Dataset::Train);
        let supervised = tuner.run();
        assert_eq!(supervised.best, reference.best);
        assert_eq!(supervised.ratings, reference.ratings);
        assert_eq!(supervised.invocations, reference.invocations);
        assert!(tuner.events().is_empty(), "{:?}", tuner.events());
    }

    #[test]
    fn killed_tuner_resumes_to_identical_result() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let dir = std::env::temp_dir().join("peak-tuner-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");

        // Uninterrupted reference run.
        let mut straight = Tuner::new(&w, spec.clone(), Method::Cbr, Dataset::Train);
        let want = straight.run();

        // "Killed" run: two steps with checkpointing, then drop the tuner.
        let mut victim = Tuner::new(&w, spec.clone(), Method::Cbr, Dataset::Train);
        victim.checkpoint_to(&path).unwrap();
        victim.step();
        victim.step();
        drop(victim);

        // Resume from disk and finish.
        let mut resumed = Tuner::resume(&w, spec, &path).unwrap();
        let got = resumed.run();
        assert_eq!(got.best, want.best);
        assert_eq!(got.ratings, want.ratings);
        assert_eq!(got.runs, want.runs);
        assert_eq!(got.invocations, want.invocations);
        assert_eq!(got.tuning_cycles, want.tuning_cycles);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_wrong_workload() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let dir = std::env::temp_dir().join("peak-tuner-mismatch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let mut t = Tuner::new(&w, spec.clone(), Method::Cbr, Dataset::Train);
        t.checkpoint_to(&path).unwrap();
        let other = peak_workloads::art::ArtMatch::new();
        assert!(Tuner::resume(&other, spec, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
