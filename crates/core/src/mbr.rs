//! Model-based rating: component discovery, instrumentation, and the
//! regression-backed rating model (paper §2.3).
//!
//! `T_TS = Σ T_i · C_i` — block-entry counts that are linearly dependent
//! across invocations merge into one *component*; constant-count blocks
//! fold into the constant component. Counts come from compile-time trip
//! expressions when the structure is regular, otherwise from inserted
//! counters whose cycle cost the simulator charges.

use crate::linreg;
use peak_ir::{
    BlockId, Cfg, CountExpr, CountSource, FuncId, Interp, MemoryImage, Program, Value,
};
use peak_workloads::{Dataset, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where one component's count comes from at rating time.
#[derive(Debug, Clone)]
pub enum CompCount {
    /// Evaluated from TS-entry argument values.
    Expr(CountExpr),
    /// Read from an instrumentation counter after the invocation.
    Counter(usize),
    /// Always one (the constant component `T_n`, paper §2.3).
    Constant,
}

/// The discovered MBR model for one tuning section.
#[derive(Debug, Clone)]
pub struct MbrModel {
    /// Program with the TS instrumented (counters for irregular
    /// representative blocks only). Candidate versions compile from this.
    pub instrumented: Program,
    /// The instrumented TS function.
    pub ts: FuncId,
    /// Per-component count source; the last entry is [`CompCount::Constant`].
    pub comps: Vec<CompCount>,
    /// Number of runtime counters in the instrumented TS.
    pub num_counters: usize,
    /// Average component counts over the profile run (paper Eq. 4's
    /// `C_avg,i`, used by the `T_avg` rating).
    pub c_avg: Vec<f64>,
    /// Index of the dominant component if one holds ≥ 90% of profile
    /// time (rating then uses its `T_i` directly, paper §2.3 (a)).
    pub dominant: Option<usize>,
    /// Regression VAR on the profile run (how well the linear model
    /// explains this TS at all — the consultant's MBR-quality signal).
    pub profile_var: f64,
}

/// Maximum components for MBR to stay practical (paper: "If there are
/// many components … MBR would lead to a long tuning time … and so is not
/// applied").
pub const MAX_COMPONENTS: usize = 4;

/// Invocations used by the counting profile.
pub const PROFILE_INVOCATIONS: usize = 120;

/// Fraction of profile time a component must hold to be "dominant".
pub const DOMINANT_FRACTION: f64 = 0.9;

/// Discover the MBR model for a workload's TS, or `None` if the component
/// count exceeds [`MAX_COMPONENTS`] or the counts are degenerate.
///
/// Profiling uses the reference interpreter (exact block-entry counts, no
/// perturbation) over the deterministic train stream — the paper's
/// separate profile run. Timing quality (`profile_var`) is filled in by
/// the caller via [`MbrModel::fit_profile_times`] using simulator timings.
pub fn discover(workload: &dyn Workload) -> Option<MbrModel> {
    let prog = workload.program();
    let ts = workload.ts();
    let f = prog.func(ts);
    let cfg = Cfg::build(f);
    let blocks: Vec<BlockId> = cfg.rpo.clone();
    // Profile: exact per-invocation block-entry counts.
    let mut mem = MemoryImage::new(prog);
    let mut rng = StdRng::seed_from_u64(0x7472_6169_6e00); // the train stream seed
    workload.setup(Dataset::Train, &mut mem, &mut rng);
    let interp = Interp::default();
    let n_inv = PROFILE_INVOCATIONS.min(workload.invocations(Dataset::Train));
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n_inv); // [inv][block]
    for inv in 0..n_inv {
        let args = workload.args(Dataset::Train, inv, &mut mem, &mut rng);
        let out = interp.run(prog, ts, &args, &mut mem).ok()?;
        rows.push(blocks.iter().map(|b| out.block_entries[b.index()] as f64).collect());
    }
    // Merge linearly dependent block counts (paper §2.3). Generalized to
    // full multicollinearity: a block joins the component set only if its
    // count column is linearly independent of the span of the already
    // chosen columns plus the all-ones (constant) column — a dependent
    // column's time contribution distributes over the existing components
    // in the regression, so keeping it would only make CᵀC singular.
    let nb = blocks.len();
    let mut reps: Vec<usize> = Vec::new(); // indices into `blocks`
    for bi in 0..nb {
        let col: Vec<f64> = rows.iter().map(|r| r[bi]).collect();
        if col.iter().all(|&c| c == col[0]) {
            continue; // constant-count block → constant component
        }
        // Basis so far: chosen columns + ones.
        let basis: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut v: Vec<f64> = reps.iter().map(|&ri| r[ri]).collect();
                v.push(1.0);
                v
            })
            .collect();
        let dependent = match crate::linreg::solve(&col, &basis) {
            Some(reg) => reg.var < 1e-9,
            None => false, // singular basis fit ⇒ treat as independent
        };
        if !dependent {
            reps.push(bi);
        }
    }
    if reps.len() + 1 > MAX_COMPONENTS {
        return None;
    }
    if reps.is_empty() {
        // Fully constant behaviour: a single constant component would make
        // MBR degenerate to AVG; still allow it (paper: SWIM/EQUAKE have
        // one context where MBR ≈ CBR ≈ AVG).
    }
    // Instrument a fresh copy of the program for the representatives.
    let mut instrumented = prog.clone();
    let rep_blocks: Vec<BlockId> = reps.iter().map(|&bi| blocks[bi]).collect();
    let plan = peak_ir::instrument_block_counts(instrumented.func_mut(ts), &rep_blocks);
    let mut comps: Vec<CompCount> = Vec::new();
    let mut counter_idx = 0usize;
    for (_b, src) in &plan.sources {
        comps.push(match src {
            CountSource::Expr(e) => CompCount::Expr(e.clone()),
            CountSource::Counter(_) => {
                let c = CompCount::Counter(counter_idx);
                counter_idx += 1;
                c
            }
        });
    }
    comps.push(CompCount::Constant);
    // Average counts from the profile.
    let k = comps.len();
    let mut c_avg = vec![0.0f64; k];
    for row in &rows {
        for (ci, &bi) in reps.iter().enumerate() {
            c_avg[ci] += row[bi];
        }
        c_avg[k - 1] += 1.0;
    }
    for v in &mut c_avg {
        *v /= rows.len() as f64;
    }
    Some(MbrModel {
        instrumented,
        ts,
        comps,
        num_counters: plan.num_counters,
        c_avg,
        dominant: None,
        profile_var: f64::INFINITY,
    })
}

impl MbrModel {
    /// Component-count row for one invocation: `args` are the TS-entry
    /// arguments, `counters` the post-invocation counter values.
    pub fn count_row(&self, args: &[Value], counters: &[u64]) -> Vec<f64> {
        self.comps
            .iter()
            .map(|c| match c {
                CompCount::Expr(e) => e
                    .eval(&|v| args.get(v.index()).copied())
                    .map(|x| x as f64)
                    .unwrap_or(0.0),
                CompCount::Counter(i) => counters.get(*i).copied().unwrap_or(0) as f64,
                CompCount::Constant => 1.0,
            })
            .collect()
    }

    /// Fit the model on profile timings: fills `dominant` and
    /// `profile_var`, returning the regression if it succeeded.
    pub fn fit_profile_times(
        &mut self,
        times: &[f64],
        counts: &[Vec<f64>],
    ) -> Option<linreg::Regression> {
        let reg = linreg::solve(times, counts)?;
        self.profile_var = reg.var;
        // Dominant component by time share at average counts.
        let shares: Vec<f64> = reg
            .t
            .iter()
            .zip(&self.c_avg)
            .map(|(t, c)| t * c)
            .collect();
        let total: f64 = shares.iter().sum();
        self.dominant = if total > 0.0 {
            shares
                .iter()
                .position(|s| s / total >= DOMINANT_FRACTION)
        } else {
            None
        };
        Some(reg)
    }

    /// The MBR EVAL for a fitted regression: the dominant component's
    /// `T_i` when one exists, else `T_avg = Σ T_i · C_avg,i` (paper Eq. 4).
    pub fn eval_of(&self, reg: &linreg::Regression) -> f64 {
        match self.dominant {
            Some(i) => reg.t[i],
            None => reg.t.iter().zip(&self.c_avg).map(|(t, c)| t * c).sum(),
        }
    }

    /// Number of components (including the constant one).
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::{bzip2::Bzip2FullGtU, mgrid::MgridResid, swim::SwimCalc3};

    #[test]
    fn mgrid_model_has_expr_component_and_no_counters() {
        // resid is perfectly regular: body count derives from the grid
        // size; MBR needs no runtime counters at all.
        let w = MgridResid::new();
        let model = discover(&w).expect("MBR applies to MGRID");
        assert!(model.num_components() >= 2);
        assert!(model.num_components() <= MAX_COMPONENTS);
        assert_eq!(model.num_counters, 0, "all counts compile-time derivable");
        assert!(model
            .comps
            .iter()
            .any(|c| matches!(c, CompCount::Expr(_))));
    }

    #[test]
    fn mgrid_counts_track_grid_size() {
        let w = MgridResid::new();
        let model = discover(&w).unwrap();
        let row = model.count_row(&[Value::I64(10)], &[]);
        // Some component equals (m-2)^2 = 64 or a linear relative of it.
        assert!(
            row.iter().any(|&c| (c - 64.0).abs() < 1e-9 || (c - 72.0).abs() < 1e-9),
            "{row:?}"
        );
        assert_eq!(*row.last().unwrap(), 1.0, "constant component");
    }

    #[test]
    fn bzip2_needs_runtime_counters() {
        // Data-dependent exits: counts are not derivable from entry args.
        let w = Bzip2FullGtU::new();
        if let Some(model) = discover(&w) {
            assert!(model.num_counters > 0, "irregular counts need counters");
        }
        // (Component explosion making it None is also acceptable.)
    }

    #[test]
    fn swim_collapses_to_few_components() {
        // One context: all counts constant across invocations → everything
        // folds into few components.
        let w = SwimCalc3::new();
        let model = discover(&w).expect("SWIM is regular");
        assert!(model.num_components() <= 2, "{:?}", model.comps.len());
    }

    #[test]
    fn figure2_rating_flow() {
        // End-to-end MBR rating on the paper's Figure 2 numbers.
        let w = MgridResid::new();
        let mut model = discover(&w).unwrap();
        // Two components: iterations + constant (synthetic data).
        model.comps = vec![CompCount::Counter(0), CompCount::Constant];
        model.c_avg = vec![69.0, 1.0];
        let counts: Vec<Vec<f64>> = [100.0, 50.0, 60.0, 55.0, 80.0]
            .iter()
            .map(|&c| vec![c, 1.0])
            .collect();
        let times = [11015.0, 5508.0, 6626.0, 6044.0, 8793.0];
        let reg = model.fit_profile_times(&times, &counts).unwrap();
        assert!((reg.t[0] - 110.05).abs() < 0.2);
        assert_eq!(model.dominant, Some(0), "first component dominates");
        assert!((model.eval_of(&reg) - reg.t[0]).abs() < 1e-12);
    }
}
