//! The run harness: simulates application runs of a workload with the
//! PEAK driver swapping tuning-section versions in and out (the ADAPT
//! mechanism of paper Fig. 6, minus `dlopen`).
//!
//! One [`RunHarness`] = one application run: fresh memory and machine
//! state (a new process), the workload's deterministic invocation stream,
//! and cycle accounting that includes the rest-of-program cost — the
//! quantity WHL tuning pays in full and the section-level methods avoid.

use crate::context::ContextKey;
use peak_ir::{MemoryImage, Value};
use peak_obs::Tracer;
use peak_sim::{
    AddressMap, ExecError, ExecOptions, ExecResult, ExecScratch, ExecTier, FaultPlan, MachineSpec,
    MachineState, PreparedVersion,
};
use peak_workloads::{Dataset, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cycle cost of copying one element during RBR save/restore, on top of
/// the cache traffic (loop + addressing overhead of the copy code).
const COPY_OVERHEAD_PER_ELEM: u64 = 1;

/// Live count of TS invocations executed, across all harnesses. This is
/// THE hot path (the overhead-gate bench measures exactly this site), so
/// the handle is cached in a static and the increment is one relaxed
/// `fetch_add` behind one relaxed flag load.
#[inline]
fn count_invocation() {
    use peak_obs::metrics::{self, Counter, MetricsRegistry};
    use std::sync::OnceLock;
    if !metrics::enabled() {
        return;
    }
    static INVOCATIONS: OnceLock<std::sync::Arc<Counter>> = OnceLock::new();
    INVOCATIONS
        .get_or_init(|| {
            MetricsRegistry::global()
                .counter("core.harness.invocations", "TS invocations executed")
        })
        .inc();
}

/// One application run.
pub struct RunHarness<'w> {
    workload: &'w dyn Workload,
    ds: Dataset,
    /// Machine state (caches, predictor, timer, cycle counter).
    pub machine: MachineState,
    /// Address layout shared by all versions of this program.
    pub amap: AddressMap,
    /// Program memory.
    pub mem: MemoryImage,
    stream_rng: StdRng,
    next_inv: usize,
    limit: usize,
    /// Reusable executor buffers: the steady-state invocation path of a
    /// run allocates nothing.
    scratch: ExecScratch,
    /// Execution tier for TS invocations (default: `PEAK_TIER`, else
    /// predecoded). Any tier produces bit-identical results and cycles;
    /// they differ only in wall-clock simulation speed.
    tier: ExecTier,
    /// Telemetry handle for tier events (`jit.deopt`); disabled by
    /// default, installed by [`TuningSetup`](crate::TuningSetup).
    tracer: Tracer,
}

impl<'w> RunHarness<'w> {
    /// Start a run. `noise_seed` feeds the timer; the workload stream is
    /// seeded deterministically from the dataset so every run of the same
    /// input is identical (like re-running a benchmark binary).
    pub fn new(
        workload: &'w dyn Workload,
        ds: Dataset,
        spec: &MachineSpec,
        noise_seed: u64,
    ) -> Self {
        Self::with_faults(workload, ds, spec, noise_seed, None)
    }

    /// Start a run with an optional injected-fault plan (the robustness
    /// harness). `faults = None` is exactly [`RunHarness::new`].
    pub fn with_faults(
        workload: &'w dyn Workload,
        ds: Dataset,
        spec: &MachineSpec,
        noise_seed: u64,
        faults: Option<FaultPlan>,
    ) -> Self {
        let mem_lens: Vec<usize> =
            workload.program().mems.iter().map(|m| m.len).collect();
        let amap = AddressMap::new(&mem_lens);
        let mut mem = MemoryImage::new(workload.program());
        let stream_seed = match ds {
            Dataset::Train => STREAM_SEED_TRAIN,
            Dataset::Ref => STREAM_SEED_REF,
        };
        let mut stream_rng = StdRng::seed_from_u64(stream_seed);
        workload.setup(ds, &mut mem, &mut stream_rng);
        let limit = workload.invocations(ds);
        let mut machine = MachineState::new(spec.clone(), noise_seed);
        if let Some(plan) = faults {
            machine.install_faults(plan);
        }
        RunHarness {
            workload,
            ds,
            machine,
            amap,
            mem,
            stream_rng,
            next_inv: 0,
            limit,
            scratch: ExecScratch::new(),
            tier: ExecTier::from_env(),
            tracer: Tracer::disabled(),
        }
    }

    /// Force the execution tier for this run (overrides `PEAK_TIER`).
    pub fn set_tier(&mut self, tier: ExecTier) {
        self.tier = tier;
    }

    /// The execution tier this run uses.
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Install a tracer for tier telemetry (`jit.deopt` events).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Invocations remaining in this run.
    pub fn remaining(&self) -> usize {
        self.limit - self.next_inv
    }

    /// Produce the next invocation's arguments (mutating memory like the
    /// surrounding program does) and charge the rest-of-program cycles.
    /// Returns `None` when the run is over.
    pub fn next_args(&mut self) -> Option<Vec<Value>> {
        if self.next_inv >= self.limit {
            return None;
        }
        let args =
            self.workload
                .args(self.ds, self.next_inv, &mut self.mem, &mut self.stream_rng);
        self.next_inv += 1;
        self.machine.cycles += self.workload.other_cycles(self.ds);
        Some(args)
    }

    /// Execute one TS invocation with `version` and return the result
    /// (true cycles inside; accounting updated). Panics on any failure —
    /// the legacy interface for fault-free paths; fault-aware drivers use
    /// [`RunHarness::try_execute`].
    pub fn execute(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> ExecResult {
        self.try_execute(version, args, opts).unwrap_or_else(|e| {
            panic!("workload {} execution failed: {e}", self.workload.name())
        })
    }

    /// Execute one TS invocation, surfacing failures (including injected
    /// version crashes) as data instead of panicking.
    ///
    /// Dispatches on the execution tier: `interp` recomputes costs per
    /// statement, `predecoded` (the default) runs the pre-decoded
    /// stream, `jit` runs the version's threaded-code backend — lowered
    /// lazily on first use and falling back to the predecoded tier
    /// permanently (per version) when lowering declines. All tiers are
    /// bit-identical in results, cycles, and machine state.
    pub fn try_execute(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> Result<ExecResult, ExecError> {
        count_invocation();
        match self.tier {
            ExecTier::Interp => {
                crate::tier::count_tier(ExecTier::Interp);
                peak_sim::execute_interp_with_scratch(
                    version,
                    args,
                    &mut self.mem,
                    &self.amap,
                    &mut self.machine,
                    opts,
                    &mut self.scratch,
                )
            }
            ExecTier::Jit => {
                if let Some(be) = crate::tier::jit_backend(version, &self.tracer) {
                    crate::tier::count_tier(ExecTier::Jit);
                    return be.execute(
                        args,
                        &mut self.mem,
                        &self.amap,
                        &mut self.machine,
                        opts,
                        &mut self.scratch,
                    );
                }
                // Version declined lowering: permanent per-version
                // fallback to the predecoded tier.
                crate::tier::count_tier(ExecTier::Predecoded);
                peak_sim::execute_with_scratch(
                    version,
                    args,
                    &mut self.mem,
                    &self.amap,
                    &mut self.machine,
                    opts,
                    &mut self.scratch,
                )
            }
            ExecTier::Predecoded => {
                crate::tier::count_tier(ExecTier::Predecoded);
                peak_sim::execute_with_scratch(
                    version,
                    args,
                    &mut self.mem,
                    &self.amap,
                    &mut self.machine,
                    opts,
                    &mut self.scratch,
                )
            }
        }
    }

    /// Measure an execution: run it and return the *noisy* measured time
    /// alongside the result. Legacy interface: fault-induced dropout does
    /// not apply here (use [`RunHarness::try_execute_timed`] for that).
    pub fn execute_timed(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> (u64, ExecResult) {
        let res = self.execute(version, args, opts);
        let measured = self.machine.timer.measure(res.true_cycles);
        (measured, res)
    }

    /// Measure an execution through the fault layer: `Ok((None, res))`
    /// means the invocation ran (cycles charged) but its reading was lost
    /// to an injected dropout; `Err` means the execution itself failed
    /// (e.g. an injected crash — the run should be abandoned).
    pub fn try_execute_timed(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> Result<(Option<u64>, ExecResult), ExecError> {
        let res = self.try_execute(version, args, opts)?;
        let measured = self.machine.measure(res.true_cycles);
        Ok((measured, res))
    }

    /// Context key for the upcoming invocation: reads the context sources
    /// (parameter values / global scalars) like the instrumented prologue
    /// does.
    pub fn context_key(
        &self,
        sources: &[peak_ir::ContextSource],
        args: &[Value],
    ) -> ContextKey {
        crate::context::key_for(sources, args, &self.mem)
    }

    /// RBR support: snapshot the given regions, charging copy cost through
    /// the cache (streaming both source and a stack-side buffer would
    /// double-charge; we charge one pass).
    pub fn save_regions(&mut self, regions: &[peak_ir::MemId]) -> Vec<(peak_ir::MemId, peak_ir::Buffer)> {
        let snap = self.mem.snapshot(regions);
        self.charge_copy(regions);
        snap
    }

    /// RBR support: restore a snapshot with the same cost model.
    pub fn restore_regions(&mut self, snap: &[(peak_ir::MemId, peak_ir::Buffer)]) {
        self.mem.restore(snap);
        let regions: Vec<peak_ir::MemId> = snap.iter().map(|(m, _)| *m).collect();
        self.charge_copy(&regions);
    }

    fn charge_copy(&mut self, regions: &[peak_ir::MemId]) {
        for &m in regions {
            let len = self.mem.buf(m).len();
            for i in 0..len {
                let c = self.machine.caches.access(self.amap.addr(m, i as i64));
                self.machine.cycles += c + COPY_OVERHEAD_PER_ELEM;
            }
        }
    }

    /// RBR inspector support: save/restore an explicit cell list (paper
    /// §2.4.2's inspector for irregular writes).
    pub fn save_cells(&mut self, cells: &[(peak_ir::MemId, i64)]) -> Vec<Value> {
        let mut vals = Vec::with_capacity(cells.len());
        for &(m, i) in cells {
            vals.push(self.mem.load(m, i));
            let c = self.machine.caches.access(self.amap.addr(m, i));
            self.machine.cycles += c + COPY_OVERHEAD_PER_ELEM;
        }
        vals
    }

    /// Restore cells saved with [`RunHarness::save_cells`].
    pub fn restore_cells(&mut self, cells: &[(peak_ir::MemId, i64)], vals: &[Value]) {
        for (&(m, i), &v) in cells.iter().zip(vals) {
            self.mem.store(m, i, v);
            let c = self.machine.caches.access(self.amap.addr(m, i));
            self.machine.cycles += c + COPY_OVERHEAD_PER_ELEM;
        }
    }

    /// Total true cycles this run has consumed so far (TS + rest of
    /// program + tuning overheads).
    pub fn cycles(&self) -> u64 {
        self.machine.cycles
    }

    /// The dataset this run uses.
    pub fn dataset(&self) -> Dataset {
        self.ds
    }

    /// The workload under test.
    pub fn workload(&self) -> &dyn Workload {
        self.workload
    }
}

/// Workload-stream seed for the train dataset (fixed: every train run
/// sees identical input, like re-running a benchmark binary).
const STREAM_SEED_TRAIN: u64 = 0x7472_6169_6e00;
/// Workload-stream seed for the ref dataset.
const STREAM_SEED_REF: u64 = 0x7265_6600;

#[cfg(test)]
mod tests {
    use super::*;
    use peak_opt::OptConfig;
    use peak_workloads::swim::SwimCalc3;

    fn prepared(w: &dyn Workload, cfg: OptConfig, spec: &MachineSpec) -> PreparedVersion {
        let cv = peak_opt::optimize(w.program(), w.ts(), &cfg);
        PreparedVersion::prepare(cv, spec)
    }

    #[test]
    fn run_is_deterministic_in_data() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let pv = prepared(&w, OptConfig::o3(), &spec);
        let run_once = |seed: u64| -> (Vec<u64>, u64) {
            let mut h = RunHarness::new(&w, Dataset::Train, &spec, seed);
            let mut cycles = Vec::new();
            for _ in 0..5 {
                let args = h.next_args().unwrap();
                let r = h.execute(&pv, &args, &ExecOptions::default());
                cycles.push(r.true_cycles);
            }
            (cycles, h.cycles())
        };
        let (c1, t1) = run_once(1);
        let (c2, t2) = run_once(2);
        // True cycles identical (same data, same machine) regardless of
        // the noise seed; only measured times differ.
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn measured_times_are_noisy_but_close() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let pv = prepared(&w, OptConfig::o3(), &spec);
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 42);
        let args = h.next_args().unwrap();
        let (measured, res) = h.execute_timed(&pv, &args, &ExecOptions::default());
        let rel = (measured as f64 - res.true_cycles as f64).abs() / res.true_cycles as f64;
        assert!(rel < 0.3, "noise within reason: {rel}");
    }

    #[test]
    fn other_cycles_charged_per_invocation() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 1);
        let before = h.cycles();
        let _ = h.next_args().unwrap();
        assert_eq!(h.cycles() - before, w.other_cycles(Dataset::Train));
    }

    #[test]
    fn save_restore_regions_roundtrip_and_cost() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 1);
        let u = w.program().mem_by_name("u").unwrap();
        let before_val = h.mem.load(u, 10);
        let before_cycles = h.cycles();
        let snap = h.save_regions(&[u]);
        h.mem.store(u, 10, Value::F64(99.0));
        h.restore_regions(&snap);
        assert_eq!(h.mem.load(u, 10), before_val);
        assert!(h.cycles() > before_cycles, "copies cost cycles");
    }

    #[test]
    fn run_ends_after_invocation_budget() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 1);
        let n = w.invocations(Dataset::Train);
        for _ in 0..n {
            assert!(h.next_args().is_some());
        }
        assert!(h.next_args().is_none());
        assert_eq!(h.remaining(), 0);
    }
}
