//! The run harness: simulates application runs of a workload with the
//! PEAK driver swapping tuning-section versions in and out (the ADAPT
//! mechanism of paper Fig. 6, minus `dlopen`).
//!
//! One [`RunHarness`] = one application run: fresh memory and machine
//! state (a new process), the workload's deterministic invocation stream,
//! and cycle accounting that includes the rest-of-program cost — the
//! quantity WHL tuning pays in full and the section-level methods avoid.

use crate::context::ContextKey;
use peak_ir::{MemoryImage, Value};
use peak_obs::Tracer;
use peak_sim::{
    AddressMap, ExecError, ExecOptions, ExecResult, ExecScratch, ExecTier, FaultPlan, MachineSpec,
    MachineState, PreparedVersion,
};
use peak_workloads::{Dataset, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cycle cost of copying one element during RBR save/restore, on top of
/// the cache traffic (loop + addressing overhead of the copy code).
const COPY_OVERHEAD_PER_ELEM: u64 = 1;

/// Flush a run's pending invocation count into the shared
/// `core.harness.invocations` counter. The per-invocation path just
/// bumps a plain field on the harness (no atomic at all); this commits
/// the batch — one `fetch_add` per run instead of one per invocation —
/// at run end and on harness drop, so metrics consumers that read after
/// jobs complete see identical totals to the unbatched scheme.
#[inline]
fn flush_invocation_count(pending: &mut u64) {
    use peak_obs::metrics::{self, Counter, MetricsRegistry};
    use std::sync::OnceLock;
    if *pending == 0 || !metrics::enabled() {
        return;
    }
    static INVOCATIONS: OnceLock<std::sync::Arc<Counter>> = OnceLock::new();
    INVOCATIONS
        .get_or_init(|| {
            MetricsRegistry::global()
                .counter("core.harness.invocations", "TS invocations executed")
        })
        .add(*pending);
    *pending = 0;
}

/// One application run.
pub struct RunHarness<'w> {
    workload: &'w dyn Workload,
    ds: Dataset,
    /// Machine state (caches, predictor, timer, cycle counter).
    pub machine: MachineState,
    /// Address layout shared by all versions of this program.
    pub amap: AddressMap,
    /// Program memory.
    pub mem: MemoryImage,
    stream_rng: StdRng,
    /// Memoized invocation stream (`Some` = replay recorded args and
    /// writes; `None` = run the live generator). See
    /// [`crate::stream_cache`]; both paths are observably identical.
    stream: Option<std::sync::Arc<peak_workloads::stream::ArgStream>>,
    next_inv: usize,
    limit: usize,
    /// Invocations executed but not yet committed to the shared metrics
    /// counter (batched per run; flushed at stream end and on drop).
    pending_invs: u64,
    /// Reusable executor buffers: the steady-state invocation path of a
    /// run allocates nothing.
    scratch: ExecScratch,
    /// Execution tier for TS invocations (default: `PEAK_TIER`, else
    /// predecoded). Any tier produces bit-identical results and cycles;
    /// they differ only in wall-clock simulation speed.
    tier: ExecTier,
    /// Telemetry handle for tier events (`jit.deopt`); disabled by
    /// default, installed by [`TuningSetup`](crate::TuningSetup).
    tracer: Tracer,
}

impl<'w> RunHarness<'w> {
    /// Start a run. `noise_seed` feeds the timer; the workload stream is
    /// seeded deterministically from the dataset so every run of the same
    /// input is identical (like re-running a benchmark binary).
    pub fn new(
        workload: &'w dyn Workload,
        ds: Dataset,
        spec: &MachineSpec,
        noise_seed: u64,
    ) -> Self {
        Self::with_faults(workload, ds, spec, noise_seed, None)
    }

    /// Start a run with an optional injected-fault plan (the robustness
    /// harness). `faults = None` is exactly [`RunHarness::new`].
    pub fn with_faults(
        workload: &'w dyn Workload,
        ds: Dataset,
        spec: &MachineSpec,
        noise_seed: u64,
        faults: Option<FaultPlan>,
    ) -> Self {
        Self::with_stream_mode(
            workload,
            ds,
            spec,
            noise_seed,
            faults,
            crate::stream_cache::enabled(),
        )
    }

    /// [`RunHarness::with_faults`] with the argument-stream mode forced:
    /// `memoized = true` replays the pooled recorded stream, `false`
    /// runs the live generator per invocation. The public constructors
    /// follow `PEAK_ARG_STREAM`; this exists for the differential suite
    /// that proves the two modes observably identical.
    pub fn with_stream_mode(
        workload: &'w dyn Workload,
        ds: Dataset,
        spec: &MachineSpec,
        noise_seed: u64,
        faults: Option<FaultPlan>,
        memoized: bool,
    ) -> Self {
        let mem_lens: Vec<usize> =
            workload.program().mems.iter().map(|m| m.len).collect();
        let amap = AddressMap::new(&mem_lens);
        let mut stream_rng =
            StdRng::seed_from_u64(peak_workloads::stream::stream_seed(ds));
        let (mem, stream) = if memoized {
            let s = crate::stream_cache::arg_stream(workload, ds);
            // The recorder consumed the same RNG sequence `setup` would
            // have; this run's RNG is never drawn from again.
            (s.init_mem.clone(), Some(s))
        } else {
            let mut mem = MemoryImage::new(workload.program());
            workload.setup(ds, &mut mem, &mut stream_rng);
            (mem, None)
        };
        let limit = workload.invocations(ds);
        let mut machine = MachineState::new(spec.clone(), noise_seed);
        if let Some(plan) = faults {
            machine.install_faults(plan);
        }
        RunHarness {
            workload,
            ds,
            machine,
            amap,
            mem,
            stream_rng,
            stream,
            next_inv: 0,
            limit,
            pending_invs: 0,
            scratch: ExecScratch::new(),
            tier: ExecTier::from_env(),
            tracer: Tracer::disabled(),
        }
    }

    /// Force the execution tier for this run (overrides `PEAK_TIER`).
    pub fn set_tier(&mut self, tier: ExecTier) {
        self.tier = tier;
    }

    /// The execution tier this run uses.
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Install a tracer for tier telemetry (`jit.deopt` events).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Invocations remaining in this run.
    pub fn remaining(&self) -> usize {
        self.limit - self.next_inv
    }

    /// Produce the next invocation's arguments (mutating memory like the
    /// surrounding program does) and charge the rest-of-program cycles.
    /// Returns `None` when the run is over.
    pub fn next_args(&mut self) -> Option<Vec<Value>> {
        if self.next_inv >= self.limit {
            flush_invocation_count(&mut self.pending_invs);
            return None;
        }
        let args = match &self.stream {
            Some(s) => {
                // Replay path: apply the recorded between-invocation
                // writes, hand out the recorded args. Exact because
                // generators never read memory content (see
                // `peak_workloads::stream`).
                let rec = &s.invocations[self.next_inv];
                self.mem.replay(&rec.writes);
                rec.args.clone()
            }
            None => self.workload.args(
                self.ds,
                self.next_inv,
                &mut self.mem,
                &mut self.stream_rng,
            ),
        };
        self.next_inv += 1;
        self.machine.cycles += self.workload.other_cycles(self.ds);
        Some(args)
    }

    /// Execute one TS invocation with `version` and return the result
    /// (true cycles inside; accounting updated). Panics on any failure —
    /// the legacy interface for fault-free paths; fault-aware drivers use
    /// [`RunHarness::try_execute`].
    pub fn execute(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> ExecResult {
        self.try_execute(version, args, opts).unwrap_or_else(|e| {
            panic!("workload {} execution failed: {e}", self.workload.name())
        })
    }

    /// Execute one TS invocation, surfacing failures (including injected
    /// version crashes) as data instead of panicking.
    ///
    /// Dispatches on the execution tier: `interp` recomputes costs per
    /// statement, `predecoded` (the default) runs the pre-decoded
    /// stream, `jit` runs the version's threaded-code backend — lowered
    /// lazily on first use and falling back to the predecoded tier
    /// permanently (per version) when lowering declines. All tiers are
    /// bit-identical in results, cycles, and machine state.
    pub fn try_execute(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> Result<ExecResult, ExecError> {
        self.pending_invs += 1;
        match self.tier {
            ExecTier::Interp => {
                crate::tier::count_tier(ExecTier::Interp);
                peak_sim::execute_interp_with_scratch(
                    version,
                    args,
                    &mut self.mem,
                    &self.amap,
                    &mut self.machine,
                    opts,
                    &mut self.scratch,
                )
            }
            ExecTier::Jit => {
                if let Some(be) = crate::tier::jit_backend(version, &self.tracer) {
                    crate::tier::count_tier(ExecTier::Jit);
                    return be.execute(
                        args,
                        &mut self.mem,
                        &self.amap,
                        &mut self.machine,
                        opts,
                        &mut self.scratch,
                    );
                }
                // Version declined lowering: permanent per-version
                // fallback to the predecoded tier.
                crate::tier::count_tier(ExecTier::Predecoded);
                peak_sim::execute_with_scratch(
                    version,
                    args,
                    &mut self.mem,
                    &self.amap,
                    &mut self.machine,
                    opts,
                    &mut self.scratch,
                )
            }
            ExecTier::Predecoded => {
                crate::tier::count_tier(ExecTier::Predecoded);
                peak_sim::execute_with_scratch(
                    version,
                    args,
                    &mut self.mem,
                    &self.amap,
                    &mut self.machine,
                    opts,
                    &mut self.scratch,
                )
            }
        }
    }

    /// Measure an execution: run it and return the *noisy* measured time
    /// alongside the result. Legacy interface: fault-induced dropout does
    /// not apply here (use [`RunHarness::try_execute_timed`] for that).
    pub fn execute_timed(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> (u64, ExecResult) {
        let res = self.execute(version, args, opts);
        let measured = self.machine.timer.measure(res.true_cycles);
        (measured, res)
    }

    /// Measure an execution through the fault layer: `Ok((None, res))`
    /// means the invocation ran (cycles charged) but its reading was lost
    /// to an injected dropout; `Err` means the execution itself failed
    /// (e.g. an injected crash — the run should be abandoned).
    pub fn try_execute_timed(
        &mut self,
        version: &PreparedVersion,
        args: &[Value],
        opts: &ExecOptions,
    ) -> Result<(Option<u64>, ExecResult), ExecError> {
        let res = self.try_execute(version, args, opts)?;
        let measured = self.machine.measure(res.true_cycles);
        Ok((measured, res))
    }

    /// Context key for the upcoming invocation: reads the context sources
    /// (parameter values / global scalars) like the instrumented prologue
    /// does.
    pub fn context_key(
        &self,
        sources: &[peak_ir::ContextSource],
        args: &[Value],
    ) -> ContextKey {
        crate::context::key_for(sources, args, &self.mem)
    }

    /// RBR support: snapshot the given regions, charging copy cost through
    /// the cache (streaming both source and a stack-side buffer would
    /// double-charge; we charge one pass).
    pub fn save_regions(&mut self, regions: &[peak_ir::MemId]) -> Vec<(peak_ir::MemId, peak_ir::Buffer)> {
        let snap = self.mem.snapshot(regions);
        self.charge_copy(regions);
        snap
    }

    /// RBR support: restore a snapshot with the same cost model.
    pub fn restore_regions(&mut self, snap: &[(peak_ir::MemId, peak_ir::Buffer)]) {
        self.mem.restore(snap);
        let regions: Vec<peak_ir::MemId> = snap.iter().map(|(m, _)| *m).collect();
        self.charge_copy(&regions);
    }

    fn charge_copy(&mut self, regions: &[peak_ir::MemId]) {
        for &m in regions {
            let len = self.mem.buf(m).len();
            for i in 0..len {
                let c = self.machine.caches.access(self.amap.addr(m, i as i64));
                self.machine.cycles += c + COPY_OVERHEAD_PER_ELEM;
            }
        }
    }

    /// RBR inspector support: save/restore an explicit cell list (paper
    /// §2.4.2's inspector for irregular writes).
    pub fn save_cells(&mut self, cells: &[(peak_ir::MemId, i64)]) -> Vec<Value> {
        let mut vals = Vec::with_capacity(cells.len());
        for &(m, i) in cells {
            vals.push(self.mem.load(m, i));
            let c = self.machine.caches.access(self.amap.addr(m, i));
            self.machine.cycles += c + COPY_OVERHEAD_PER_ELEM;
        }
        vals
    }

    /// Restore cells saved with [`RunHarness::save_cells`].
    pub fn restore_cells(&mut self, cells: &[(peak_ir::MemId, i64)], vals: &[Value]) {
        for (&(m, i), &v) in cells.iter().zip(vals) {
            self.mem.store(m, i, v);
            let c = self.machine.caches.access(self.amap.addr(m, i));
            self.machine.cycles += c + COPY_OVERHEAD_PER_ELEM;
        }
    }

    /// Total true cycles this run has consumed so far (TS + rest of
    /// program + tuning overheads).
    pub fn cycles(&self) -> u64 {
        self.machine.cycles
    }

    /// The dataset this run uses.
    pub fn dataset(&self) -> Dataset {
        self.ds
    }

    /// The workload under test.
    pub fn workload(&self) -> &dyn Workload {
        self.workload
    }
}

impl Drop for RunHarness<'_> {
    fn drop(&mut self) {
        // Commit any invocations not yet flushed (runs abandoned before
        // stream exhaustion — fault aborts, partial ratings).
        flush_invocation_count(&mut self.pending_invs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_opt::OptConfig;
    use peak_workloads::swim::SwimCalc3;

    fn prepared(w: &dyn Workload, cfg: OptConfig, spec: &MachineSpec) -> PreparedVersion {
        let cv = peak_opt::optimize(w.program(), w.ts(), &cfg);
        PreparedVersion::prepare(cv, spec)
    }

    #[test]
    fn run_is_deterministic_in_data() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let pv = prepared(&w, OptConfig::o3(), &spec);
        let run_once = |seed: u64| -> (Vec<u64>, u64) {
            let mut h = RunHarness::new(&w, Dataset::Train, &spec, seed);
            let mut cycles = Vec::new();
            for _ in 0..5 {
                let args = h.next_args().unwrap();
                let r = h.execute(&pv, &args, &ExecOptions::default());
                cycles.push(r.true_cycles);
            }
            (cycles, h.cycles())
        };
        let (c1, t1) = run_once(1);
        let (c2, t2) = run_once(2);
        // True cycles identical (same data, same machine) regardless of
        // the noise seed; only measured times differ.
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn measured_times_are_noisy_but_close() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let pv = prepared(&w, OptConfig::o3(), &spec);
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 42);
        let args = h.next_args().unwrap();
        let (measured, res) = h.execute_timed(&pv, &args, &ExecOptions::default());
        let rel = (measured as f64 - res.true_cycles as f64).abs() / res.true_cycles as f64;
        assert!(rel < 0.3, "noise within reason: {rel}");
    }

    #[test]
    fn other_cycles_charged_per_invocation() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 1);
        let before = h.cycles();
        let _ = h.next_args().unwrap();
        assert_eq!(h.cycles() - before, w.other_cycles(Dataset::Train));
    }

    #[test]
    fn save_restore_regions_roundtrip_and_cost() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 1);
        let u = w.program().mem_by_name("u").unwrap();
        let before_val = h.mem.load(u, 10);
        let before_cycles = h.cycles();
        let snap = h.save_regions(&[u]);
        h.mem.store(u, 10, Value::F64(99.0));
        h.restore_regions(&snap);
        assert_eq!(h.mem.load(u, 10), before_val);
        assert!(h.cycles() > before_cycles, "copies cost cycles");
    }

    #[test]
    fn run_ends_after_invocation_budget() {
        let w = SwimCalc3::new();
        let spec = MachineSpec::sparc_ii();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 1);
        let n = w.invocations(Dataset::Train);
        for _ in 0..n {
            assert!(h.next_args().is_some());
        }
        assert!(h.next_args().is_none());
        assert_eq!(h.remaining(), 0);
    }
}
