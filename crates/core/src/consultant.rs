//! The Rating Approach Consultant (paper Fig. 5, §3): annotates a tuning
//! section with its applicable rating methods, in increasing-overhead
//! order (CBR → MBR → RBR), based on compile-time analysis plus a profile
//! run with the tuning input.

use crate::context::{ContextKey, ContextProfile};
use crate::mbr::{self, MbrModel};
use peak_ir::{context_set, mem_effects, ContextAnalysis, ContextSource, MemId, MemoryImage};
use peak_workloads::{Dataset, Workload};
use peak_util::{Json, ToJson};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A rating method (plus the two baselines of §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Context-based rating.
    Cbr,
    /// Model-based rating.
    Mbr,
    /// Re-execution-based rating (improved protocol by default).
    Rbr,
    /// Whole-program rating (state-of-the-art baseline).
    Whl,
    /// Context-oblivious averaging (naive baseline).
    Avg,
}

impl ToJson for Method {
    fn to_json(&self) -> Json {
        // Variant-name strings, matching serde's external enum tagging so
        // the committed golden result files stay comparable.
        Json::Str(
            match self {
                Method::Cbr => "Cbr",
                Method::Mbr => "Mbr",
                Method::Rbr => "Rbr",
                Method::Whl => "Whl",
                Method::Avg => "Avg",
            }
            .to_owned(),
        )
    }
}

impl Method {
    /// Parse the JSON variant string written by [`ToJson`].
    pub fn from_json_name(name: &str) -> Option<Method> {
        Some(match name {
            "Cbr" => Method::Cbr,
            "Mbr" => Method::Mbr,
            "Rbr" => Method::Rbr,
            "Whl" => Method::Whl,
            "Avg" => Method::Avg,
            _ => return None,
        })
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Cbr => "CBR",
            Method::Mbr => "MBR",
            Method::Rbr => "RBR",
            Method::Whl => "WHL",
            Method::Avg => "AVG",
        }
    }
}

/// CBR plan: which sources vary, and the contexts seen in the profile.
#[derive(Debug, Clone)]
pub struct CbrPlan {
    /// Whether the context count fits the consultant's budget. A plan
    /// over budget is excluded from the method order but can still be
    /// forced (Figure 7 plots MGRID_CBR exactly to show the pathology).
    pub within_budget: bool,
    /// All context sources from the Figure-1 analysis.
    pub sources: Vec<ContextSource>,
    /// Indices of sources that vary at run time (rest are run-time
    /// constants, removed per §2.2).
    pub varying: Vec<usize>,
    /// Distinct (reduced) contexts in the profile.
    pub contexts: Vec<(ContextKey, usize)>,
}

impl CbrPlan {
    /// The most frequent context (offline tuning rates this one, §2.2).
    pub fn important_context(&self) -> &ContextKey {
        &self.contexts[0].0
    }
}

/// RBR plan: what to save/restore.
#[derive(Debug, Clone)]
pub struct RbrPlan {
    /// `Modified_Input` regions (read ∩ written), paper Eq. 6.
    pub modified_regions: Vec<MemId>,
    /// Full input regions (reads) — the basic method's larger save set.
    pub input_regions: Vec<MemId>,
    /// Total elements in the modified regions.
    pub modified_elems: usize,
    /// Use the write-inspector (cell-granular undo log) instead of whole
    /// region copies (paper §2.4.2's irregular-writes optimization).
    pub inspector: bool,
}

/// Consultant output for one TS.
#[derive(Debug)]
pub struct Consultation {
    /// CBR plan when applicable.
    pub cbr: Option<CbrPlan>,
    /// MBR model when applicable.
    pub mbr: Option<MbrModel>,
    /// RBR always has a plan.
    pub rbr: RbrPlan,
    /// Applicable methods, least-overhead first (the initial choice is
    /// the first; rating-time failures move down the list, §3).
    pub order: Vec<Method>,
}

/// Context-count budget for CBR (MGRID's 12-level stream exceeds this —
/// the Figure-7 MGRID_CBR pathology).
pub const MAX_CBR_CONTEXTS: usize = 8;
/// Minimum profile hits for the most important context.
pub const MIN_CONTEXT_HITS: usize = 10;
/// MBR profile-VAR acceptance threshold: above this the linear model
/// explains the TS too poorly to rate with (the integer benchmarks).
pub const MAX_MBR_PROFILE_VAR: f64 = 0.08;
/// Region size beyond which RBR uses the write inspector.
pub const INSPECTOR_THRESHOLD_ELEMS: usize = 1024;
/// Profile length (invocations).
pub const PROFILE_INVOCATIONS: usize = 160;

/// Run the consultant for a workload on a machine.
pub fn consult(workload: &dyn Workload, spec: &peak_sim::MachineSpec) -> Consultation {
    let prog = workload.program();
    let ts = workload.ts();
    // --- RBR plan (always applicable; our TSs avoid side-effecting
    // library calls by construction, §2.4.1). ---
    let effects = mem_effects(prog, ts);
    let modified = effects.modified_input();
    // Restoring must undo every write; writes to regions the TS never
    // reads still change program state, so the save set is the write set
    // (which contains read∩written). The paper's Modified_Input is the
    // part that affects *re-execution fidelity*; we save all written
    // regions for state correctness and report the Eq. 6 set separately.
    let save_set = effects.writes.clone();
    let modified_elems: usize = {
        let mem = MemoryImage::new(prog);
        mem.region_elems(&save_set)
    };
    let rbr = RbrPlan {
        modified_regions: save_set,
        input_regions: effects.reads.clone(),
        modified_elems,
        inspector: modified_elems > INSPECTOR_THRESHOLD_ELEMS,
    };
    let _ = modified;
    // --- CBR: Figure-1 analysis + context profile. ---
    let mut cbr = None;
    if let ContextAnalysis::Applicable(sources) = context_set(prog.func(ts)) {
        // Profile the context stream.
        let mut mem = MemoryImage::new(prog);
        let mut rng = StdRng::seed_from_u64(0x7472_6169_6e00);
        workload.setup(Dataset::Train, &mut mem, &mut rng);
        let mut profile = ContextProfile::new(sources.len());
        let n = PROFILE_INVOCATIONS.min(workload.invocations(Dataset::Train));
        for inv in 0..n {
            let args = workload.args(Dataset::Train, inv, &mut mem, &mut rng);
            profile.record(crate::context::key_for(&sources, &args, &mem));
        }
        let varying = profile.varying_sources();
        // Reduce keys to varying sources and histogram them.
        let mut reduced = ContextProfile::new(varying.len());
        {
            let mut mem = MemoryImage::new(prog);
            let mut rng = StdRng::seed_from_u64(0x7472_6169_6e00);
            workload.setup(Dataset::Train, &mut mem, &mut rng);
            for inv in 0..n {
                let args = workload.args(Dataset::Train, inv, &mut mem, &mut rng);
                let key = crate::context::key_for(&sources, &args, &mem);
                reduced.record(crate::context::reduce_key(&key, &varying));
            }
        }
        let contexts = reduced.context_histogram();
        let within_budget = contexts.len() <= MAX_CBR_CONTEXTS
            && contexts.first().is_some_and(|(_, c)| *c >= MIN_CONTEXT_HITS.min(n / 4));
        if !contexts.is_empty() {
            cbr = Some(CbrPlan { within_budget, sources, varying, contexts });
        }
    }
    // --- MBR: component discovery + timing-fit quality. ---
    let mut mbr_model = mbr::discover(workload);
    if let Some(model) = &mut mbr_model {
        // Timing profile on the simulator with the instrumented -O3
        // version: does the linear model explain the time?
        let quality_ok = profile_mbr_quality(workload, spec, model);
        if !quality_ok {
            mbr_model = None;
        }
    }
    // --- Order: CBR → MBR → RBR (increasing overhead, §3). ---
    let mut order = Vec::new();
    if cbr.as_ref().is_some_and(|p| p.within_budget) {
        order.push(Method::Cbr);
    }
    if mbr_model.is_some() {
        order.push(Method::Mbr);
    }
    order.push(Method::Rbr);
    Consultation { cbr, mbr: mbr_model, rbr, order }
}

/// Time the instrumented -O3 version over the profile stream and fit the
/// component model; accept MBR when the fit's VAR is small.
fn profile_mbr_quality(
    workload: &dyn Workload,
    spec: &peak_sim::MachineSpec,
    model: &mut MbrModel,
) -> bool {
    use crate::harness::RunHarness;
    use crate::version_cache::{VersionCache, VersionKey};
    let cfg = peak_opt::OptConfig::o3();
    let pv = VersionCache::global().get_or_prepare(
        VersionKey::instrumented(workload, cfg, spec.kind),
        spec,
        || crate::compile::compile_validated(&model.instrumented, model.ts, &cfg),
    );
    let mut h = RunHarness::new(workload, Dataset::Train, spec, 0xbeef);
    let opts = peak_sim::ExecOptions { record_writes: false, num_counters: model.num_counters };
    let mut times = Vec::new();
    let mut counts = Vec::new();
    let n = PROFILE_INVOCATIONS.min(workload.invocations(Dataset::Train));
    for _ in 0..n {
        let Some(args) = h.next_args() else { break };
        let (measured, res) = h.execute_timed(&pv, &args, &opts);
        times.push(measured as f64);
        counts.push(model.count_row(&args, &res.counters));
    }
    // Trim outlier rows jointly (by time) before fitting.
    let kept = crate::stats::trim_outliers(&times, crate::stats::OUTLIER_K);
    let keep_set: std::collections::HashSet<u64> = kept.iter().map(|t| t.to_bits()).collect();
    let mut ft = Vec::new();
    let mut fc = Vec::new();
    for (t, c) in times.iter().zip(&counts) {
        if keep_set.contains(&t.to_bits()) {
            ft.push(*t);
            fc.push(c.clone());
        }
    }
    match model.fit_profile_times(&ft, &fc) {
        Some(reg) => reg.var <= MAX_MBR_PROFILE_VAR,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_sim::MachineSpec;
    use peak_workloads::*;

    fn order_of(w: &dyn Workload) -> Vec<Method> {
        consult(w, &MachineSpec::sparc_ii()).order
    }

    #[test]
    fn swim_prefers_cbr_with_one_context() {
        let w = swim::SwimCalc3::new();
        let c = consult(&w, &MachineSpec::sparc_ii());
        assert_eq!(c.order[0], Method::Cbr, "{:?}", c.order);
        let plan = c.cbr.as_ref().unwrap();
        assert_eq!(plan.contexts.len(), 1, "single context (n is a run-time constant)");
        assert!(plan.varying.is_empty(), "n never varies");
    }

    #[test]
    fn apsi_cbr_with_three_contexts() {
        let w = apsi::ApsiRadb4::new();
        let c = consult(&w, &MachineSpec::sparc_ii());
        assert_eq!(c.order[0], Method::Cbr);
        assert_eq!(c.cbr.as_ref().unwrap().contexts.len(), 3);
    }

    #[test]
    fn mgrid_rejects_cbr_keeps_mbr() {
        let w = mgrid::MgridResid::new();
        let c = consult(&w, &MachineSpec::sparc_ii());
        let plan = c.cbr.as_ref().expect("plan kept for forced-CBR experiments");
        assert!(!plan.within_budget, "11 contexts exceed the CBR budget");
        assert!(plan.contexts.len() > MAX_CBR_CONTEXTS);
        assert_eq!(c.order[0], Method::Mbr, "{:?}", c.order);
        assert!(!c.order.contains(&Method::Cbr));
    }

    #[test]
    fn integer_benchmarks_fall_through_to_rbr() {
        for w in [
            Box::new(bzip2::Bzip2FullGtU::new()) as Box<dyn Workload>,
            Box::new(crafty::CraftyAttacked::new()),
            Box::new(gzip::GzipLongestMatch::new()),
            Box::new(twolf::TwolfNewDboxA::new()),
        ] {
            let order = order_of(w.as_ref());
            assert_eq!(
                order.first(),
                Some(&Method::Rbr),
                "{} should land on RBR: {:?}",
                w.name(),
                order
            );
        }
    }

    #[test]
    fn art_lands_on_rbr() {
        let w = art::ArtMatch::new();
        let order = order_of(&w);
        assert_eq!(order.first(), Some(&Method::Rbr), "{order:?}");
    }

    #[test]
    fn rbr_plans_differ_in_inspector_mode() {
        // SWIM writes big dense arrays → region copies; EQUAKE writes a
        // large region sparsely → inspector.
        let swim_plan = consult(&swim::SwimCalc3::new(), &MachineSpec::sparc_ii()).rbr;
        assert!(!swim_plan.modified_regions.is_empty());
        let eq_plan = consult(&equake::EquakeSmvp::new(), &MachineSpec::sparc_ii()).rbr;
        assert!(eq_plan.inspector, "vout is large: {} elems", eq_plan.modified_elems);
    }

    #[test]
    fn rbr_always_last_in_order() {
        for w in all_workloads() {
            let order = order_of(w.as_ref());
            assert_eq!(order.last(), Some(&Method::Rbr), "{}", w.name());
        }
    }
}
