//! Online, adaptive tuning — the paper's §6 outlook ("the presented
//! rating methods are also applicable to an online, adaptive optimization
//! scenario") and the ADAPT substrate of §4.2/Fig. 6.
//!
//! The tuner keeps, per context, a *best* and an *experimental* version
//! (paper Fig. 6) and alternates Dynamic-Feedback-style production and
//! sampling phases: most invocations run the incumbent, every `k`-th runs
//! the experiment; when both CBR windows converge the winner is promoted
//! and the next candidate enters. Because ratings are per-context, two
//! contexts of the same TS can settle on different versions — the payoff
//! the paper's §2.2 anticipates for adaptive use.

use crate::context::{reduce_key, ContextKey};
use crate::harness::RunHarness;
use crate::stats::Window;
use crate::version_cache::VersionCache;
use peak_opt::OptConfig;
use peak_sim::{ExecOptions, MachineSpec, PreparedVersion};
use peak_workloads::Workload;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-context adaptive state.
#[derive(Debug)]
struct CtxState {
    best: usize,
    experiment: usize,
    best_window: Window,
    exp_window: Window,
    promotions: u32,
    decisions: u32,
}

/// Summary of one adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Per context: (key, winning candidate index, promotions, decisions).
    pub winners: Vec<(ContextKey, usize, u32, u32)>,
    /// Total invocations executed.
    pub invocations: u64,
    /// Invocations spent on experimental versions (the sampling overhead).
    pub sampling_invocations: u64,
    /// Total run cycles.
    pub cycles: u64,
}

/// The adaptive tuner.
pub struct AdaptiveTuner {
    candidates: Vec<OptConfig>,
    versions: Vec<Arc<PreparedVersion>>,
    sources: Vec<peak_ir::ContextSource>,
    varying: Vec<usize>,
    /// Run the experiment every `sample_every`-th matching invocation.
    pub sample_every: usize,
    window_min: usize,
    window_max: usize,
    var_threshold: f64,
}

impl AdaptiveTuner {
    /// Build the tuner: compiles every candidate up front (the paper's
    /// remote optimizer would produce them on demand). Candidate 0 is the
    /// initial best everywhere.
    pub fn new(workload: &dyn Workload, spec: &MachineSpec, candidates: Vec<OptConfig>) -> Self {
        assert!(candidates.len() >= 2, "need an incumbent and at least one experiment");
        let versions = candidates
            .iter()
            .map(|c| VersionCache::global().prepare_workload(workload, spec, *c))
            .collect();
        // Context structure from the Figure-1 analysis; adaptive tuning
        // degrades to AVG-per-everything when CBR does not apply.
        let (sources, varying) =
            match peak_ir::context_set(workload.program().func(workload.ts())) {
                peak_ir::ContextAnalysis::Applicable(sources) => {
                    let varying = (0..sources.len()).collect();
                    (sources, varying)
                }
                peak_ir::ContextAnalysis::NotApplicable(_) => (Vec::new(), Vec::new()),
            };
        AdaptiveTuner {
            candidates,
            versions,
            sources,
            varying,
            sample_every: 4,
            window_min: 8,
            window_max: 64,
            var_threshold: 0.01,
        }
    }

    /// Drive one application run adaptively, returning the outcome.
    pub fn run(&self, h: &mut RunHarness<'_>) -> AdaptiveOutcome {
        let mut states: HashMap<ContextKey, CtxState> = HashMap::new();
        let opts = ExecOptions::default();
        let mut invocations = 0u64;
        let mut sampling = 0u64;
        let mut tick = 0usize;
        while let Some(args) = h.next_args() {
            invocations += 1;
            let key = reduce_key(&h.context_key(&self.sources, &args), &self.varying);
            let n_versions = self.versions.len();
            let st = states.entry(key).or_insert_with(|| CtxState {
                best: 0,
                experiment: 1,
                best_window: Window::with(self.window_min, self.window_max, self.var_threshold),
                exp_window: Window::with(self.window_min, self.window_max, self.var_threshold),
                promotions: 0,
                decisions: 0,
            });
            tick += 1;
            let experimenting =
                st.experiment < n_versions && tick.is_multiple_of(self.sample_every);
            let vi = if experimenting { st.experiment } else { st.best };
            let (measured, _) = h.execute_timed(&self.versions[vi], &args, &opts);
            if experimenting {
                sampling += 1;
                st.exp_window.push(measured as f64);
            } else if st.experiment < n_versions {
                st.best_window.push(measured as f64);
            }
            // Decision point.
            if st.experiment < n_versions
                && (st.best_window.converged() || st.best_window.exhausted())
                && (st.exp_window.converged() || st.exp_window.exhausted())
            {
                st.decisions += 1;
                let b = st.best_window.summary().mean;
                let e = st.exp_window.summary().mean;
                if e < b * 0.995 {
                    st.best = st.experiment;
                    st.promotions += 1;
                }
                st.experiment += 1;
                st.best_window =
                    Window::with(self.window_min, self.window_max, self.var_threshold);
                st.exp_window =
                    Window::with(self.window_min, self.window_max, self.var_threshold);
            }
        }
        let mut winners: Vec<(ContextKey, usize, u32, u32)> = states
            .into_iter()
            .map(|(k, s)| (k, s.best, s.promotions, s.decisions))
            .collect();
        winners.sort_by(|a, b| a.0.cmp(&b.0));
        AdaptiveOutcome {
            winners,
            invocations,
            sampling_invocations: sampling,
            cycles: h.cycles(),
        }
    }

    /// The candidate configurations (index-aligned with winners).
    pub fn candidates(&self) -> &[OptConfig] {
        &self.candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_opt::Flag;
    use peak_workloads::{apsi::ApsiRadb4, Dataset};

    fn tuner_for_apsi(candidates: Vec<OptConfig>) -> (ApsiRadb4, AdaptiveTuner) {
        let w = ApsiRadb4::new();
        let spec = MachineSpec::pentium_iv();
        let t = AdaptiveTuner::new(&w, &spec, candidates);
        (w, t)
    }

    #[test]
    fn adaptive_run_covers_all_contexts() {
        let (w, tuner) = tuner_for_apsi(vec![
            OptConfig::o3(),
            OptConfig::o3().without(Flag::LoopUnroll),
        ]);
        let spec = MachineSpec::pentium_iv();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 3);
        let out = tuner.run(&mut h);
        assert_eq!(out.winners.len(), 3, "radb4 has three contexts: {:?}", out.winners);
        assert_eq!(out.invocations as usize, w.invocations(Dataset::Train));
        // Sampling overhead stays a bounded fraction.
        assert!(out.sampling_invocations * 2 < out.invocations);
        // Every context reached at least one decision.
        for (_, _, _, decisions) in &out.winners {
            assert!(*decisions >= 1);
        }
    }

    #[test]
    fn sampling_phase_ratio_respected() {
        let (w, mut_tuner) = tuner_for_apsi(vec![
            OptConfig::o3(),
            OptConfig::o3().without(Flag::ScheduleInsns),
        ]);
        let tuner = mut_tuner;
        let spec = MachineSpec::pentium_iv();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 4);
        let out = tuner.run(&mut h);
        // At most 1 in sample_every invocations is experimental.
        assert!(
            out.sampling_invocations <= out.invocations / tuner.sample_every as u64 + 1,
            "{} of {}",
            out.sampling_invocations,
            out.invocations
        );
    }

    /// The paper's per-context payoff (§2.2: "The best versions for
    /// different contexts may be different"): on APSI's (ido=1, l1=256)
    /// shape the inner loop runs a single trip, so -O3's per-iteration
    /// machinery (prefetch look-ahead, unroll guards) is pure overhead and
    /// -O0 wins — while the fat (64, 4) shape favours -O3 by ~1.7×. The
    /// adaptive tuner must find exactly this split.
    #[test]
    fn contexts_settle_on_different_winners() {
        let (w, tuner) = tuner_for_apsi(vec![OptConfig::o3(), OptConfig::o0()]);
        let spec = MachineSpec::pentium_iv();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 5);
        let out = tuner.run(&mut h);
        assert_eq!(out.winners.len(), 3);
        let winner_of = |ido: u64, l1: u64| {
            out.winners
                .iter()
                .find(|(k, ..)| k.0 == vec![ido, l1])
                .map(|(_, w, ..)| *w)
                .expect("context present")
        };
        assert_eq!(winner_of(1, 256), 1, "trip-1 shape prefers -O0");
        assert_eq!(winner_of(64, 4), 0, "fat shape keeps -O3");
    }

    /// Promotion works in the other direction too: with -O0 as the
    /// incumbent, the shapes that favour -O3 adopt it.
    #[test]
    fn better_challenger_promoted_where_it_wins() {
        let (w, tuner) = tuner_for_apsi(vec![OptConfig::o0(), OptConfig::o3()]);
        let spec = MachineSpec::pentium_iv();
        let mut h = RunHarness::new(&w, Dataset::Train, &spec, 6);
        let out = tuner.run(&mut h);
        let winner_of = |ido: u64, l1: u64| {
            out.winners
                .iter()
                .find(|(k, ..)| k.0 == vec![ido, l1])
                .map(|(_, w, ..)| *w)
                .expect("context present")
        };
        assert_eq!(winner_of(64, 4), 1, "fat shape adopts -O3");
        assert_eq!(winner_of(8, 32), 1, "middle shape adopts -O3");
        assert_eq!(winner_of(1, 256), 0, "trip-1 shape keeps -O0");
    }
}
