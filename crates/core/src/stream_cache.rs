//! Process-wide pool of memoized argument streams.
//!
//! Companion to [`crate::version_cache`]: where that pool dedups
//! *compilation* work across harnesses, this one dedups *argument
//! generation*. A stream is materialized at most once per (workload,
//! dataset) per process ([`peak_workloads::stream::ArgStream`]) and
//! shared via `Arc` — every `RunHarness` after the first clones the
//! post-setup image and replays recorded writes instead of re-running
//! the generator.
//!
//! Set `PEAK_ARG_STREAM=off` (or `0`) to disable memoization and run
//! the live generator per invocation (the reference behaviour the
//! differential suite compares against).

use peak_workloads::stream::ArgStream;
use peak_workloads::{Dataset, Workload};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Whether harnesses should use memoized streams (default yes).
pub fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        !matches!(
            std::env::var("PEAK_ARG_STREAM").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

type Slot = Arc<OnceLock<Arc<ArgStream>>>;

fn pool() -> &'static Mutex<HashMap<(&'static str, Dataset), Slot>> {
    static POOL: OnceLock<Mutex<HashMap<(&'static str, Dataset), Slot>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared stream for (workload, dataset), materializing on first
/// request. Materialization runs *outside* the pool lock (per-key
/// `OnceLock` slots), so two threads asking for different streams never
/// serialize on each other's generator run, and two asking for the same
/// stream build it exactly once.
pub fn arg_stream(w: &dyn Workload, ds: Dataset) -> Arc<ArgStream> {
    let slot = {
        let mut map = pool().lock().unwrap();
        map.entry((w.name(), ds)).or_default().clone()
    };
    slot.get_or_init(|| Arc::new(ArgStream::materialize(w, ds))).clone()
}

/// (streams resident, approximate bytes) — introspection for stats
/// surfaces.
pub fn stats() -> (usize, usize) {
    let map = pool().lock().unwrap();
    let mut n = 0;
    let mut bytes = 0;
    for slot in map.values() {
        if let Some(s) = slot.get() {
            n += 1;
            bytes += s.approx_bytes();
        }
    }
    (n, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::swim::SwimCalc3;

    #[test]
    fn pool_dedups_and_shares() {
        let w = SwimCalc3::new();
        let a = arg_stream(&w, Dataset::Train);
        let b = arg_stream(&w, Dataset::Train);
        assert!(Arc::ptr_eq(&a, &b));
        let r = arg_stream(&w, Dataset::Ref);
        assert!(!Arc::ptr_eq(&a, &r));
        let (n, bytes) = stats();
        assert!(n >= 2);
        assert!(bytes > 0);
    }
}
