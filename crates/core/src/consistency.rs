//! The Table 1 experiment: consistency of rating approaches.
//!
//! For each tuning section, rate a single experimental version compiled
//! under -O3 (identical to the base) while sampling EVALs uniformly
//! through execution with different window sizes `w`. The rating error is
//! `X_i = V_i/V̄ − 1` for CBR/MBR and `X_i = V_i − 1` for RBR (the ideal
//! RBR rating of a version against itself is exactly 1) — paper Eq. 7-10.

use crate::consultant::{consult, Method};
use crate::harness::RunHarness;
use crate::stats;
use crate::version_cache::{VersionCache, VersionKey};
use peak_obs::{event, Tracer};
use peak_opt::OptConfig;
use peak_sim::{ExecOptions, MachineSpec, SimMetrics};
use peak_util::{Json, ToJson};
use peak_workloads::{Dataset, Workload};

/// One row of Table 1 (one context for multi-context CBR sections).
#[derive(Debug, Clone)]
pub struct ConsistencyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Tuning-section name.
    pub ts: String,
    /// Rating approach used.
    pub method: Method,
    /// Context index (1-based) for CBR rows; 0 otherwise.
    pub context: usize,
    /// Invocations of the TS in one run (this reproduction's scaled
    /// count).
    pub invocations: usize,
    /// Per window size: (w, mean×100, stddev×100) — the paper's
    /// "Mean (Standard Deviation) * 100" columns.
    pub cells: Vec<(usize, f64, f64)>,
}

impl ToJson for ConsistencyRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("ts", self.ts.to_json()),
            ("method", self.method.to_json()),
            ("context", self.context.to_json()),
            ("invocations", self.invocations.to_json()),
            ("cells", self.cells.to_json()),
        ])
    }
}

/// Window sizes of Table 1.
pub const WINDOW_SIZES: [usize; 5] = [10, 20, 40, 80, 160];

/// Raw samples collected per context (enough for ≥ 15 windows at w=160).
const RAW_SAMPLES: usize = 2400;
/// Cap on runs while collecting.
const MAX_RUNS: usize = 400;

/// Collect the consistency rows for one workload on one machine.
pub fn consistency_rows(workload: &dyn Workload, spec: &MachineSpec) -> Vec<ConsistencyRow> {
    consistency_rows_traced(workload, spec, &Tracer::disabled())
}

/// [`consistency_rows`] with telemetry: spans each TS's collection,
/// emits per-run simulator metrics and a `table1.row` event per
/// finished row. A disabled tracer makes this exactly
/// [`consistency_rows`] (which delegates here).
pub fn consistency_rows_traced(
    workload: &dyn Workload,
    spec: &MachineSpec,
    tracer: &Tracer,
) -> Vec<ConsistencyRow> {
    let consultation = consult(workload, spec);
    let method = consultation.order[0];
    let _span = if tracer.enabled() {
        Some(tracer.span(
            "table1.collect",
            vec![
                ("benchmark".to_owned(), Json::Str(workload.name().to_owned())),
                ("ts".to_owned(), Json::Str(workload.ts_name().to_owned())),
                ("method".to_owned(), Json::Str(method.name().to_owned())),
            ],
        ))
    } else {
        None
    };
    let rows = match method {
        Method::Cbr => cbr_rows(workload, spec, &consultation, tracer),
        Method::Mbr => vec![mbr_row(workload, spec, &consultation, tracer)],
        _ => vec![rbr_row(workload, spec, &consultation, tracer)],
    };
    if tracer.enabled() {
        for row in &rows {
            tracer.emit(
                "table1.row",
                vec![
                    ("benchmark".to_owned(), Json::Str(row.benchmark.clone())),
                    ("ts".to_owned(), Json::Str(row.ts.clone())),
                    ("method".to_owned(), Json::Str(row.method.name().to_owned())),
                    ("context".to_owned(), Json::U(row.context as u64)),
                    ("invocations".to_owned(), Json::U(row.invocations as u64)),
                    ("cells".to_owned(), row.cells.to_json()),
                ],
            );
        }
    }
    rows
}

/// Per-run simulator provenance for the Table 1 collectors (the tuning
/// paths get the equivalent event from `TuningSetup::absorb_run`).
fn emit_run(tracer: &Tracer, run: usize, seed: u64, h: &RunHarness<'_>) {
    if !tracer.enabled() {
        return;
    }
    let mut fields = vec![
        ("run".to_owned(), Json::U(run as u64)),
        ("seed".to_owned(), Json::U(seed)),
    ];
    if let Json::Obj(pairs) = SimMetrics::snapshot(&h.machine).to_json() {
        fields.extend(pairs);
    }
    tracer.emit("sim.run", fields);
}

fn chunked_stats(samples: &[f64], w: usize, relative: bool) -> (f64, f64) {
    // V_i per window of w samples.
    let vs: Vec<f64> = samples
        .chunks_exact(w)
        .map(|c| stats::robust_summary(c).mean)
        .collect();
    let vbar = if relative {
        vs.iter().sum::<f64>() / vs.len().max(1) as f64
    } else {
        1.0
    };
    let xs: Vec<f64> = vs.iter().map(|v| v / vbar - 1.0).collect();
    let s = stats::summarize(&xs);
    (s.mean * 100.0, s.std_dev() * 100.0)
}

fn cbr_rows(
    workload: &dyn Workload,
    spec: &MachineSpec,
    consultation: &crate::consultant::Consultation,
    tracer: &Tracer,
) -> Vec<ConsistencyRow> {
    let plan = consultation.cbr.as_ref().expect("CBR row needs plan");
    let pv = VersionCache::global().prepare_workload(workload, spec, OptConfig::o3());
    let opts = ExecOptions::default();
    let n_ctx = plan.contexts.len();
    let mut per_ctx: Vec<Vec<f64>> = vec![Vec::new(); n_ctx];
    let mut seed = 100;
    let mut runs = 0;
    while per_ctx.iter().any(|s| s.len() < RAW_SAMPLES) && runs < MAX_RUNS {
        runs += 1;
        seed += 1;
        let mut h = RunHarness::new(workload, Dataset::Train, spec, seed);
        while let Some(args) = h.next_args() {
            let key = h.context_key(&plan.sources, &args);
            let reduced = crate::context::reduce_key(&key, &plan.varying);
            let ctx = plan.contexts.iter().position(|(k, _)| *k == reduced);
            let (measured, _) = h.execute_timed(&pv, &args, &opts);
            if let Some(c) = ctx {
                if per_ctx[c].len() < RAW_SAMPLES {
                    per_ctx[c].push(measured as f64);
                }
            }
        }
        emit_run(tracer, runs, seed, &h);
    }
    if tracer.enabled() {
        let kept: Vec<u64> = per_ctx.iter().map(|s| s.len() as u64).collect();
        event!(tracer, "cbr.contexts_sampled", kept = kept.to_json(), runs = runs as u64);
    }
    per_ctx
        .into_iter()
        .enumerate()
        .map(|(c, samples)| ConsistencyRow {
            benchmark: workload.name().to_string(),
            ts: workload.ts_name().to_string(),
            method: Method::Cbr,
            context: if n_ctx > 1 { c + 1 } else { 0 },
            invocations: workload.invocations(Dataset::Train),
            cells: WINDOW_SIZES
                .iter()
                .map(|&w| {
                    let (m, s) = chunked_stats(&samples, w, true);
                    (w, m, s)
                })
                .collect(),
        })
        .collect()
}

fn mbr_row(
    workload: &dyn Workload,
    spec: &MachineSpec,
    consultation: &crate::consultant::Consultation,
    tracer: &Tracer,
) -> ConsistencyRow {
    let model = consultation.mbr.as_ref().expect("MBR row needs model").clone();
    let pv = VersionCache::global().get_or_prepare(
        VersionKey::instrumented(workload, OptConfig::o3(), spec.kind),
        spec,
        || crate::compile::compile_validated(&model.instrumented, model.ts, &OptConfig::o3()),
    );
    let opts = ExecOptions { record_writes: false, num_counters: model.num_counters };
    let mut times: Vec<f64> = Vec::new();
    let mut counts: Vec<Vec<f64>> = Vec::new();
    let mut seed = 200;
    let mut runs = 0;
    while times.len() < RAW_SAMPLES && runs < MAX_RUNS {
        runs += 1;
        seed += 1;
        let mut h = RunHarness::new(workload, Dataset::Train, spec, seed);
        while let Some(args) = h.next_args() {
            let (measured, res) = h.execute_timed(&pv, &args, &opts);
            times.push(measured as f64);
            counts.push(model.count_row(&args, &res.counters));
        }
        emit_run(tracer, runs, seed, &h);
    }
    // V_i per window: regression over each chunk, EVAL from the model.
    let cells = WINDOW_SIZES
        .iter()
        .map(|&w| {
            let vs: Vec<f64> = times
                .chunks_exact(w)
                .zip(counts.chunks_exact(w))
                .filter_map(|(t, c)| {
                    let kept = stats::trim_outliers(t, stats::OUTLIER_K);
                    let keep: std::collections::HashSet<u64> =
                        kept.iter().map(|x| x.to_bits()).collect();
                    let mut ft = Vec::new();
                    let mut fc = Vec::new();
                    for (x, row) in t.iter().zip(c) {
                        if keep.contains(&x.to_bits()) {
                            ft.push(*x);
                            fc.push(row.clone());
                        }
                    }
                    crate::linreg::solve(&ft, &fc).map(|reg| model.eval_of(&reg))
                })
                .collect();
            let vbar = vs.iter().sum::<f64>() / vs.len().max(1) as f64;
            let xs: Vec<f64> = vs.iter().map(|v| v / vbar - 1.0).collect();
            let s = stats::summarize(&xs);
            (w, s.mean * 100.0, s.std_dev() * 100.0)
        })
        .collect();
    ConsistencyRow {
        benchmark: workload.name().to_string(),
        ts: workload.ts_name().to_string(),
        method: Method::Mbr,
        context: 0,
        invocations: workload.invocations(Dataset::Train),
        cells,
    }
}

fn rbr_row(
    workload: &dyn Workload,
    spec: &MachineSpec,
    consultation: &crate::consultant::Consultation,
    tracer: &Tracer,
) -> ConsistencyRow {
    let plan = &consultation.rbr;
    let pv = VersionCache::global().prepare_workload(workload, spec, OptConfig::o3());
    let opts_plain = ExecOptions::default();
    let opts_record = ExecOptions { record_writes: true, num_counters: 0 };
    let mut samples: Vec<f64> = Vec::new();
    let mut seed = 300;
    let mut runs = 0;
    let mut flip = false;
    while samples.len() < RAW_SAMPLES && runs < MAX_RUNS {
        runs += 1;
        seed += 1;
        let mut h = RunHarness::new(workload, Dataset::Train, spec, seed);
        while let Some(args) = h.next_args() {
            if samples.len() >= RAW_SAMPLES {
                break;
            }
            // Improved protocol, experimental version = base version.
            let r = if plan.inspector {
                let res = h.execute(&pv, &args, &opts_record);
                let cells: Vec<(peak_ir::MemId, i64)> =
                    res.writes.iter().map(|(m, i, _)| (*m, *i)).collect();
                let vals: Vec<peak_ir::Value> = res.writes.iter().map(|(_, _, v)| *v).collect();
                h.restore_cells(&cells, &vals);
                let (t1, _) = h.execute_timed(&pv, &args, &opts_plain);
                h.restore_cells(&cells, &vals);
                let (t2, _) = h.execute_timed(&pv, &args, &opts_plain);
                if flip { t2 as f64 / t1.max(1) as f64 } else { t1 as f64 / t2.max(1) as f64 }
            } else {
                let snap = h.save_regions(&plan.modified_regions);
                let _ = h.execute(&pv, &args, &opts_plain);
                h.restore_regions(&snap);
                let (t1, _) = h.execute_timed(&pv, &args, &opts_plain);
                h.restore_regions(&snap);
                let (t2, _) = h.execute_timed(&pv, &args, &opts_plain);
                if flip { t2 as f64 / t1.max(1) as f64 } else { t1 as f64 / t2.max(1) as f64 }
            };
            flip = !flip;
            samples.push(r);
        }
        emit_run(tracer, runs, seed, &h);
    }
    ConsistencyRow {
        benchmark: workload.name().to_string(),
        ts: workload.ts_name().to_string(),
        method: Method::Rbr,
        context: 0,
        invocations: workload.invocations(Dataset::Train),
        cells: WINDOW_SIZES
            .iter()
            .map(|&w| {
                let (m, s) = chunked_stats(&samples, w, false);
                (w, m, s)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_workloads::{swim::SwimCalc3, vortex::VortexChkGetChunk};

    #[test]
    fn swim_cbr_consistency_tightens_with_window() {
        let w = SwimCalc3::new();
        let rows = consistency_rows(&w, &MachineSpec::sparc_ii());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.method, Method::Cbr);
        let sd10 = row.cells[0].2;
        let sd160 = row.cells[4].2;
        assert!(
            sd160 < sd10,
            "σ should shrink with window size: w10={sd10:.3} w160={sd160:.3}"
        );
        // Means hover near zero (×100 scale).
        for &(w, m, _) in &row.cells {
            assert!(m.abs() < 2.0, "w={w}: mean {m:.3} too far from 0");
        }
    }

    #[test]
    fn vortex_rbr_mean_near_one() {
        let w = VortexChkGetChunk::new();
        let rows = consistency_rows(&w, &MachineSpec::sparc_ii());
        let row = &rows[0];
        assert_eq!(row.method, Method::Rbr);
        // X = V − 1 with identical versions: |mean| small at large w.
        let (_, m160, sd160) = row.cells[4];
        assert!(m160.abs() < 3.0, "mean {m160:.3}");
        assert!(sd160 < 10.0, "σ {sd160:.3}");
    }
}
