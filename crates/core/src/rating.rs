//! The rating engines: produce fair EVALs for a set of candidate
//! optimization configurations using CBR, MBR, RBR, or the WHL/AVG
//! baselines (paper §2, §3, §5.2).
//!
//! All methods report *relative improvement over the base version*
//! (`> 1` = candidate faster), so the search can compare candidates
//! uniformly regardless of how the rating was obtained.

use crate::consultant::{Consultation, Method};
use crate::harness::RunHarness;
use crate::job::CancelToken;
use crate::sched::Pool;
use crate::stats::Window;
use crate::version_cache::{VersionCache, VersionKey};
use peak_obs::{event, Tracer};
use peak_opt::OptConfig;
use peak_sim::{
    ExecError, ExecOptions, FaultConfig, FaultPlan, MachineSpec, PreparedVersion, SimMetrics,
};
use peak_util::{Json, ToJson};
use peak_workloads::{Dataset, Workload};
use std::sync::Arc;

/// Shared tuning state: version cache, run/cycle accounting.
///
/// Split for parallel rating: the *immutable* inputs (workload
/// reference, machine spec, `Arc`'d consultant output, dataset, fault
/// scenario) are cheap to share across rating jobs, while the *scratch*
/// (run-seed cursor, cycle/run/invocation accounting, tracer) is
/// per-job. [`TuningSetup::fork_for_job`] clones the shared part into a
/// fresh scratch with a caller-chosen seed base, and
/// [`TuningSetup::absorb_scratch`] folds a finished job's accounting
/// back in — always in job-index order, so totals are bit-identical at
/// any thread count.
pub struct TuningSetup<'w> {
    /// Workload under tuning.
    pub workload: &'w dyn Workload,
    /// Target machine.
    pub spec: MachineSpec,
    /// Consultant output for this TS (shared across rating jobs).
    pub consult: Arc<Consultation>,
    /// Dataset used for tuning runs.
    pub ds: Dataset,
    next_seed: u64,
    fault_config: Option<FaultConfig>,
    tracer: Tracer,
    pool: Pool,
    cancel: CancelToken,
    /// True cycles consumed by tuning runs so far.
    pub tuning_cycles: u64,
    /// Application runs started so far.
    pub runs_used: usize,
    /// TS invocations consumed so far.
    pub invocations_used: u64,
}

impl<'w> TuningSetup<'w> {
    /// Create a tuning setup (runs the consultant).
    pub fn new(workload: &'w dyn Workload, spec: MachineSpec, ds: Dataset) -> Self {
        let consult = Arc::new(crate::consultant::consult(workload, &spec));
        Self::with_consultation(workload, spec, ds, consult)
    }

    /// Create a tuning setup reusing an existing consultant output
    /// (parallel rating jobs share one [`Consultation`] instead of
    /// re-running the §3 analysis per job).
    pub fn with_consultation(
        workload: &'w dyn Workload,
        spec: MachineSpec,
        ds: Dataset,
        consult: Arc<Consultation>,
    ) -> Self {
        TuningSetup {
            workload,
            spec,
            consult,
            ds,
            next_seed: 1,
            fault_config: None,
            tracer: Tracer::disabled(),
            pool: Pool::with_threads(1),
            cancel: CancelToken::new(),
            tuning_cycles: 0,
            runs_used: 0,
            invocations_used: 0,
        }
    }

    /// The shared consultant output.
    pub fn consultation(&self) -> Arc<Consultation> {
        self.consult.clone()
    }

    /// Install a job pool. The search layer uses it to pre-compile each
    /// round's candidate frontier in parallel ([`TuningSetup::warm_frontier`]);
    /// warm-up is pure (compilation is deterministic and cached), so
    /// installing a pool never changes a single rated cycle. The default
    /// single-thread pool makes warm-up a no-op.
    pub fn set_pool(&mut self, pool: Pool) {
        self.pool = pool;
    }

    /// The installed pool (single-threaded unless [`TuningSetup::set_pool`]
    /// was called).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Clone the shared (immutable) part into a fresh per-job scratch:
    /// zero accounting and a run-seed cursor starting at `seed_base`.
    /// The scratch gets a **disabled** tracer — parallel jobs must not
    /// interleave events into the parent's stream; callers that trace
    /// per-job give the fork its own buffered tracer via
    /// [`TuningSetup::set_tracer`] and splice in job order — and a
    /// single-thread pool (jobs do not re-fan-out).
    pub fn fork_for_job(&self, seed_base: u64) -> TuningSetup<'w> {
        TuningSetup {
            workload: self.workload,
            spec: self.spec.clone(),
            consult: self.consult.clone(),
            ds: self.ds,
            next_seed: seed_base,
            fault_config: self.fault_config.clone(),
            tracer: Tracer::disabled(),
            pool: Pool::with_threads(1),
            // Forked jobs share the parent's cancel token: a deadline
            // firing mid-frontier stops every candidate job cooperatively.
            cancel: self.cancel.clone(),
            tuning_cycles: 0,
            runs_used: 0,
            invocations_used: 0,
        }
    }

    /// Fold a finished job's accounting back into this setup. Call in
    /// job-index order so totals are reproducible at any thread count
    /// (addition over `u64`/`usize` is associative, but keeping one
    /// canonical order keeps the discipline visible and future-proof).
    pub fn absorb_scratch(&mut self, scratch: &TuningSetup<'_>) {
        self.tuning_cycles += scratch.tuning_cycles;
        self.runs_used += scratch.runs_used;
        self.invocations_used += scratch.invocations_used;
    }

    /// Pre-compile every configuration in `cfgs` (the next rating call's
    /// candidate frontier) through the process-wide [`VersionCache`] on
    /// the installed pool. Concurrent warm-ups of the same key compile
    /// once (in-flight de-duplication). No-op on a single-thread pool:
    /// the serial path compiles lazily in the same order anyway.
    pub fn warm_frontier(&self, cfgs: &[OptConfig], instrumented: bool) {
        if self.pool.threads() <= 1 || cfgs.is_empty() {
            return;
        }
        if instrumented && self.consult.mbr.is_none() {
            return;
        }
        let requests: Vec<_> = cfgs
            .iter()
            .map(|&cfg| {
                let key = if instrumented {
                    VersionKey::instrumented(self.workload, cfg, self.spec.kind)
                } else {
                    VersionKey::plain(self.workload, cfg, self.spec.kind)
                };
                let workload = self.workload;
                let consult = self.consult.clone();
                let compile = move || {
                    let (prog, ts) = if instrumented {
                        let m =
                            consult.mbr.as_ref().expect("instrumented version needs MBR model");
                        (&m.instrumented, m.ts)
                    } else {
                        (workload.program(), workload.ts())
                    };
                    crate::compile::compile_validated(prog, ts, &cfg)
                };
                (key, compile)
            })
            .collect();
        VersionCache::global().warm(&self.pool, &self.spec, requests);
    }

    /// Install (or clear) a fault scenario: every subsequent run gets a
    /// [`FaultPlan`] derived from the scenario seed and that run's seed,
    /// so fault streams replay exactly per run regardless of history.
    pub fn set_faults(&mut self, config: Option<FaultConfig>) {
        self.fault_config = config;
    }

    /// The installed fault scenario, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault_config.as_ref()
    }

    /// Install a cancellation token. Every subsequent run start (and IE
    /// round boundary) becomes a cooperative cancellation point: when the
    /// token fires, the next check unwinds with the
    /// [`Cancelled`](crate::job::Cancelled) sentinel, to be caught at the
    /// job boundary by [`crate::job::run_tuning_job`]. The default token
    /// never fires, so uncancelled tuning is bit-identical.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The installed cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Cooperative cancellation point: unwinds with the
    /// [`Cancelled`](crate::job::Cancelled) sentinel when the installed
    /// token has fired, else does nothing.
    pub fn check_cancel(&self) {
        self.cancel.check();
    }

    /// Install a tracer: every subsequent run and rating call emits
    /// telemetry through it. The default disabled tracer leaves the
    /// tuning path bit-identical to an uninstrumented build.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Seed the next run will be derived from (checkpointing).
    pub fn next_seed(&self) -> u64 {
        self.next_seed
    }

    /// Restore run accounting from a checkpoint so a resumed tuner
    /// replays the exact run-seed sequence of the uninterrupted run.
    pub fn restore_accounting(
        &mut self,
        next_seed: u64,
        tuning_cycles: u64,
        runs_used: usize,
        invocations_used: u64,
    ) {
        self.next_seed = next_seed;
        self.tuning_cycles = tuning_cycles;
        self.runs_used = runs_used;
        self.invocations_used = invocations_used;
    }

    /// Compile (and cache, process-wide) a version. `instrumented`
    /// selects the MBR-instrumented TS as the source. Hits in the
    /// [`VersionCache`] are shared across setups, search rounds, rating
    /// retries, the degradation cascade, and checkpoint resume.
    pub fn version(&mut self, cfg: OptConfig, instrumented: bool) -> Arc<PreparedVersion> {
        let key = if instrumented {
            VersionKey::instrumented(self.workload, cfg, self.spec.kind)
        } else {
            VersionKey::plain(self.workload, cfg, self.spec.kind)
        };
        VersionCache::global().get_or_prepare(key, &self.spec, || {
            let (prog, ts) = if instrumented {
                let m = self.consult.mbr.as_ref().expect("instrumented version needs MBR model");
                (&m.instrumented, m.ts)
            } else {
                (self.workload.program(), self.workload.ts())
            };
            crate::compile::compile_validated(prog, ts, &cfg)
        })
    }

    /// Start a fresh application run (a new process). This is the
    /// fine-grained cancellation point: a rating call starts at most
    /// `MAX_RUNS_PER_RATING` runs, so a fired deadline interrupts tuning
    /// within one application run's worth of work.
    pub fn new_run(&mut self) -> RunHarness<'w> {
        self.cancel.check();
        self.runs_used += 1;
        self.next_seed += 1;
        let faults =
            self.fault_config.as_ref().map(|c| FaultPlan::new(c.clone(), self.next_seed));
        let mut h =
            RunHarness::with_faults(self.workload, self.ds, &self.spec, self.next_seed, faults);
        h.set_tracer(self.tracer.clone());
        h
    }

    /// Account a finished (or abandoned) run's cycles; when a tracer is
    /// installed, emits a `sim.run` event with the run's machine
    /// counters and fault stats (measurement provenance: this run's
    /// seed links the samples to the exact replayable fault stream).
    pub fn absorb_run(&mut self, h: &RunHarness<'_>) {
        self.tuning_cycles += h.cycles();
        if self.tracer.enabled() {
            let m = SimMetrics::snapshot(&h.machine);
            let mut fields = vec![
                ("run".to_owned(), Json::U(self.runs_used as u64)),
                ("seed".to_owned(), Json::U(self.next_seed)),
            ];
            if let Json::Obj(pairs) = m.to_json() {
                fields.extend(pairs);
            }
            if let Some(plan) = &h.machine.faults {
                fields.push(("faults".to_owned(), plan.stats.to_json()));
                fields.push(("executions".to_owned(), Json::U(plan.executions())));
            }
            self.tracer.emit("sim.run", fields);
        }
    }
}

/// Result of rating a candidate set.
#[derive(Debug, Clone)]
pub struct RateOutcome {
    /// Per-candidate improvement over base (>1 = candidate faster).
    pub improvements: Vec<f64>,
    /// Per-candidate rating variance: the CV of the mean estimate for
    /// window methods (the quantity convergence is judged on — an
    /// exhausted window carries its real CV here), the regression
    /// variance for MBR.
    pub vars: Vec<f64>,
    /// Candidates whose window never converged.
    pub unconverged: usize,
    /// The method that produced these numbers.
    pub method: Method,
    /// Measurements accepted into estimates.
    pub samples: usize,
    /// Samples rejected by the outlier filter across all estimates.
    pub trimmed: usize,
    /// Measurements lost to injected dropout (invocation ran, reading
    /// lost).
    pub dropouts: u64,
    /// Runs abandoned because an execution crashed (injected fault).
    pub crashes: u64,
}

impl RateOutcome {
    /// Fraction of measurements lost to dropout (0 when nothing was
    /// measured).
    pub fn dropout_rate(&self) -> f64 {
        let total = self.samples as f64 + self.dropouts as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.dropouts as f64 / total
        }
    }
}

/// Knobs for one rating call (the supervisor's retry-with-backoff).
#[derive(Debug, Clone, Copy)]
pub struct RateOptions {
    /// Multiplier on each method's maximum window budget (CBR/AVG/RBR
    /// samples, MBR rows). `1.0` (the default) is bit-identical to the
    /// un-optioned path.
    pub window_scale: f64,
}

impl Default for RateOptions {
    fn default() -> Self {
        RateOptions { window_scale: 1.0 }
    }
}

/// Scale a window budget; `scale = 1.0` returns `n` exactly.
fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64) * scale).round() as usize
}

/// Hard cap on runs per rating call.
const MAX_RUNS_PER_RATING: usize = 60;
/// Window bounds per method.
const CBR_WINDOW: (usize, usize, f64) = (12, 160, 0.008);
const AVG_WINDOW: (usize, usize, f64) = (12, 160, 0.008);
const RBR_WINDOW: (usize, usize, f64) = (8, 48, 0.008);
const MBR_MIN_ROWS: usize = 32;
const MBR_MAX_ROWS: usize = 240;
const MBR_VAR_OK: f64 = 0.15;

/// Rate `candidates` against `base` using `method`. Returns `None` when
/// the method is structurally inapplicable (no plan).
pub fn rate(
    setup: &mut TuningSetup<'_>,
    method: Method,
    base: OptConfig,
    candidates: &[OptConfig],
) -> Option<RateOutcome> {
    rate_with(setup, method, base, candidates, &RateOptions::default())
}

/// [`rate`] with explicit options (window widening for the supervisor's
/// retry-with-backoff). Default options are bit-identical to [`rate`].
pub fn rate_with(
    setup: &mut TuningSetup<'_>,
    method: Method,
    base: OptConfig,
    candidates: &[OptConfig],
    opts: &RateOptions,
) -> Option<RateOutcome> {
    if peak_obs::metrics::enabled() {
        use std::sync::OnceLock;
        static CALLS: OnceLock<std::sync::Arc<peak_obs::Counter>> = OnceLock::new();
        CALLS
            .get_or_init(|| {
                peak_obs::MetricsRegistry::global()
                    .counter("core.rating.calls", "Rating invocations (any method)")
            })
            .inc();
    }
    let tracer = setup.tracer.clone();
    let _span = if tracer.enabled() {
        Some(tracer.span(
            "rating",
            vec![
                ("method".to_owned(), Json::Str(method.name().to_owned())),
                ("base".to_owned(), Json::U(base.bits())),
                ("candidates".to_owned(), Json::U(candidates.len() as u64)),
                ("window_scale".to_owned(), Json::F(opts.window_scale)),
            ],
        ))
    } else {
        None
    };
    // Self-profiling baselines: runs/invocations/cycles before the call
    // give the method's exclusive measurement cost; wall-clock only when
    // the tracer opted in (it breaks trace byte-identity).
    let (runs0, inv0, cyc0) = (setup.runs_used, setup.invocations_used, setup.tuning_cycles);
    let wall0 = tracer.wall_ns();
    let out = match method {
        Method::Cbr => {
            setup.consult.cbr.is_some().then(|| rate_cbr(setup, base, candidates, true, opts))
        }
        Method::Avg => Some(rate_cbr(setup, base, candidates, false, opts)),
        Method::Mbr => {
            setup.consult.mbr.is_some().then(|| rate_mbr(setup, base, candidates, opts))
        }
        Method::Rbr => Some(rate_rbr(setup, base, candidates, true, opts)),
        Method::Whl => Some(rate_whl(setup, base, candidates)),
    };
    if tracer.enabled() {
        match &out {
            Some(o) => {
                let mut fields = vec![
                    ("method".to_owned(), Json::Str(o.method.name().to_owned())),
                    ("improvements".to_owned(), o.improvements.to_json()),
                    ("vars".to_owned(), o.vars.to_json()),
                    ("unconverged".to_owned(), Json::U(o.unconverged as u64)),
                    ("samples".to_owned(), Json::U(o.samples as u64)),
                    ("trimmed".to_owned(), Json::U(o.trimmed as u64)),
                    ("dropouts".to_owned(), Json::U(o.dropouts)),
                    ("crashes".to_owned(), Json::U(o.crashes)),
                    ("runs".to_owned(), Json::U((setup.runs_used - runs0) as u64)),
                    (
                        "invocations".to_owned(),
                        Json::U(setup.invocations_used - inv0),
                    ),
                    ("cycles".to_owned(), Json::U(setup.tuning_cycles - cyc0)),
                ];
                if let (Some(w0), Some(w1)) = (wall0, tracer.wall_ns()) {
                    fields.push(("wall_ns".to_owned(), Json::U(w1.saturating_sub(w0))));
                }
                tracer.emit("rating.outcome", fields);
            }
            None => {
                event!(tracer, "rating.inapplicable", method = method.name());
            }
        }
    }
    out
}

/// CBR (and, with `use_context = false`, the AVG baseline): average the
/// measured times of invocations — grouped by the most important context
/// for CBR, indiscriminately for AVG.
fn rate_cbr(
    setup: &mut TuningSetup<'_>,
    base: OptConfig,
    candidates: &[OptConfig],
    use_context: bool,
    ropts: &RateOptions,
) -> RateOutcome {
    let (sources, varying, important) = if use_context {
        let plan = setup.consult.cbr.as_ref().expect("CBR plan");
        (plan.sources.clone(), plan.varying.clone(), plan.important_context().clone())
    } else {
        (Vec::new(), Vec::new(), crate::context::ContextKey(Vec::new()))
    };
    let (wmin, wmax, thr) = if use_context { CBR_WINDOW } else { AVG_WINDOW };
    let wmax = scaled(wmax, ropts.window_scale);
    // Window per version: index 0 = base.
    let mut all: Vec<OptConfig> = vec![base];
    all.extend_from_slice(candidates);
    let mut windows: Vec<Window> = (0..all.len()).map(|_| Window::with(wmin, wmax, thr)).collect();
    let versions: Vec<Arc<PreparedVersion>> =
        all.iter().map(|c| setup.version(*c, false)).collect();
    let opts = ExecOptions::default();
    let mut dropouts = 0u64;
    let mut crashes = 0u64;
    let mut ctx_matches = 0u64;
    let mut ctx_misses = 0u64;
    'runs: for _ in 0..MAX_RUNS_PER_RATING {
        let mut h = setup.new_run();
        while let Some(args) = h.next_args() {
            setup.invocations_used += 1;
            let matches = if use_context {
                let key = h.context_key(&sources, &args);
                let m = crate::context::reduce_key(&key, &varying) == important;
                if m {
                    ctx_matches += 1;
                } else {
                    ctx_misses += 1;
                }
                m
            } else {
                true
            };
            if !matches {
                // Off-context invocation: run the base version to keep the
                // program advancing; its timing is not comparable.
                match h.try_execute(&versions[0], &args, &opts) {
                    Ok(_) => {}
                    Err(ExecError::InjectedCrash { .. }) => {
                        crashes += 1;
                        break; // abandon the run: the process died
                    }
                    Err(e) => panic!("workload {} failed: {e}", setup.workload.name()),
                }
                continue;
            }
            // Pick the least-sampled unconverged window.
            let pick = windows
                .iter()
                .enumerate()
                .filter(|(_, w)| !w.converged() && !w.exhausted())
                .min_by_key(|(_, w)| w.len())
                .map(|(i, _)| i);
            let Some(i) = pick else {
                setup.absorb_run(&h);
                break 'runs;
            };
            match h.try_execute_timed(&versions[i], &args, &opts) {
                Ok((Some(measured), _)) => windows[i].push(measured as f64),
                Ok((None, _)) => dropouts += 1,
                Err(ExecError::InjectedCrash { .. }) => {
                    crashes += 1;
                    break;
                }
                Err(e) => panic!("workload {} failed: {e}", setup.workload.name()),
            }
        }
        setup.absorb_run(&h);
        if windows.iter().all(|w| w.converged() || w.exhausted()) {
            break;
        }
    }
    if use_context {
        let t = setup.tracer.clone();
        event!(t, "cbr.context", matches = ctx_matches, misses = ctx_misses);
    }
    if setup.tracer.enabled() {
        let lens: Vec<u64> = windows.iter().map(|w| w.len() as u64).collect();
        let cvs: Vec<f64> = windows.iter().map(Window::mean_cv).collect();
        let t = setup.tracer.clone();
        event!(
            t,
            "window.state",
            method = if use_context { "cbr" } else { "avg" },
            lens = lens.to_json(),
            cvs = cvs.to_json(),
        );
    }
    let base_eval = windows[0].summary().mean.max(1.0);
    let improvements = windows[1..]
        .iter()
        .map(|w| {
            let s = w.summary();
            if s.n == 0 {
                1.0
            } else {
                base_eval / s.mean.max(1.0)
            }
        })
        .collect();
    let vars = windows[1..].iter().map(|w| w.mean_cv()).collect();
    let unconverged = windows.iter().filter(|w| !w.converged()).count();
    let samples = windows.iter().map(|w| w.len()).sum();
    let trimmed = windows.iter().map(|w| w.rejected()).sum();
    RateOutcome {
        improvements,
        vars,
        unconverged,
        method: if use_context { Method::Cbr } else { Method::Avg },
        samples,
        trimmed,
        dropouts,
        crashes,
    }
}

/// MBR: regression of time on component counts per version (paper §2.3).
fn rate_mbr(
    setup: &mut TuningSetup<'_>,
    base: OptConfig,
    candidates: &[OptConfig],
    ropts: &RateOptions,
) -> RateOutcome {
    let model = setup.consult.mbr.as_ref().expect("MBR model").clone();
    let max_rows = scaled(MBR_MAX_ROWS, ropts.window_scale);
    let mut all: Vec<OptConfig> = vec![base];
    all.extend_from_slice(candidates);
    let versions: Vec<Arc<PreparedVersion>> =
        all.iter().map(|c| setup.version(*c, true)).collect();
    let opts = ExecOptions { record_writes: false, num_counters: model.num_counters };
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); all.len()];
    let mut counts: Vec<Vec<Vec<f64>>> = vec![Vec::new(); all.len()];
    let mut evals: Vec<Option<(f64, f64)>> = vec![None; all.len()]; // (eval, var)
    let min_rows = MBR_MIN_ROWS.max(2 * model.num_components());
    let mut dropouts = 0u64;
    let mut crashes = 0u64;
    // Version assignment is randomized, not round-robin: a fixed stride
    // phase-locks with periodic context streams (MGRID's V-cycle), giving
    // different versions systematically different context mixes and
    // biasing the fits against each other.
    let mut pick_rng: u64 = 0x9E3779B97F4A7C15;
    'runs: for _ in 0..MAX_RUNS_PER_RATING {
        let mut h = setup.new_run();
        while let Some(args) = h.next_args() {
            setup.invocations_used += 1;
            pick_rng ^= pick_rng << 13;
            pick_rng ^= pick_rng >> 7;
            pick_rng ^= pick_rng << 17;
            let eligible: Vec<usize> = (0..all.len())
                .filter(|&i| {
                    evals[i].is_none_or(|(_, var)| var > MBR_VAR_OK)
                        && times[i].len() < max_rows
                })
                .collect();
            let pick = if eligible.is_empty() {
                None
            } else {
                Some(eligible[(pick_rng % eligible.len() as u64) as usize])
            };
            let Some(i) = pick else {
                setup.absorb_run(&h);
                break 'runs;
            };
            match h.try_execute_timed(&versions[i], &args, &opts) {
                Ok((Some(measured), res)) => {
                    times[i].push(measured as f64);
                    counts[i].push(model.count_row(&args, &res.counters));
                }
                Ok((None, _)) => {
                    dropouts += 1;
                    continue;
                }
                Err(ExecError::InjectedCrash { .. }) => {
                    crashes += 1;
                    break;
                }
                Err(e) => panic!("workload {} failed: {e}", setup.workload.name()),
            }
            if times[i].len() >= min_rows && times[i].len().is_multiple_of(8) {
                if let Some((t, c)) = trimmed_rows(&times[i], &counts[i]) {
                    if let Some(reg) = crate::linreg::solve(&t, &c) {
                        evals[i] = Some((model.eval_of(&reg), reg.var));
                    }
                }
            }
        }
        setup.absorb_run(&h);
        if (0..all.len())
            .all(|i| evals[i].is_some_and(|(_, v)| v <= MBR_VAR_OK) || times[i].len() >= max_rows)
        {
            break;
        }
    }
    // Final fits for stragglers.
    for i in 0..all.len() {
        if evals[i].is_none() {
            if let Some((t, c)) = trimmed_rows(&times[i], &counts[i]) {
                if let Some(reg) = crate::linreg::solve(&t, &c) {
                    evals[i] = Some((model.eval_of(&reg), reg.var));
                }
            }
        }
    }
    if setup.tracer.enabled() {
        let rows: Vec<u64> = times.iter().map(|t| t.len() as u64).collect();
        let res_vars: Vec<f64> =
            evals.iter().map(|e| e.map(|(_, v)| v).unwrap_or(f64::INFINITY)).collect();
        let fitted: Vec<bool> = evals.iter().map(Option::is_some).collect();
        let t = setup.tracer.clone();
        event!(
            t,
            "mbr.fit",
            rows = rows.to_json(),
            residual_vars = res_vars.to_json(),
            fitted = fitted.to_json(),
            min_rows = min_rows as u64,
        );
    }
    let base_eval = evals[0].map(|(e, _)| e).unwrap_or(1.0).max(1e-9);
    let improvements = evals[1..]
        .iter()
        .map(|e| e.map(|(v, _)| base_eval / v.max(1e-9)).unwrap_or(1.0))
        .collect();
    let vars = evals[1..].iter().map(|e| e.map(|(_, v)| v).unwrap_or(f64::INFINITY)).collect();
    let unconverged = evals.iter().filter(|e| e.is_none_or(|(_, v)| v > MBR_VAR_OK)).count();
    let samples = times.iter().map(|t| t.len()).sum();
    let trimmed = times
        .iter()
        .map(|t| t.len() - crate::stats::trim_outliers(t, crate::stats::OUTLIER_K).len())
        .sum();
    RateOutcome {
        improvements,
        vars,
        unconverged,
        method: Method::Mbr,
        samples,
        trimmed,
        dropouts,
        crashes,
    }
}

/// Remove time-outlier rows jointly from (times, counts).
fn trimmed_rows(times: &[f64], counts: &[Vec<f64>]) -> Option<(Vec<f64>, Vec<Vec<f64>>)> {
    if times.is_empty() {
        return None;
    }
    let kept = crate::stats::trim_outliers(times, crate::stats::OUTLIER_K);
    let keep: std::collections::HashSet<u64> = kept.iter().map(|t| t.to_bits()).collect();
    let mut t = Vec::new();
    let mut c = Vec::new();
    for (x, row) in times.iter().zip(counts) {
        if keep.contains(&x.to_bits()) {
            t.push(*x);
            c.push(row.clone());
        }
    }
    Some((t, c))
}

/// RBR with the improved protocol (paper Fig. 4): per invocation, save
/// the modified input, warm the cache with a precondition pass, then time
/// base and candidate back-to-back under the identical context, swapping
/// their order every invocation.
fn rate_rbr(
    setup: &mut TuningSetup<'_>,
    base: OptConfig,
    candidates: &[OptConfig],
    improved: bool,
    ropts: &RateOptions,
) -> RateOutcome {
    let plan = setup.consult.rbr.clone();
    let base_v = setup.version(base, false);
    let cand_vs: Vec<Arc<PreparedVersion>> =
        candidates.iter().map(|c| setup.version(*c, false)).collect();
    let (wmin, wmax, thr) = RBR_WINDOW;
    let wmax = scaled(wmax, ropts.window_scale);
    let mut windows: Vec<Window> =
        (0..candidates.len()).map(|_| Window::with(wmin, wmax, thr)).collect();
    let mut flip = false;
    let opts_plain = ExecOptions::default();
    let opts_record = ExecOptions { record_writes: true, num_counters: 0 };
    let mut dropouts = 0u64;
    let mut crashes = 0u64;
    'runs: for _ in 0..MAX_RUNS_PER_RATING {
        let mut h = setup.new_run();
        while let Some(args) = h.next_args() {
            setup.invocations_used += 1;
            let pick = windows
                .iter()
                .enumerate()
                .filter(|(_, w)| !w.converged() && !w.exhausted())
                .min_by_key(|(_, w)| w.len())
                .map(|(i, _)| i);
            let Some(i) = pick else {
                setup.absorb_run(&h);
                break 'runs;
            };
            let r = if improved {
                rbr_improved_sample(&mut h, &plan, &base_v, &cand_vs[i], &args, flip, &opts_plain, &opts_record)
            } else {
                rbr_basic_sample(&mut h, &plan, &base_v, &cand_vs[i], &args, &opts_plain)
            };
            flip = !flip;
            match r {
                Ok(Some(sample)) => windows[i].push(sample),
                Ok(None) => dropouts += 1,
                Err(ExecError::InjectedCrash { .. }) => {
                    crashes += 1;
                    break;
                }
                Err(e) => panic!("workload {} failed: {e}", setup.workload.name()),
            }
        }
        setup.absorb_run(&h);
        if windows.iter().all(|w| w.converged() || w.exhausted()) {
            break;
        }
    }
    if setup.tracer.enabled() {
        let lens: Vec<u64> = windows.iter().map(|w| w.len() as u64).collect();
        let cvs: Vec<f64> = windows.iter().map(|w| w.mean_cv()).collect();
        let t = setup.tracer.clone();
        event!(t, "window.state", method = "rbr", lens = lens.to_json(), cvs = cvs.to_json());
    }
    let improvements = windows
        .iter()
        .map(|w| {
            let s = w.summary();
            if s.n == 0 {
                1.0
            } else {
                s.mean
            }
        })
        .collect();
    let vars = windows.iter().map(|w| w.mean_cv()).collect();
    let unconverged = windows.iter().filter(|w| !w.converged()).count();
    let samples = windows.iter().map(|w| w.len()).sum();
    let trimmed = windows.iter().map(|w| w.rejected()).sum();
    RateOutcome {
        improvements,
        vars,
        unconverged,
        method: Method::Rbr,
        samples,
        trimmed,
        dropouts,
        crashes,
    }
}

/// One improved-RBR sample: returns `R = T_base / T_candidate`, or
/// `Ok(None)` when either timing was lost to injected dropout (the
/// executions still ran, so program state stays consistent).
#[allow(clippy::too_many_arguments)]
fn rbr_improved_sample(
    h: &mut RunHarness<'_>,
    plan: &crate::consultant::RbrPlan,
    base: &PreparedVersion,
    cand: &PreparedVersion,
    args: &[peak_ir::Value],
    flip: bool,
    opts_plain: &ExecOptions,
    opts_record: &ExecOptions,
) -> Result<Option<f64>, ExecError> {
    // 1-4: save the modified input, run the precondition pass (warming the
    // cache), restore.
    let undo: UndoState = if plan.inspector {
        // Inspector: the precondition itself records the undo log.
        let res = h.try_execute(base, args, opts_record)?;
        let cells: Vec<(peak_ir::MemId, i64)> =
            res.writes.iter().map(|(m, i, _)| (*m, *i)).collect();
        let vals: Vec<peak_ir::Value> = res.writes.iter().map(|(_, _, v)| *v).collect();
        // Charge the log maintenance like a save pass.
        h.restore_cells(&cells, &vals);
        UndoState::Cells(cells, vals)
    } else {
        let snap = h.save_regions(&plan.modified_regions);
        let _ = h.try_execute(base, args, opts_plain)?; // precondition pass
        h.restore_regions(&snap);
        UndoState::Regions(snap)
    };
    // 5-7: time the two versions under the same context, order alternating.
    let (first, second) = if flip { (cand, base) } else { (base, cand) };
    let (t_first, _) = h.try_execute_timed(first, args, opts_plain)?;
    match &undo {
        UndoState::Cells(cells, vals) => h.restore_cells(cells, vals),
        UndoState::Regions(snap) => h.restore_regions(snap),
    }
    let (t_second, _) = h.try_execute_timed(second, args, opts_plain)?;
    // Leave the second execution's (correct) results in memory.
    let (Some(t_first), Some(t_second)) = (t_first, t_second) else {
        return Ok(None);
    };
    let (t_base, t_cand) = if flip { (t_second, t_first) } else { (t_first, t_second) };
    Ok(Some(t_base as f64 / t_cand.max(1) as f64))
}

/// One basic-RBR sample (paper Fig. 3): save the full input, time base,
/// restore, time candidate — no precondition pass, no order swap. Biased
/// by cache warm-up; kept for the ablation benchmark.
fn rbr_basic_sample(
    h: &mut RunHarness<'_>,
    plan: &crate::consultant::RbrPlan,
    base: &PreparedVersion,
    cand: &PreparedVersion,
    args: &[peak_ir::Value],
    opts: &ExecOptions,
) -> Result<Option<f64>, ExecError> {
    // Basic method saves the whole (written) input set.
    let mut save: Vec<peak_ir::MemId> = plan.modified_regions.clone();
    for m in &plan.input_regions {
        if !save.contains(m) {
            save.push(*m);
        }
    }
    let snap = h.save_regions(&save);
    let (t_base, _) = h.try_execute_timed(base, args, opts)?;
    h.restore_regions(&snap);
    let (t_cand, _) = h.try_execute_timed(cand, args, opts)?;
    let (Some(t_base), Some(t_cand)) = (t_base, t_cand) else {
        return Ok(None);
    };
    Ok(Some(t_base as f64 / t_cand.max(1) as f64))
}

enum UndoState {
    Cells(Vec<(peak_ir::MemId, i64)>, Vec<peak_ir::Value>),
    Regions(Vec<(peak_ir::MemId, peak_ir::Buffer)>),
}

/// Expose the basic protocol for the ablation benchmark.
pub fn rate_rbr_basic(
    setup: &mut TuningSetup<'_>,
    base: OptConfig,
    candidates: &[OptConfig],
) -> RateOutcome {
    rate_rbr(setup, base, candidates, false, &RateOptions::default())
}

/// WHL: one full application run per version; EVAL = whole-program time
/// (the state-of-the-art baseline whose tuning cost Figure 7(c,d)
/// normalizes against).
fn rate_whl(setup: &mut TuningSetup<'_>, base: OptConfig, candidates: &[OptConfig]) -> RateOutcome {
    let mut all: Vec<OptConfig> = vec![base];
    all.extend_from_slice(candidates);
    let opts = ExecOptions::default();
    let mut totals = Vec::with_capacity(all.len());
    let mut samples = 0usize;
    let mut crashes = 0u64;
    for cfg in &all {
        let v = setup.version(*cfg, false);
        let mut h = setup.new_run();
        while let Some(args) = h.next_args() {
            setup.invocations_used += 1;
            match h.try_execute(&v, &args, &opts) {
                Ok(_) => {}
                Err(ExecError::InjectedCrash { .. }) => {
                    // Best-effort terminal method: score the partial run.
                    crashes += 1;
                    break;
                }
                Err(e) => panic!("workload {} failed: {e}", setup.workload.name()),
            }
        }
        // Whole-program timing is a single wall-clock reading; dropout of
        // per-invocation measurements does not apply, so fall back to the
        // true cycle count if the fault layer eats the reading.
        let total = h.machine.measure(h.cycles()).unwrap_or_else(|| h.cycles());
        setup.absorb_run(&h);
        samples += 1;
        totals.push(total as f64);
    }
    let base_total = totals[0].max(1.0);
    let improvements = totals[1..].iter().map(|t| base_total / t.max(1.0)).collect();
    let vars = vec![0.0; candidates.len()];
    RateOutcome {
        improvements,
        vars,
        unconverged: 0,
        method: Method::Whl,
        samples,
        trimmed: 0,
        dropouts: 0,
        crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_sim::MachineSpec;
    use peak_workloads::{bzip2::Bzip2FullGtU, equake::EquakeSmvp, swim::SwimCalc3};

    /// Self-comparison sanity: rating the base against itself must give
    /// improvement ≈ 1 for every method that applies.
    #[test]
    fn self_rating_is_one_swim() {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let base = OptConfig::o3();
        for method in [Method::Cbr, Method::Avg, Method::Rbr] {
            let out = rate(&mut setup, method, base, &[base]).expect("applicable");
            assert!(
                (out.improvements[0] - 1.0).abs() < 0.03,
                "{}: {:?}",
                method.name(),
                out.improvements
            );
        }
    }

    #[test]
    fn self_rating_is_one_rbr_bzip2() {
        let w = Bzip2FullGtU::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
        let base = OptConfig::o3();
        let out = rate(&mut setup, Method::Rbr, base, &[base]).unwrap();
        assert!(
            (out.improvements[0] - 1.0).abs() < 0.05,
            "{:?} vars={:?}",
            out.improvements,
            out.vars
        );
    }

    #[test]
    fn o0_rated_slower_than_o3() {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let out = rate(&mut setup, Method::Cbr, OptConfig::o3(), &[OptConfig::o0()]).unwrap();
        assert!(
            out.improvements[0] < 0.9,
            "-O0 must rate clearly slower: {:?}",
            out.improvements
        );
    }

    #[test]
    fn whl_expensive_but_consistent() {
        let w = EquakeSmvp::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let runs_before = setup.runs_used;
        let out = rate(&mut setup, Method::Whl, OptConfig::o3(), &[OptConfig::o0()]).unwrap();
        assert_eq!(setup.runs_used - runs_before, 2, "one full run per version");
        assert!(out.improvements[0] < 1.0, "{:?}", out.improvements);
    }

    #[test]
    fn section_methods_use_fewer_cycles_than_whl() {
        let w = EquakeSmvp::new();
        let base = OptConfig::o3();
        let cand = [base.without(peak_opt::Flag::LoopUnroll)];
        let mut s1 = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        rate(&mut s1, Method::Cbr, base, &cand).unwrap();
        let cbr_cycles = s1.tuning_cycles;
        let mut s2 = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        rate(&mut s2, Method::Whl, base, &cand).unwrap();
        let whl_cycles = s2.tuning_cycles;
        assert!(
            cbr_cycles < whl_cycles,
            "CBR {cbr_cycles} should beat WHL {whl_cycles}"
        );
    }
}
