//! Least-squares solver for the MBR execution-time model (paper Eq. 3):
//! given per-invocation times `Y(j)` and component counts `C(i,j)`, find
//! the component-time vector `T` minimizing ‖Y − Tᵀ·C‖².
//!
//! Component counts are small (a handful of components), so the normal
//! equations with Gaussian elimination and partial pivoting are exact
//! enough and dependency-free.

/// Result of a regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Component times `T_i` (paper Fig. 2(c)).
    pub t: Vec<f64>,
    /// VAR: residual sum of squares over total sum of squares (paper §3's
    /// MBR variance measure). 0 = perfect fit.
    pub var: f64,
}

/// Solve `Y ≈ T·C` where `counts[j][i]` is component `i`'s count in
/// invocation `j`. Returns `None` when the system is degenerate (fewer
/// invocations than components, or singular normal matrix).
pub fn solve(times: &[f64], counts: &[Vec<f64>]) -> Option<Regression> {
    let m = times.len();
    if m == 0 || counts.len() != m {
        return None;
    }
    let k = counts[0].len();
    if k == 0 || m < k {
        return None;
    }
    debug_assert!(counts.iter().all(|row| row.len() == k));
    // Normal equations: (CᵀC) T = Cᵀ Y  — here C as rows of counts.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for j in 0..m {
        for i1 in 0..k {
            b[i1] += counts[j][i1] * times[j];
            for i2 in 0..k {
                a[i1][i2] += counts[j][i1] * counts[j][i2];
            }
        }
    }
    let t = gauss_solve(&mut a, &mut b)?;
    // VAR = SSR / SST.
    let mean_y = times.iter().sum::<f64>() / m as f64;
    let mut ssr = 0.0;
    let mut sst = 0.0;
    for j in 0..m {
        let pred: f64 = (0..k).map(|i| t[i] * counts[j][i]).sum();
        ssr += (times[j] - pred).powi(2);
        sst += (times[j] - mean_y).powi(2);
    }
    let var = if sst > f64::EPSILON {
        ssr / sst
    } else if ssr < 1e-9 {
        0.0
    } else {
        // All times identical but model misses them: treat relative to
        // magnitude.
        ssr / (mean_y * mean_y * m as f64).max(f64::EPSILON)
    };
    Some(Regression { t, var })
}

/// In-place Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)]
fn gauss_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-9 {
            return None; // singular
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c2 in col..n {
                a[row][c2] -= f * a[col][c2];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c2 in row + 1..n {
            acc -= a[row][c2] * x[c2];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure2_example() {
        // Y = [11015 5508 6626 6044 8793]; C row1 = iteration counts,
        // row2 = constant 1. Expected T ≈ [110.05, 3.75].
        let times = [11015.0, 5508.0, 6626.0, 6044.0, 8793.0];
        let counts: Vec<Vec<f64>> = [100.0, 50.0, 60.0, 55.0, 80.0]
            .iter()
            .map(|&c| vec![c, 1.0])
            .collect();
        let r = solve(&times, &counts).unwrap();
        assert!((r.t[0] - 110.05).abs() < 0.2, "T1={}", r.t[0]);
        assert!((r.t[1] - 3.75).abs() < 12.0, "T2={}", r.t[1]);
        assert!(r.var < 0.001, "near-perfect fit: {}", r.var);
    }

    #[test]
    fn exact_linear_data_recovered() {
        // y = 7c1 + 3c2 exactly.
        let counts: Vec<Vec<f64>> =
            vec![vec![1.0, 2.0], vec![4.0, 1.0], vec![2.0, 2.0], vec![5.0, 9.0]];
        let times: Vec<f64> = counts.iter().map(|c| 7.0 * c[0] + 3.0 * c[1]).collect();
        let r = solve(&times, &counts).unwrap();
        assert!((r.t[0] - 7.0).abs() < 1e-9);
        assert!((r.t[1] - 3.0).abs() < 1e-9);
        assert!(r.var < 1e-12);
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(solve(&[5.0], &[vec![1.0, 2.0]]).is_none());
        assert!(solve(&[], &[]).is_none());
    }

    #[test]
    fn singular_system_rejected() {
        // Two proportional components — no unique split.
        let counts: Vec<Vec<f64>> =
            vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0], vec![4.0, 8.0]];
        let times = vec![10.0, 20.0, 30.0, 40.0];
        assert!(solve(&times, &counts).is_none());
    }

    #[test]
    fn noisy_fit_reports_var() {
        let counts: Vec<Vec<f64>> = (1..=30).map(|i| vec![i as f64, 1.0]).collect();
        let times: Vec<f64> = (1..=30)
            .map(|i| 100.0 * i as f64 + 50.0 + if i % 2 == 0 { 400.0 } else { -400.0 })
            .collect();
        let r = solve(&times, &counts).unwrap();
        assert!((r.t[0] - 100.0).abs() < 5.0);
        assert!(r.var > 0.001, "noise must show in VAR: {}", r.var);
        assert!(r.var < 0.5);
    }
}
