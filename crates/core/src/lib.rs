//! # peak-core — the PEAK automatic performance tuning system
//!
//! The paper's contribution: three rating methods that compare
//! compiler-optimized code versions *fairly* (under comparable execution
//! contexts), deployed in an offline tuning flow.
//!
//! * [`consultant`] — the Rating Approach Consultant: per-TS applicability
//!   analysis (CBR → MBR → RBR order, paper §3);
//! * [`rating`] — the rating engines (CBR §2.2, MBR §2.3, RBR §2.4, plus
//!   the WHL/AVG baselines of §5.2);
//! * [`mbr`] — component discovery and the linear execution-time model;
//! * [`context`] — context keys and run-time-constant elimination;
//! * [`search`] — Iterative Elimination over the 38-flag space (plus
//!   exhaustive and random search for ablations);
//! * [`strategy`] — pluggable search strategies (`SearchStrategy` trait):
//!   the shared `FrontierRater` + `CompilationBudget`, seeded genetic
//!   search, and phase-clustered IE — all bit-identical at any thread
//!   count;
//! * [`sched`] — deterministic work-stealing job pool behind the
//!   experiment drivers and the parallel candidate frontier;
//! * [`tuner`] — offline tuning end-to-end + production measurement
//!   (Figure 7);
//! * [`consistency`] — the Table 1 experiment;
//! * [`adaptive`] — the §6 online/adaptive scenario (per-context winners);
//! * [`degrade`] — rating supervisor: retry-with-backoff and the
//!   CBR → MBR → RBR → WHL degradation cascade under injected faults;
//! * [`job`] — the tuning-job unit behind the `peak-serve` daemon:
//!   panic-isolated, cooperatively cancellable, warm-startable;
//! * [`checkpoint`] — serializable tuner state for kill/resume;
//! * [`harness`] — simulated application runs with version swapping;
//! * [`stats`], [`linreg`] — EVAL/VAR windows, outlier elimination, least
//!   squares;
//! * [`ts_select`] — profile-driven tuning-section selection (§4.1).

#![warn(missing_docs)]

pub mod adaptive;
pub mod checkpoint;
pub mod compile;
pub mod consistency;
pub mod consultant;
pub mod context;
pub mod degrade;
pub mod harness;
pub mod job;
pub mod linreg;
pub mod mbr;
pub mod rating;
pub mod sched;
pub mod search;
pub mod stats;
pub mod strategy;
pub mod stream_cache;
pub mod tier;
pub mod ts_select;
pub mod tuner;
pub mod version_cache;

pub use adaptive::{AdaptiveOutcome, AdaptiveTuner};
pub use checkpoint::TunerCheckpoint;
pub use compile::{
    compile_validated, incident_count, incidents, record_incident, set_validation_level,
    take_incidents, validation_level, ValidationIncident,
};
pub use consistency::{consistency_rows, consistency_rows_traced, ConsistencyRow, WINDOW_SIZES};
pub use consultant::{consult, Consultation, Method};
pub use degrade::{DegradeEvent, DegradeTrigger, RatingSupervisor, SupervisorConfig};
pub use harness::RunHarness;
pub use job::{
    classify_panic, machine_spec_by_name, method_by_name, run_tuning_job, CancelToken, Cancelled,
    JobError, TuningJobSpec,
};
pub use mbr::MbrModel;
pub use rating::{rate, rate_with, RateOptions, RateOutcome, TuningSetup};
pub use sched::{default_threads, Pool, PoolStats};
pub use search::{
    exhaustive, iterative_elimination, iterative_elimination_from, iterative_elimination_parallel,
    iterative_elimination_parallel_capped, random_search, SearchResult,
};
pub use strategy::{
    build_strategy, cluster_flags, ga_mutate, ga_next_generation, ga_uniform_crossover, pearson,
    search_with_strategy, search_with_strategy_spent, strategy_kind_by_name, strategy_seed,
    ClusterConfig, CompilationBudget, FrontierOutcome, FrontierRater, GaConfig, GeneticSearch,
    IterativeElimination, PhaseClusteredIe, RandomSearchStrategy, RatingProtocol, SearchStrategy,
    SplitMix64, StrategyKind,
};
pub use tuner::{
    production_time, tune, tune_traced, tune_traced_pooled, tune_with_options, TuneOptions,
    TuneReport, Tuner,
};
pub use tier::{jit_backend, register_jit_metrics};
pub use version_cache::{CacheStats, VersionCache, VersionKey};
