//! Deterministic work-stealing job pool for the tuning pipeline.
//!
//! Every experiment driver fans work out — Table 1 cells, Figure 7
//! (benchmark × machine × method × dataset) cells, fault-matrix sweeps,
//! and (inside [`crate::search`]) the per-round candidate frontier of
//! Iterative Elimination. Before this module each driver spawned one OS
//! thread per cell with `std::thread::scope`, so a single slow cell
//! pinned wall-clock while sibling threads idled, and nothing below cell
//! granularity ran concurrently.
//!
//! [`Pool`] replaces that with a shared job scheduler:
//!
//! * **Deterministic by construction.** `map`/`run` return results in
//!   job-index order, whatever the interleaving; a job's identity is its
//!   index, never its worker or completion time. Callers that need
//!   stdout/JSON/trace byte-identity simply merge in index order — the
//!   same outputs fall out at 1, 2, or N threads.
//! * **Work-stealing.** Jobs are dealt round-robin into per-worker
//!   deques; a worker pops its own deque from the front and steals from
//!   the back of a victim's when empty, so a long job's siblings migrate
//!   to idle workers instead of waiting behind it.
//! * **Bounded nesting via a token budget.** A `Pool` holds a shared
//!   budget of `threads - 1` helper tokens. Every `map` (including ones
//!   issued *from inside a job*, e.g. frontier pre-compilation during a
//!   Figure 7 cell) acquires as many tokens as are free and always runs
//!   the calling thread as worker 0, so nested parallelism never
//!   oversubscribes beyond the configured thread count and always makes
//!   progress even with zero free tokens.
//! * **Self-profiling, not self-observing.** With a wall-clock tracer
//!   installed ([`Pool::with_obs`]) each job emits a `sched.job` event
//!   with queue/run latencies, its worker, and whether it was stolen.
//!   Those fields are scheduling-dependent, so the pool emits **only**
//!   when the tracer opted into wall-clock mode — the mode that is
//!   already documented as breaking trace byte-reproducibility
//!   (DESIGN.md §9). Deterministic traces never see pool events.
//!
//! Thread count resolution: `PEAK_THREADS` (a positive integer) wins,
//! else `std::thread::available_parallelism()`. `PEAK_THREADS=1` is the
//! exact serial path: jobs run inline on the caller in index order.

use peak_obs::Tracer;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Poison-tolerant lock: the pool's mutexes guard plain data (token
/// counts, job indices, result slots) whose invariants hold at every
/// await point, so a panic inside a job must not wedge the pool for
/// every later batch — the serve daemon runs panicking jobs behind
/// `catch_unwind` and keeps scheduling on the same pool afterwards.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "PEAK_THREADS";

/// Resolve the default thread count: `PEAK_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid {THREADS_ENV}={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Cumulative scheduler counters (monotonic; snapshot with
/// [`Pool::stats`]). All clones of a pool share one set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Jobs executed to completion.
    pub jobs: u64,
    /// Jobs a worker stole from another worker's deque.
    pub stolen: u64,
    /// Jobs executed by the submitting thread (worker 0).
    pub inline_jobs: u64,
    /// `map`/`run` batches dispatched.
    pub batches: u64,
}

#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    stolen: AtomicU64,
    inline_jobs: AtomicU64,
    batches: AtomicU64,
}

/// Helper-thread token budget shared by a pool and everything it is
/// passed into. Non-blocking: callers take what is free (possibly
/// nothing) and run the rest of the batch themselves.
struct Budget {
    free: Mutex<usize>,
}

impl Budget {
    fn acquire_up_to(&self, want: usize) -> usize {
        let mut free = lock_ignore_poison(&self.free);
        let got = want.min(*free);
        *free -= got;
        got
    }

    fn release(&self, n: usize) {
        *lock_ignore_poison(&self.free) += n;
    }
}

/// Returns acquired helper tokens on drop, so a panicking job unwinding
/// out of `map` cannot leak budget and starve every later batch down to
/// serial execution.
struct BudgetGuard<'a> {
    budget: &'a Budget,
    tokens: usize,
}

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        if self.tokens > 0 {
            self.budget.release(self.tokens);
        }
    }
}

/// Deterministic work-stealing job pool. Cheap to clone; clones share
/// the token budget and counters, which is exactly what nested use
/// wants (pass a clone down into jobs).
#[derive(Clone)]
pub struct Pool {
    threads: usize,
    budget: Arc<Budget>,
    counters: Arc<Counters>,
    obs: Tracer,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

impl Pool {
    /// Pool sized by [`default_threads`] (`PEAK_THREADS` override).
    pub fn from_env() -> Pool {
        Pool::with_threads(default_threads())
    }

    /// Pool with an explicit thread target (≥ 1; the calling thread is
    /// always one of them).
    pub fn with_threads(threads: usize) -> Pool {
        let threads = threads.max(1);
        Pool {
            threads,
            budget: Arc::new(Budget { free: Mutex::new(threads - 1) }),
            counters: Arc::new(Counters::default()),
            obs: Tracer::disabled(),
        }
    }

    /// Install a self-profiling tracer. Pool events carry
    /// scheduling-dependent fields (worker, stolen, latencies), so they
    /// are emitted **only** when `tracer` has wall-clock mode on — the
    /// mode already defined as non-byte-reproducible. A deterministic
    /// tracer here is a silent no-op.
    pub fn with_obs(mut self, tracer: Tracer) -> Pool {
        self.obs = tracer;
        self
    }

    /// Configured thread target.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the cumulative scheduler counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            stolen: self.counters.stolen.load(Ordering::Relaxed),
            inline_jobs: self.counters.inline_jobs.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    /// Run `n_jobs` jobs, job `i` being `f(i)`, and return the results
    /// in index order. The calling thread always participates; up to
    /// `threads - 1` helpers join, subject to the shared token budget
    /// (nested calls degrade gracefully toward inline execution).
    pub fn map<T, F>(&self, n_jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        if n_jobs == 0 {
            return Vec::new();
        }
        let helpers = if self.threads <= 1 || n_jobs <= 1 {
            0
        } else {
            self.budget.acquire_up_to((self.threads - 1).min(n_jobs - 1))
        };
        if helpers == 0 {
            // Serial fast path — also the PEAK_THREADS=1 reference
            // semantics: inline, in index order.
            let out: Vec<T> = (0..n_jobs)
                .map(|i| {
                    let r = self.run_job(&f, i, 0, false);
                    self.counters.inline_jobs.fetch_add(1, Ordering::Relaxed);
                    r
                })
                .collect();
            return out;
        }
        let workers = helpers + 1;
        // Tokens return on drop even if a job panics and unwinds out of
        // the scope below.
        let _guard = BudgetGuard { budget: &self.budget, tokens: helpers };
        // Deal jobs round-robin into per-worker deques.
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..n_jobs {
            lock_ignore_poison(&deques[i % workers]).push_back(i);
        }
        let results: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let deques = &deques;
            let results = &results;
            let f = &f;
            for id in 1..workers {
                scope.spawn(move || self.worker_loop(id, workers, deques, results, f));
            }
            self.worker_loop(0, workers, deques, results, f);
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner().unwrap_or_else(|e| e.into_inner()).expect("job completed")
            })
            .collect()
    }

    /// Run a batch of one-shot jobs (closures of one type, e.g. built by
    /// mapping over a job list) and return their results in submission
    /// order.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        self.map(slots.len(), |i| {
            let job = lock_ignore_poison(&slots[i]).take().expect("job taken once");
            job()
        })
    }

    fn worker_loop<T, F>(
        &self,
        id: usize,
        workers: usize,
        deques: &[Mutex<VecDeque<usize>>],
        results: &[Mutex<Option<T>>],
        f: &F,
    ) where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        loop {
            // Own deque first (front — submission order)…
            let own = lock_ignore_poison(&deques[id]).pop_front();
            let (job, stolen) = match own {
                Some(i) => (Some(i), false),
                None => {
                    // …then steal from the back of the first non-empty
                    // victim, scanning deterministically from id+1.
                    let mut found = None;
                    for off in 1..workers {
                        let victim = (id + off) % workers;
                        if let Some(i) = lock_ignore_poison(&deques[victim]).pop_back() {
                            found = Some(i);
                            break;
                        }
                    }
                    (found, true)
                }
            };
            let Some(i) = job else {
                return; // all deques empty: batch is drained
            };
            let r = self.run_job(f, i, id, stolen);
            if stolen {
                self.counters.stolen.fetch_add(1, Ordering::Relaxed);
            }
            if id == 0 {
                self.counters.inline_jobs.fetch_add(1, Ordering::Relaxed);
            }
            *lock_ignore_poison(&results[i]) = Some(r);
        }
    }

    fn run_job<T, F>(&self, f: &F, i: usize, worker: usize, stolen: bool) -> T
    where
        F: Fn(usize) -> T,
    {
        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        if !(self.obs.enabled() && self.obs.wall_clock()) {
            return f(i);
        }
        let start = Instant::now();
        let r = f(i);
        self.obs.emit(
            "sched.job",
            vec![
                ("job".to_owned(), peak_util::Json::U(i as u64)),
                ("worker".to_owned(), peak_util::Json::U(worker as u64)),
                ("stolen".to_owned(), peak_util::Json::Bool(stolen)),
                (
                    "run_ns".to_owned(),
                    peak_util::Json::U(start.elapsed().as_nanos() as u64),
                ),
            ],
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_returns_results_in_index_order() {
        for threads in [1, 2, 5] {
            let pool = Pool::with_threads(threads);
            let out = pool.map(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn run_executes_each_closure_once() {
        let pool = Pool::with_threads(4);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..17)
            .map(|i| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..17).collect::<Vec<_>>());
        assert_eq!(hits.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn stealing_happens_under_skew() {
        // Worker 0's deque gets the slow jobs (indices 0, 2, 4…): with a
        // skewed distribution the other worker must steal to finish.
        let pool = Pool::with_threads(2);
        let out = pool.map(8, |i| {
            if i % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        // Stealing is scheduling-dependent; assert only that the batch
        // completed and counters are coherent.
        let s = pool.stats();
        assert_eq!(s.jobs, 8);
        assert!(s.stolen <= 8);
    }

    #[test]
    fn nested_maps_respect_the_token_budget_and_complete() {
        let pool = Pool::with_threads(3);
        let inner = pool.clone();
        let out = pool.map(6, move |i| {
            let sub = inner.map(5, |j| i * 10 + j);
            sub.iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, want);
        // Budget fully returned: a later batch can still go parallel.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_thread_pool_is_inline_and_ordered() {
        let pool = Pool::with_threads(1);
        let order = Mutex::new(Vec::new());
        let _ = pool.map(6, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
        let s = pool.stats();
        assert_eq!(s.inline_jobs, 6);
        assert_eq!(s.stolen, 0);
    }

    #[test]
    fn determinism_across_thread_counts() {
        let golden: Vec<u64> = Pool::with_threads(1).map(40, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 4, 8] {
            let got = Pool::with_threads(threads).map(40, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, golden, "threads={threads}");
        }
    }

    /// Serializes tests that mutate `PEAK_THREADS`: the environment is
    /// process-global and the test harness runs tests in parallel.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn env_parsing_defaults() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var(THREADS_ENV);
        // The available-parallelism fallback path must be ≥ 1.
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_override_single_thread_and_invalid_values() {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var(THREADS_ENV, "1");
        assert_eq!(default_threads(), 1);
        let pool = Pool::from_env();
        assert_eq!(pool.threads(), 1);
        // PEAK_THREADS=1 is the exact serial reference: inline, ordered.
        let order = Mutex::new(Vec::new());
        let _ = pool.map(5, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.stats().inline_jobs, 5);

        std::env::set_var(THREADS_ENV, "7");
        assert_eq!(default_threads(), 7);
        // Invalid values fall back to available parallelism (≥ 1).
        for bad in ["0", "-3", "lots", ""] {
            std::env::set_var(THREADS_ENV, bad);
            assert!(default_threads() >= 1, "{bad:?}");
        }
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn empty_job_lists_complete_and_return_empty() {
        for threads in [1, 2, 64] {
            let pool = Pool::with_threads(threads);
            let out: Vec<usize> = pool.map(0, |i| i);
            assert!(out.is_empty(), "threads={threads}");
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = Vec::new();
            let out = pool.run(jobs);
            assert!(out.is_empty(), "threads={threads}");
            let s = pool.stats();
            assert_eq!(s.jobs, 0, "threads={threads}");
            assert_eq!(s.batches, 2, "threads={threads}");
            // An empty batch must not leak budget tokens: a later real
            // batch still completes.
            assert_eq!(pool.map(3, |i| i), vec![0, 1, 2], "threads={threads}");
        }
    }

    #[test]
    fn pool_survives_a_panicking_job_without_leaking_budget() {
        // The serve daemon isolates panicking jobs with catch_unwind but
        // keeps scheduling on the same pool: a panic must neither poison
        // the pool's locks nor leak helper tokens.
        for threads in [1, 3] {
            let pool = Pool::with_threads(threads);
            for round in 0..3 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pool.map(6, |i| {
                        if i == 4 {
                            panic!("injected job failure (round {round})");
                        }
                        i * 3
                    })
                }));
                assert!(r.is_err(), "threads={threads} round={round}");
                // The pool still runs full batches afterwards — in
                // parallel, with the full budget.
                let out = pool.map(8, |i| i + 100);
                assert_eq!(out, (100..108).collect::<Vec<_>>(), "threads={threads}");
            }
        }
    }

    #[test]
    fn oversubscribed_pool_matches_serial_bit_for_bit() {
        // Far more threads than jobs (and than cores): results must be
        // byte-identical to the serial pool, including order-sensitive
        // float accumulation.
        let work = |i: usize| -> u64 {
            let mut acc = 0.1_f64;
            for k in 0..=i {
                acc = acc * 1.5 + (k as f64) * 0.3;
            }
            acc.to_bits()
        };
        let golden: Vec<u64> = Pool::with_threads(1).map(5, work);
        for threads in [48, 64, 128] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.map(5, work), golden, "threads={threads}");
            // Also with a single job, and repeated batches on one pool.
            assert_eq!(pool.map(1, work), golden[..1], "threads={threads}");
            assert_eq!(pool.map(5, work), golden, "threads={threads}");
        }
    }
}
