//! Context keys for context-based rating.
//!
//! A *context* is the tuple of values of all context variables at a TS
//! invocation (paper §2.2). Keys are read exactly where the paper's
//! instrumented prologue would read them: parameters from the argument
//! list, global scalars from memory. Run-time constants discovered by the
//! profile run are removed from the key.

use peak_ir::{ContextSource, MemoryImage, Value};
use std::collections::HashMap;

/// A context key: one `u64` fingerprint per (remaining) context variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextKey(pub Vec<u64>);

/// Read the key for an invocation.
pub fn key_for(sources: &[ContextSource], args: &[Value], mem: &MemoryImage) -> ContextKey {
    ContextKey(
        sources
            .iter()
            .map(|s| match s {
                ContextSource::Param(i) => args[*i].context_key(),
                ContextSource::GlobalScalar { mem: m, index } => {
                    mem.load(*m, *index).context_key()
                }
            })
            .collect(),
    )
}

/// Profile-driven context-variable reduction (paper §2.2: "We eliminate
/// unnecessary context variables, if they are run-time constants").
///
/// Given keys observed during the profile run, returns the indices of
/// sources whose value varied — the others are dropped from future keys.
#[derive(Debug, Clone)]
pub struct ContextProfile {
    observed: Vec<ContextKey>,
    num_sources: usize,
}

impl ContextProfile {
    /// Start a profile over `num_sources` context variables.
    pub fn new(num_sources: usize) -> Self {
        ContextProfile { observed: Vec::new(), num_sources }
    }

    /// Record one invocation's key.
    pub fn record(&mut self, key: ContextKey) {
        debug_assert_eq!(key.0.len(), self.num_sources);
        self.observed.push(key);
    }

    /// Indices of sources that are *not* run-time constants.
    pub fn varying_sources(&self) -> Vec<usize> {
        (0..self.num_sources)
            .filter(|&i| {
                let mut vals = self.observed.iter().map(|k| k.0[i]);
                match vals.next() {
                    None => true, // no data: keep conservatively
                    Some(first) => vals.any(|v| v != first),
                }
            })
            .collect()
    }

    /// Number of distinct full contexts observed.
    pub fn distinct_contexts(&self) -> usize {
        let mut keys: Vec<&ContextKey> = self.observed.iter().collect();
        keys.sort();
        keys.dedup();
        keys.len()
    }

    /// Invocation counts per context, most frequent first (CBR rates the
    /// "most important context" in the offline scenario, paper §2.2).
    pub fn context_histogram(&self) -> Vec<(ContextKey, usize)> {
        let mut hist: HashMap<&ContextKey, usize> = HashMap::new();
        for k in &self.observed {
            *hist.entry(k).or_insert(0) += 1;
        }
        let mut out: Vec<(ContextKey, usize)> =
            hist.into_iter().map(|(k, c)| (k.clone(), c)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Reduce a key to the varying sources selected by the profile.
pub fn reduce_key(key: &ContextKey, varying: &[usize]) -> ContextKey {
    ContextKey(varying.iter().map(|&i| key.0[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{MemId, Program, Type};

    #[test]
    fn key_reads_params_and_globals() {
        let mut prog = Program::new();
        let g = prog.add_mem("g", Type::I64, 4);
        let mut mem = MemoryImage::new(&prog);
        mem.store(g, 2, Value::I64(77));
        let sources = [
            ContextSource::Param(1),
            ContextSource::GlobalScalar { mem: MemId(0), index: 2 },
        ];
        let args = [Value::I64(5), Value::I64(9)];
        let key = key_for(&sources, &args, &mem);
        assert_eq!(key, ContextKey(vec![9, 77]));
    }

    #[test]
    fn runtime_constants_detected() {
        let mut p = ContextProfile::new(2);
        for i in 0..10 {
            p.record(ContextKey(vec![42, i % 3]));
        }
        assert_eq!(p.varying_sources(), vec![1], "source 0 is a run-time constant");
        assert_eq!(p.distinct_contexts(), 3);
    }

    #[test]
    fn histogram_ordered_by_frequency() {
        let mut p = ContextProfile::new(1);
        for _ in 0..7 {
            p.record(ContextKey(vec![1]));
        }
        for _ in 0..3 {
            p.record(ContextKey(vec![2]));
        }
        let h = p.context_histogram();
        assert_eq!(h[0], (ContextKey(vec![1]), 7));
        assert_eq!(h[1], (ContextKey(vec![2]), 3));
    }

    #[test]
    fn reduce_key_drops_constants() {
        let key = ContextKey(vec![10, 20, 30]);
        assert_eq!(reduce_key(&key, &[0, 2]), ContextKey(vec![10, 30]));
        assert_eq!(reduce_key(&key, &[]), ContextKey(vec![]));
    }
}
