//! Pluggable search strategies over the 2^38 flag space.
//!
//! The paper's Iterative Elimination is one point in a larger design
//! space: genetic flag search (FOGA) and cluster-then-tune approaches
//! (multiple-phase learning) spend the same compilation budget
//! differently. This module extracts the machinery every search needs —
//! frontier rating with the §3 method fallback, compile pre-warming
//! through the shared [`VersionCache`](crate::version_cache::VersionCache),
//! deterministic per-candidate parallelism — into a [`FrontierRater`]
//! that any [`SearchStrategy`] drives, and adds a central
//! [`CompilationBudget`] so strategies can be compared at equal compile
//! counts.
//!
//! # Determinism doctrine
//!
//! Every strategy must be **bit-identical at any thread count**. The
//! rater guarantees this for the rating side (per-candidate jobs are
//! seeded from the frontier round and merged in candidate order; see
//! `rate_frontier_parallel` in [`search`](crate::search)); strategies
//! guarantee it for their own decisions by drawing all randomness from
//! [`SplitMix64`] seeded off the job seed — never from thread timing,
//! never from `std` hash iteration order. Float comparisons use
//! `total_cmp` with ties broken toward the lowest index.
//!
//! # Budget semantics
//!
//! [`CompilationBudget`] counts **unique configurations**, mirroring the
//! process-wide version cache: rating a configuration that was already
//! charged (a cache hit, or an in-flight coalesced compile) is free.
//! The budget is charged *before* compilation, in candidate order, so
//! the affordable prefix — and therefore every downstream decision — is
//! independent of thread count. A configuration's instrumented twin
//! (MBR's component-counting build) rides on the same charge: the
//! budget models "distinct optimization decisions paid for", not object
//! files.

use crate::consultant::Method;
use crate::rating::{rate, RateOutcome, TuningSetup};
use crate::sched::Pool;
use crate::search::{
    count_ie_round, frontier_seed_base, rate_frontier_parallel, rate_frontier_with_fallback,
    rate_with_fallback, SearchResult, MAX_IE_ROUNDS, MIN_GAIN,
};
use peak_obs::event;
use peak_opt::{Flag, OptConfig, ALL_FLAGS, NUM_FLAGS};
use std::collections::HashSet;

/// Deterministic 64-bit PRNG (splitmix64). Small, fast, and — unlike a
/// vendored `StdRng` — guaranteed stable across dependency bumps, which
/// the replayability doctrine requires: a strategy seed recorded in a
/// bench artifact must reproduce the identical search forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value. Not the `Iterator` protocol — draws are
    /// infinite and infallible, so an `Option` wrapper would only
    /// obscure the seed-exact trajectory.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n = 0` yields 0). The modulo bias is
    /// irrelevant here — draws pick tournament entrants and probe bits,
    /// not statistics — and the integer form keeps results exact.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// Bernoulli draw with integer per-mille probability (`350` = 35%).
    /// Integer thresholds avoid float rounding drift across platforms.
    pub fn chance(&mut self, per_mille: u64) -> bool {
        self.below(1000) < per_mille
    }
}

/// Central compilation budget shared by all strategies in a shoot-out.
///
/// Counts *unique* configurations (by flag-word bits): re-rating a
/// config the search already paid for is free, exactly as the
/// process-wide version cache makes its recompilation free. See the
/// module docs for why instrumented twins don't charge separately.
#[derive(Debug, Clone)]
pub struct CompilationBudget {
    limit: Option<usize>,
    spent: usize,
    seen: HashSet<u64>,
}

impl CompilationBudget {
    /// A budget that never exhausts (used by the plain IE entry points).
    pub fn unlimited() -> Self {
        CompilationBudget { limit: None, spent: 0, seen: HashSet::new() }
    }

    /// A budget of `n` unique configurations.
    pub fn limited(n: usize) -> Self {
        CompilationBudget { limit: Some(n), spent: 0, seen: HashSet::new() }
    }

    /// The configured limit (`None` = unlimited).
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Unique configurations charged so far.
    pub fn spent(&self) -> usize {
        self.spent
    }

    /// Remaining headroom (`None` = unlimited).
    pub fn remaining(&self) -> Option<usize> {
        self.limit.map(|l| l.saturating_sub(self.spent))
    }

    /// Charge one configuration. Returns `false` iff it is *new* and the
    /// budget cannot afford it (already-seen configs always succeed).
    pub fn charge_one(&mut self, cfg: OptConfig) -> bool {
        if self.seen.contains(&cfg.bits()) {
            return true;
        }
        if let Some(l) = self.limit {
            if self.spent >= l {
                return false;
            }
        }
        self.seen.insert(cfg.bits());
        self.spent += 1;
        true
    }

    /// Charge configurations in order; returns the length of the
    /// affordable prefix. Stops at the first *new* config that does not
    /// fit, so by construction `spent ≤ limit` always holds — a strategy
    /// can overshoot by at most the check itself, never by a compile.
    pub fn charge(&mut self, cfgs: &[OptConfig]) -> usize {
        for (i, &c) in cfgs.iter().enumerate() {
            if !self.charge_one(c) {
                return i;
            }
        }
        cfgs.len()
    }
}

impl Default for CompilationBudget {
    fn default() -> Self {
        CompilationBudget::unlimited()
    }
}

/// How a [`FrontierRater`] measures a candidate frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatingProtocol {
    /// The paper's serial interleaved protocol: all candidates share
    /// application runs (joint window picking, shared machine state).
    /// This is what the Table 1 / Figure 7 goldens pin down.
    Serial,
    /// Per-candidate decomposition: every candidate rated in its own
    /// deterministically seeded scratch setup, merged in candidate
    /// order — bit-identical at any thread count (PR 4's protocol).
    PerCandidate,
}

/// One frontier rating's outcome, as seen by a strategy.
#[derive(Debug, Clone)]
pub struct FrontierOutcome {
    /// Merged rating outcome; `improvements[i]` aligns with the
    /// candidate slice's first [`FrontierOutcome::rated`] entries.
    pub out: RateOutcome,
    /// Method that produced the final decision (after §3 fallback).
    pub method: Method,
    /// Number of candidates actually rated (≤ the slice length when the
    /// budget truncated the frontier).
    pub rated: usize,
    /// Whether the budget cut the frontier short — the strategy should
    /// wind down to its best-so-far.
    pub truncated: bool,
}

/// The shared engine all strategies drive: frontier pre-warming through
/// the version cache, §3 method fallback, budget charging, and the
/// rating-protocol dispatch. Owns the search-wide accounting
/// (ratings / switches / last method) so [`FrontierRater::finish`] can
/// assemble a [`SearchResult`] uniformly.
pub struct FrontierRater<'a, 'w> {
    setup: &'a mut TuningSetup<'w>,
    pool: Pool,
    protocol: RatingProtocol,
    method: Method,
    budget: CompilationBudget,
    ratings: usize,
    switches: u32,
    last_method: Method,
    round: usize,
}

impl<'a, 'w> FrontierRater<'a, 'w> {
    /// Serial-protocol rater on the setup's existing pool (which only
    /// pre-warms compiles; rating itself stays interleaved). This is the
    /// goldens-compatible configuration.
    pub fn serial(setup: &'a mut TuningSetup<'w>, method: Method) -> Self {
        let pool = setup.pool().clone();
        FrontierRater {
            setup,
            pool,
            protocol: RatingProtocol::Serial,
            method,
            budget: CompilationBudget::unlimited(),
            ratings: 0,
            switches: 0,
            last_method: method,
            round: 0,
        }
    }

    /// Per-candidate-protocol rater: installs `pool` on the setup (so
    /// warm-ups parallelize) and rates every frontier with one job per
    /// candidate. Bit-identical at any `pool` size.
    pub fn pooled(setup: &'a mut TuningSetup<'w>, pool: Pool, method: Method) -> Self {
        setup.set_pool(pool.clone());
        FrontierRater {
            setup,
            pool,
            protocol: RatingProtocol::PerCandidate,
            method,
            budget: CompilationBudget::unlimited(),
            ratings: 0,
            switches: 0,
            last_method: method,
            round: 0,
        }
    }

    /// Replace the (default unlimited) budget.
    pub fn with_budget(mut self, budget: CompilationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Rate a candidate frontier against `base`. Charges the budget
    /// (base first, then candidates in order), pre-warms the affordable
    /// frontier, dispatches on the protocol, and accumulates the
    /// search-wide accounting. Returns `None` when the budget cannot
    /// afford the base or a single candidate — the strategy should
    /// return its best-so-far.
    pub fn rate(&mut self, base: OptConfig, candidates: &[OptConfig]) -> Option<FrontierOutcome> {
        let round = self.round;
        self.round += 1;
        if !self.budget.charge_one(base) {
            return None;
        }
        let afford = self.budget.charge(candidates);
        if afford == 0 {
            return None;
        }
        let truncated = afford < candidates.len();
        let candidates = &candidates[..afford];
        // Pre-compile the round's frontier through the shared version
        // cache. Compilation is pure and cached, so this cannot change a
        // rated cycle — it only moves compile work off the rating path.
        let mut warm: Vec<OptConfig> = candidates.to_vec();
        warm.push(base);
        self.setup.warm_frontier(&warm, matches!(self.method, Method::Mbr));
        let (out, used) = match self.protocol {
            RatingProtocol::Serial => {
                if matches!(self.method, Method::Whl | Method::Avg) {
                    // Baselines rate directly without the consultant fallback.
                    (
                        rate(self.setup, self.method, base, candidates)
                            .expect("baseline method rates"),
                        self.method,
                    )
                } else {
                    rate_with_fallback(self.setup, self.method, base, candidates, &mut self.switches)
                }
            }
            RatingProtocol::PerCandidate => {
                if matches!(self.method, Method::Whl | Method::Avg) {
                    let seed = frontier_seed_base(round, 0);
                    (
                        rate_frontier_parallel(self.setup, &self.pool, self.method, base, candidates, seed)
                            .expect("baseline method rates"),
                        self.method,
                    )
                } else {
                    rate_frontier_with_fallback(
                        self.setup,
                        &self.pool,
                        self.method,
                        base,
                        candidates,
                        &mut self.switches,
                        round,
                    )
                }
            }
        };
        self.last_method = used;
        self.ratings += candidates.len();
        Some(FrontierOutcome { out, method: used, rated: candidates.len(), truncated })
    }

    /// Cooperative cancellation point (see [`TuningSetup::check_cancel`]).
    pub fn check_cancel(&self) {
        self.setup.check_cancel();
    }

    /// The setup's tracer (for strategy-level events).
    pub fn tracer(&self) -> &peak_obs::Tracer {
        self.setup.tracer()
    }

    /// Cumulative §3 method switches.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Unique configurations charged so far.
    pub fn spent(&self) -> usize {
        self.budget.spent()
    }

    /// The budget's remaining headroom (`None` = unlimited).
    pub fn remaining(&self) -> Option<usize> {
        self.budget.remaining()
    }

    /// Frontier rounds rated so far (also the seed counter).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The preferred rating method this rater starts each frontier with.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Assemble the uniform [`SearchResult`] for `best`.
    pub fn finish(&self, best: OptConfig) -> SearchResult {
        SearchResult {
            best,
            disabled_flags: best.disabled_flags().iter().map(|f| f.name().to_string()).collect(),
            method: self.last_method,
            switches: self.switches,
            ratings: self.ratings,
            tuning_cycles: self.setup.tuning_cycles,
            runs: self.setup.runs_used,
            invocations: self.setup.invocations_used,
        }
    }
}

/// A search strategy over the flag space, driven through a
/// [`FrontierRater`]. Implementations must be deterministic functions of
/// (workload, machine, method, seed, budget) — thread count must never
/// leak into the result (the differential suite enforces this).
pub trait SearchStrategy {
    /// Stable strategy name (used in job specs, bench artifacts, CLI).
    fn name(&self) -> &'static str;
    /// Run the search to completion (or budget exhaustion) and return
    /// the best configuration found, with uniform accounting.
    fn run(&self, rater: &mut FrontierRater<'_, '_>) -> SearchResult;
}

/// The paper's Iterative Elimination, expressed over the rater. With a
/// [`RatingProtocol::Serial`] rater and an unlimited budget this is
/// byte-identical to the pre-trait `iterative_elimination_from` (the
/// goldens suite pins this); with a pooled rater it is PR 4's parallel
/// frontier search.
#[derive(Debug, Clone)]
pub struct IterativeElimination {
    /// Start configuration (O3 is the paper's protocol; the serve
    /// daemon's warm start supplies a nearest-neighbour config).
    pub start: OptConfig,
    /// Round cap (each round removes at most one flag).
    pub max_rounds: usize,
}

impl Default for IterativeElimination {
    fn default() -> Self {
        IterativeElimination { start: OptConfig::o3(), max_rounds: MAX_IE_ROUNDS }
    }
}

impl SearchStrategy for IterativeElimination {
    fn name(&self) -> &'static str {
        "ie"
    }

    fn run(&self, rater: &mut FrontierRater<'_, '_>) -> SearchResult {
        let mut base = self.start;
        for round in 0..self.max_rounds {
            rater.check_cancel();
            count_ie_round();
            let flags: Vec<Flag> = base.enabled_flags();
            if flags.is_empty() {
                break;
            }
            let candidates: Vec<OptConfig> = flags.iter().map(|&f| base.without(f)).collect();
            let Some(fo) = rater.rate(base, &candidates) else {
                break;
            };
            let out = &fo.out;
            // Remove the flag whose removal helps most.
            let bestidx = (0..fo.rated)
                .max_by(|&a, &b| out.improvements[a].total_cmp(&out.improvements[b]));
            let removed = match bestidx {
                Some(i) if out.improvements[i] >= MIN_GAIN => Some(flags[i].name()),
                _ => None,
            };
            {
                let switches = rater.switches();
                let tracer = rater.tracer();
                if tracer.enabled() {
                    event!(
                        tracer,
                        "search.round",
                        round = round as u64,
                        method = fo.method.name(),
                        best_improvement = bestidx.map(|i| out.improvements[i]).unwrap_or(1.0),
                        removed_flag = removed,
                        switches = switches as u64,
                    );
                }
            }
            match bestidx {
                Some(i) if removed.is_some() => {
                    base = candidates[i];
                }
                _ => break,
            }
            if fo.truncated {
                break;
            }
        }
        rater.finish(base)
    }
}

/// Finalists re-rated in a strategy's closing verification round (GA
/// and phase-clustered IE both end with one).
pub const GA_FINALISTS: usize = 8;

/// Record `cfg` with its rated improvement in a contender list, keeping
/// the best rating seen per distinct configuration. Strictly-greater
/// updates keep the earliest rating on exact ties, so the list order is
/// a pure function of the rating sequence.
fn track_contender(contenders: &mut Vec<(f64, OptConfig)>, impr: f64, cfg: OptConfig) {
    match contenders.iter_mut().find(|(_, c)| c.bits() == cfg.bits()) {
        Some(e) => {
            if impr.total_cmp(&e.0).is_gt() {
                e.0 = impr;
            }
        }
        None => contenders.push((impr, cfg)),
    }
}

/// Genetic-search knobs. All probabilities are integer per-mille so the
/// population trajectory is an exact function of the seed.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Population size (individual 0 of generation 0 is always O3).
    pub population: usize,
    /// Generation cap (the budget usually stops the search first).
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-bit mutation probability, per mille.
    pub mutation_per_mille: u64,
    /// Individuals carried over unchanged each generation.
    pub elitism: usize,
    /// Per-flag off probability when seeding generation 0, per mille.
    pub init_off_per_mille: u64,
    /// PRNG seed (derive from the job seed for replayability).
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 12,
            generations: 24,
            tournament: 3,
            mutation_per_mille: 40,
            elitism: 2,
            init_off_per_mille: 250,
            seed: 1,
        }
    }
}

/// Uniform crossover: each flag bit comes from parent `a` or `b`
/// according to a fresh random mask. The result is masked to the flag
/// word by construction (both parents are valid configs).
pub fn ga_uniform_crossover(rng: &mut SplitMix64, a: OptConfig, b: OptConfig) -> OptConfig {
    let mask = rng.next() & ((1u64 << NUM_FLAGS) - 1);
    OptConfig::from_bits((a.bits() & mask) | (b.bits() & !mask))
}

/// Per-bit mutation: each of the 38 flags flips independently with
/// `per_mille`/1000 probability. Draws one `chance` per flag in bit
/// order, so the trajectory is seed-exact.
pub fn ga_mutate(rng: &mut SplitMix64, cfg: OptConfig, per_mille: u64) -> OptConfig {
    let mut bits = cfg.bits();
    for f in ALL_FLAGS {
        if rng.chance(per_mille) {
            bits ^= 1u64 << f.bit();
        }
    }
    OptConfig::from_bits(bits)
}

/// Tournament selection: best of `k` uniform draws, ties toward the
/// lowest population index.
fn ga_tournament(rng: &mut SplitMix64, fitness: &[f64], k: usize) -> usize {
    let n = fitness.len().max(1) as u64;
    let mut best = rng.below(n) as usize;
    for _ in 1..k.max(1) {
        let c = rng.below(n) as usize;
        if fitness[c].total_cmp(&fitness[best]).is_gt()
            || (fitness[c].total_cmp(&fitness[best]).is_eq() && c < best)
        {
            best = c;
        }
    }
    best
}

/// Build the next generation: the `elitism` fittest individuals carry
/// over unchanged (ties toward the lowest index), the rest are children
/// of tournament-selected parents via uniform crossover + per-bit
/// mutation. Pure function of (rng state, population, fitness, config).
pub fn ga_next_generation(
    rng: &mut SplitMix64,
    pop: &[OptConfig],
    fitness: &[f64],
    cfg: &GaConfig,
) -> Vec<OptConfig> {
    let mut order: Vec<usize> = (0..pop.len()).collect();
    order.sort_by(|&a, &b| fitness[b].total_cmp(&fitness[a]).then(a.cmp(&b)));
    let mut next: Vec<OptConfig> =
        order.iter().take(cfg.elitism.min(pop.len())).map(|&i| pop[i]).collect();
    while next.len() < pop.len() {
        let pa = ga_tournament(rng, fitness, cfg.tournament);
        let pb = ga_tournament(rng, fitness, cfg.tournament);
        let child = ga_uniform_crossover(rng, pop[pa], pop[pb]);
        next.push(ga_mutate(rng, child, cfg.mutation_per_mille));
    }
    next
}

/// Seeded genetic search (FOGA-style): fitness is the rated improvement
/// over a fixed O3 base, so one frontier rating per generation scores
/// the whole population. Generation 0 additionally scores the O3
/// single-removal frontier (memetic seeding — IE's round-1 knowledge at
/// the same budget), and the run ends with a budget-free verification
/// round that re-rates the top [`GA_FINALISTS`] configurations under one
/// set of eval windows — cross-round ratings are not directly
/// comparable, so the winner is picked where the comparison is fair.
/// The answer is the verified best if it clears [`MIN_GAIN`], else O3 —
/// the search can only tie or beat the baseline, never regress below
/// it.
#[derive(Debug, Clone, Default)]
pub struct GeneticSearch {
    /// Operator and schedule knobs.
    pub config: GaConfig,
}

impl GeneticSearch {
    /// Default GA seeded from the job seed.
    pub fn seeded(seed: u64) -> Self {
        GeneticSearch { config: GaConfig { seed, ..GaConfig::default() } }
    }
}

impl SearchStrategy for GeneticSearch {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn run(&self, rater: &mut FrontierRater<'_, '_>) -> SearchResult {
        let cfg = &self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        let base = OptConfig::o3();
        let mut pop: Vec<OptConfig> = Vec::with_capacity(cfg.population.max(1));
        pop.push(base);
        while pop.len() < cfg.population.max(1) {
            let mut bits = base.bits();
            for f in ALL_FLAGS {
                if rng.chance(cfg.init_off_per_mille) {
                    bits &= !(1u64 << f.bit());
                }
            }
            pop.push(OptConfig::from_bits(bits));
        }
        // Best-so-far, anchored at (O3, 1.0): strictly-greater updates
        // keep the earliest individual on exact ties.
        let mut best = (1.0f64, base);
        // Best rated improvement seen per distinct config — the final
        // verification round re-rates the strongest of these under one
        // set of windows, because cross-round ratings are not directly
        // comparable (each frontier round draws its own eval windows).
        let mut contenders: Vec<(f64, OptConfig)> = Vec::new();
        for generation in 0..cfg.generations {
            rater.check_cancel();
            let mut candidates = pop.clone();
            if generation == 0 {
                // Memetic seeding: score the O3 single-removal frontier
                // alongside generation 0, so best-so-far starts no worse
                // than the best single-flag elimination (the knowledge
                // IE's round 1 buys with the same budget). These extras
                // only feed best-so-far — the population evolves from
                // its own fitness slice, keeping the GA dynamics pure.
                candidates
                    .extend(base.enabled_flags().iter().map(|&f| base.without(f)));
            }
            let Some(fo) = rater.rate(base, &candidates) else {
                break;
            };
            for (i, &cand) in candidates.iter().enumerate().take(fo.rated) {
                let impr = fo.out.improvements[i];
                if impr.total_cmp(&best.0).is_gt() {
                    best = (impr, cand);
                }
                track_contender(&mut contenders, impr, cand);
            }
            if fo.truncated {
                break;
            }
            let fitness = &fo.out.improvements[..pop.len()];
            pop = ga_next_generation(&mut rng, &pop, fitness, cfg);
        }
        // Final verification round: re-rate the top contenders in one
        // frontier. Every finalist was already charged, so this is
        // budget-free; stable sort keeps ties in first-rated order.
        contenders.sort_by(|a, b| b.0.total_cmp(&a.0));
        contenders.truncate(GA_FINALISTS);
        let winner = if contenders.len() > 1 {
            rater.check_cancel();
            let finalists: Vec<OptConfig> = contenders.iter().map(|&(_, c)| c).collect();
            match rater.rate(base, &finalists) {
                Some(fo) => {
                    let besti = (0..fo.rated).max_by(|&a, &b| {
                        fo.out.improvements[a].total_cmp(&fo.out.improvements[b])
                    });
                    match besti {
                        Some(i) if fo.out.improvements[i] >= MIN_GAIN => finalists[i],
                        _ => base,
                    }
                }
                None => {
                    if best.0 >= MIN_GAIN {
                        best.1
                    } else {
                        base
                    }
                }
            }
        } else if best.0 >= MIN_GAIN {
            best.1
        } else {
            base
        };
        rater.finish(winner)
    }
}

/// Phase-clustered IE knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Extra probe rounds beyond probe 0 (the O3 single-removal round).
    pub probes: usize,
    /// Per-flag off probability for random probe bases, per mille.
    pub probe_off_per_mille: u64,
    /// Maximum flags per cluster.
    pub max_cluster: usize,
    /// |Pearson r| threshold (per mille) for joining a cluster.
    pub corr_threshold_per_mille: u64,
    /// PRNG seed for probe bases.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            probes: 2,
            probe_off_per_mille: 200,
            max_cluster: 8,
            corr_threshold_per_mille: 500,
            seed: 1,
        }
    }
}

/// Pearson correlation of two equal-length series; returns 0.0 for
/// degenerate (zero-variance or empty) inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs[..n].iter().sum::<f64>() / nf;
    let my = ys[..n].iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Greedy interaction clustering: order flags by probe-0 impact
/// (|delta − 1|, ties toward the lowest index), seed a cluster with the
/// most impactful unassigned flag, then pull in unassigned flags whose
/// rating-delta column correlates (|r| ≥ threshold) until `max_cluster`.
/// Returns clusters as index lists into the flag order of `deltas`
/// columns, in seed-impact order.
pub fn cluster_flags(
    deltas: &[Vec<f64>],
    impact: &[f64],
    max_cluster: usize,
    corr_threshold: f64,
) -> Vec<Vec<usize>> {
    let n = impact.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| impact[b].total_cmp(&impact[a]).then(a.cmp(&b)));
    let column = |i: usize| -> Vec<f64> { deltas.iter().map(|row| row[i]).collect() };
    let mut assigned = vec![false; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for &s in &order {
        if assigned[s] {
            continue;
        }
        assigned[s] = true;
        let mut cluster = vec![s];
        let cs = column(s);
        for &j in &order {
            if cluster.len() >= max_cluster.max(1) {
                break;
            }
            if assigned[j] {
                continue;
            }
            if pearson(&cs, &column(j)).abs() >= corr_threshold {
                assigned[j] = true;
                cluster.push(j);
            }
        }
        clusters.push(cluster);
    }
    clusters
}

/// Phase-clustered Iterative Elimination (multiple-phase-learning
/// style): a probe phase measures each flag's removal delta across a few
/// bases, flags are grouped by rating-delta correlation, and IE then
/// runs *within* each cluster against the evolving global base —
/// roughly O(Σ nᵢ²) frontier compiles instead of O(n²). Probe 0 is
/// exactly IE's round-1 frontier from O3, so the first cluster's opening
/// round re-uses already-charged configs (budget-free by the dedup
/// rule).
///
/// The probe phase is budget-aware: when the headroom left after probe 0
/// cannot fund the extra probes *plus* at least one round of in-cluster
/// exploitation, the strategy degrades to plain IE rounds over the full
/// flag set — spending scarce compiles on correlation estimates it could
/// never exploit would forfeit the search entirely. Like the GA, the run
/// ends with a budget-free verification round over the strongest
/// contenders (probe-0 removals and every accepted elimination step), so
/// budget exhaustion at any point still returns the best verified
/// configuration, and the answer can never regress below O3.
#[derive(Debug, Clone, Default)]
pub struct PhaseClusteredIe {
    /// Probe and clustering knobs.
    pub config: ClusterConfig,
}

impl PhaseClusteredIe {
    /// Default clustered IE seeded from the job seed.
    pub fn seeded(seed: u64) -> Self {
        PhaseClusteredIe { config: ClusterConfig { seed, ..ClusterConfig::default() } }
    }
}

impl SearchStrategy for PhaseClusteredIe {
    fn name(&self) -> &'static str {
        "clustered"
    }

    fn run(&self, rater: &mut FrontierRater<'_, '_>) -> SearchResult {
        let cfg = &self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        let base0 = OptConfig::o3();
        let all: Vec<Flag> = base0.enabled_flags();
        // Probe 0: the O3 single-removal frontier (== IE round 1).
        rater.check_cancel();
        count_ie_round();
        let cands0: Vec<OptConfig> = all.iter().map(|&f| base0.without(f)).collect();
        let Some(p0) = rater.rate(base0, &cands0) else {
            return rater.finish(base0);
        };
        let d0: Vec<f64> = (0..all.len())
            .map(|i| if i < p0.rated { p0.out.improvements[i] } else { 1.0 })
            .collect();
        // Every probe-0 removal is a contender: if the budget dies at any
        // later point, the verification round still has IE round-1's
        // knowledge to fall back on.
        let mut contenders: Vec<(f64, OptConfig)> = Vec::new();
        for (i, &cand) in cands0.iter().enumerate().take(p0.rated) {
            track_contender(&mut contenders, p0.out.improvements[i], cand);
        }
        let mut exhausted = p0.truncated;
        // Budget-aware probing: the extra probes plus at least one round
        // of in-cluster exploitation cost roughly `probes + 1` further
        // full frontiers. With less headroom than that the probe phase
        // would starve the exploitation it exists to guide, so degrade
        // to plain IE rounds instead — probe 0 is exactly IE's round-1
        // frontier, so nothing already spent is wasted.
        let probe_cost = (cfg.probes + 1) * (all.len() + 1);
        let probing = !exhausted && rater.remaining().is_none_or(|r| r >= probe_cost);
        // `base` evolves by ≥ MIN_GAIN elimination steps; `chain` is the
        // product of the accepted per-round gains — the vs-O3 estimate
        // that ranks the chain against probe-0 singles when picking
        // verification finalists.
        let mut base = base0;
        let mut chain = 1.0f64;
        if probing {
            let mut deltas: Vec<Vec<f64>> = vec![d0.clone()];
            // Extra probes from random bases: flags disabled in the base
            // get a neutral 1.0 delta for that row.
            for _probe in 0..cfg.probes {
                if exhausted {
                    break;
                }
                rater.check_cancel();
                let mut bits = base0.bits();
                for f in &all {
                    if rng.chance(cfg.probe_off_per_mille) {
                        bits &= !(1u64 << f.bit());
                    }
                }
                let pb = OptConfig::from_bits(bits);
                let live: Vec<usize> = (0..all.len()).filter(|&i| pb.enabled(all[i])).collect();
                if live.is_empty() {
                    continue;
                }
                let cands: Vec<OptConfig> = live.iter().map(|&i| pb.without(all[i])).collect();
                let Some(po) = rater.rate(pb, &cands) else {
                    exhausted = true;
                    break;
                };
                let mut row = vec![1.0f64; all.len()];
                for (k, &i) in live.iter().enumerate().take(po.rated) {
                    row[i] = po.out.improvements[k];
                }
                deltas.push(row);
                exhausted = po.truncated;
            }
            let impact: Vec<f64> = d0.iter().map(|&d| (d - 1.0).abs()).collect();
            let threshold = cfg.corr_threshold_per_mille as f64 / 1000.0;
            let clusters = cluster_flags(&deltas, &impact, cfg.max_cluster, threshold);
            // In-cluster IE against the evolving global base.
            'clusters: for cluster in &clusters {
                if exhausted {
                    break;
                }
                let members: Vec<Flag> = cluster.iter().map(|&i| all[i]).collect();
                for _round in 0..members.len() {
                    rater.check_cancel();
                    count_ie_round();
                    let live: Vec<Flag> =
                        members.iter().copied().filter(|&f| base.enabled(f)).collect();
                    if live.is_empty() {
                        break;
                    }
                    let cands: Vec<OptConfig> = live.iter().map(|&f| base.without(f)).collect();
                    let Some(fo) = rater.rate(base, &cands) else {
                        break 'clusters;
                    };
                    let besti = (0..fo.rated)
                        .max_by(|&a, &b| fo.out.improvements[a].total_cmp(&fo.out.improvements[b]));
                    match besti {
                        Some(i) if fo.out.improvements[i] >= MIN_GAIN => {
                            chain *= fo.out.improvements[i];
                            base = cands[i];
                            track_contender(&mut contenders, chain, base);
                        }
                        _ => {
                            if fo.truncated {
                                break 'clusters;
                            }
                            break;
                        }
                    }
                    if fo.truncated {
                        break 'clusters;
                    }
                }
            }
        } else {
            // Degenerate tight-budget path: probe 0 is consumed as IE's
            // round 1, and plain full-frontier IE rounds spend whatever
            // headroom remains.
            let besti = (0..p0.rated)
                .max_by(|&a, &b| p0.out.improvements[a].total_cmp(&p0.out.improvements[b]));
            if let Some(i) = besti {
                if p0.out.improvements[i] >= MIN_GAIN {
                    chain = p0.out.improvements[i];
                    base = cands0[i];
                }
            }
            if base.bits() != base0.bits() && !exhausted {
                for _round in 1..MAX_IE_ROUNDS {
                    rater.check_cancel();
                    count_ie_round();
                    let flags: Vec<Flag> = base.enabled_flags();
                    if flags.is_empty() {
                        break;
                    }
                    let cands: Vec<OptConfig> = flags.iter().map(|&f| base.without(f)).collect();
                    let Some(fo) = rater.rate(base, &cands) else {
                        break;
                    };
                    let besti = (0..fo.rated)
                        .max_by(|&a, &b| fo.out.improvements[a].total_cmp(&fo.out.improvements[b]));
                    match besti {
                        Some(i) if fo.out.improvements[i] >= MIN_GAIN => {
                            chain *= fo.out.improvements[i];
                            base = cands[i];
                            track_contender(&mut contenders, chain, base);
                        }
                        _ => break,
                    }
                    if fo.truncated {
                        break;
                    }
                }
            }
        }
        // Final verification round, mirroring the GA's: re-rate the top
        // contenders against O3 under one set of eval windows. Every
        // finalist was already charged, so the round is budget-free; the
        // MIN_GAIN guard means the answer never regresses below O3.
        contenders.sort_by(|a, b| b.0.total_cmp(&a.0));
        contenders.truncate(GA_FINALISTS);
        let winner = if contenders.is_empty() {
            base0
        } else {
            rater.check_cancel();
            let finalists: Vec<OptConfig> = contenders.iter().map(|&(_, c)| c).collect();
            match rater.rate(base0, &finalists) {
                Some(fo) => {
                    let besti = (0..fo.rated).max_by(|&a, &b| {
                        fo.out.improvements[a].total_cmp(&fo.out.improvements[b])
                    });
                    match besti {
                        Some(i) if fo.out.improvements[i] >= MIN_GAIN => finalists[i],
                        _ => base0,
                    }
                }
                None => {
                    if contenders[0].0 >= MIN_GAIN {
                        contenders[0].1
                    } else {
                        base0
                    }
                }
            }
        };
        rater.finish(winner)
    }
}

/// Biased random search (Cooper-style), ported onto the rater: sample
/// configurations with each flag independently off with a per-mille
/// probability, rate the whole batch as one frontier, keep the best if
/// it clears [`MIN_GAIN`]. The budget truncates the batch, which is what
/// makes it the natural equal-budget baseline.
#[derive(Debug, Clone)]
pub struct RandomSearchStrategy {
    /// Sample count (the budget usually truncates this).
    pub samples: usize,
    /// Per-flag off probability, per mille.
    pub p_off_per_mille: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl RandomSearchStrategy {
    /// Default random search seeded from the job seed.
    pub fn seeded(seed: u64) -> Self {
        RandomSearchStrategy { samples: 256, p_off_per_mille: 300, seed }
    }
}

impl SearchStrategy for RandomSearchStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn run(&self, rater: &mut FrontierRater<'_, '_>) -> SearchResult {
        let mut rng = SplitMix64::new(self.seed);
        let base = OptConfig::o3();
        let candidates: Vec<OptConfig> = (0..self.samples)
            .map(|_| {
                let mut bits = base.bits();
                for f in ALL_FLAGS {
                    if rng.chance(self.p_off_per_mille) {
                        bits &= !(1u64 << f.bit());
                    }
                }
                OptConfig::from_bits(bits)
            })
            .collect();
        rater.check_cancel();
        let Some(fo) = rater.rate(base, &candidates) else {
            return rater.finish(base);
        };
        let besti = (0..fo.rated)
            .max_by(|&a, &b| fo.out.improvements[a].total_cmp(&fo.out.improvements[b]));
        let best = match besti {
            Some(i) if fo.out.improvements[i] >= MIN_GAIN => candidates[i],
            _ => base,
        };
        rater.finish(best)
    }
}

/// The registered strategies, by stable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Iterative Elimination (the paper's search; the default).
    Ie,
    /// Seeded genetic search.
    Ga,
    /// Phase-clustered IE.
    ClusteredIe,
    /// Biased random search (the equal-budget baseline).
    Random,
}

impl StrategyKind {
    /// Stable name (job specs, bench artifacts, CLI).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Ie => "ie",
            StrategyKind::Ga => "ga",
            StrategyKind::ClusteredIe => "clustered",
            StrategyKind::Random => "random",
        }
    }

    /// All kinds, in shoot-out order.
    pub fn all() -> [StrategyKind; 4] {
        [StrategyKind::Ie, StrategyKind::Ga, StrategyKind::ClusteredIe, StrategyKind::Random]
    }
}

/// Deterministic strategy seed for a (workload, machine) pair: FNV-1a
/// over the two names with a separator byte. Seeded strategies stay
/// replayable without storing per-job seeds, and different jobs explore
/// different trajectories.
pub fn strategy_seed(workload: &str, machine: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in workload.as_bytes().iter().chain(&[0x1fu8]).chain(machine.as_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Resolve a strategy name (as accepted in job specs and the serve
/// protocol). `None` for unknown names.
pub fn strategy_kind_by_name(name: &str) -> Option<StrategyKind> {
    match name {
        "ie" => Some(StrategyKind::Ie),
        "ga" | "genetic" => Some(StrategyKind::Ga),
        "clustered" | "clustered-ie" => Some(StrategyKind::ClusteredIe),
        "random" => Some(StrategyKind::Random),
        _ => None,
    }
}

/// Instantiate a strategy with its default knobs, seeded off the job
/// seed (IE takes no randomness and ignores the seed).
pub fn build_strategy(kind: StrategyKind, seed: u64) -> Box<dyn SearchStrategy> {
    match kind {
        StrategyKind::Ie => Box::new(IterativeElimination::default()),
        StrategyKind::Ga => Box::new(GeneticSearch::seeded(seed)),
        StrategyKind::ClusteredIe => Box::new(PhaseClusteredIe::seeded(seed)),
        StrategyKind::Random => Box::new(RandomSearchStrategy::seeded(seed)),
    }
}

/// Run `kind` on a pooled (per-candidate, thread-invariant) rater with
/// an optional compilation budget. See [`search_with_strategy_spent`]
/// for the budget-accounting variant.
pub fn search_with_strategy(
    setup: &mut TuningSetup<'_>,
    pool: &Pool,
    method: Method,
    kind: StrategyKind,
    budget: Option<usize>,
    seed: u64,
) -> SearchResult {
    search_with_strategy_spent(setup, pool, method, kind, budget, seed).0
}

/// [`search_with_strategy`] that also returns the unique configurations
/// charged — the number another strategy must be capped at for an
/// equal-budget comparison. (Kept out of [`SearchResult`] so the golden
/// JSON schema of the Table 1 pipeline stays untouched.)
pub fn search_with_strategy_spent(
    setup: &mut TuningSetup<'_>,
    pool: &Pool,
    method: Method,
    kind: StrategyKind,
    budget: Option<usize>,
    seed: u64,
) -> (SearchResult, usize) {
    let strategy = build_strategy(kind, seed);
    let mut rater = FrontierRater::pooled(setup, pool.clone(), method);
    if let Some(n) = budget {
        rater = rater.with_budget(CompilationBudget::limited(n));
    }
    let result = strategy.run(&mut rater);
    let spent = rater.spent();
    (result, spent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_full_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x > u32::MAX as u64), "uses the full word");
    }

    #[test]
    fn budget_dedups_and_truncates() {
        let mut b = CompilationBudget::limited(3);
        let o3 = OptConfig::o3();
        let c1 = o3.without(ALL_FLAGS[0]);
        let c2 = o3.without(ALL_FLAGS[1]);
        let c3 = o3.without(ALL_FLAGS[2]);
        assert!(b.charge_one(o3));
        assert!(b.charge_one(o3), "re-charging a seen config is free");
        assert_eq!(b.spent(), 1);
        // Prefix semantics: c1 and c2 fit, c3 does not.
        assert_eq!(b.charge(&[c1, o3, c2, c3]), 3);
        assert_eq!(b.spent(), 3);
        assert!(b.charge_one(c2), "seen configs stay free after exhaustion");
        assert!(!b.charge_one(c3));
    }

    #[test]
    fn crossover_and_mutation_stay_in_flag_word() {
        let mut rng = SplitMix64::new(7);
        let mask = (1u64 << NUM_FLAGS) - 1;
        for _ in 0..200 {
            let a = OptConfig::from_bits(rng.next() & mask);
            let b = OptConfig::from_bits(rng.next() & mask);
            let child = ga_uniform_crossover(&mut rng, a, b);
            assert_eq!(child.bits() & !mask, 0);
            let m = ga_mutate(&mut rng, child, 500);
            assert_eq!(m.bits() & !mask, 0);
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for kind in StrategyKind::all() {
            assert_eq!(strategy_kind_by_name(kind.name()), Some(kind));
        }
        assert_eq!(strategy_kind_by_name("genetic"), Some(StrategyKind::Ga));
        assert_eq!(strategy_kind_by_name("clustered-ie"), Some(StrategyKind::ClusteredIe));
        assert_eq!(strategy_kind_by_name("simulated-annealing"), None);
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0, "degenerate variance");
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn clustering_respects_max_size_and_covers_all() {
        // Two perfectly correlated groups of columns.
        let deltas = vec![
            vec![1.1, 1.1, 1.0, 0.9, 0.9],
            vec![1.2, 1.2, 1.0, 0.8, 0.8],
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
        ];
        let impact = vec![0.1, 0.1, 0.0, 0.1, 0.1];
        let clusters = cluster_flags(&deltas, &impact, 2, 0.5);
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "every flag assigned exactly once");
        assert!(clusters.iter().all(|c| c.len() <= 2));
    }
}
