//! Execution-tier glue: lazily lowers prepared versions with
//! `peak-jit`, remembers per-version refusals, and counts tier
//! telemetry in the global metrics registry.
//!
//! The harness asks [`jit_backend`] for a version's native backend on
//! every jit-tier invocation; the underlying
//! [`PreparedVersion::native_backend`] slot makes that a one-time
//! lowering per version (shared process-wide through the version
//! cache), with a remembered `None` for versions that declined — the
//! permanent per-version fallback the tier ladder promises. Declines
//! emit a `jit.deopt` trace event and bump `core.jit.deopts`; the
//! metric names are:
//!
//! * `core.jit.blocks_compiled` — basic blocks lowered to threaded code
//! * `core.jit.deopts` — versions that declined lowering (fell back)
//! * `core.jit.tier_invocations.{interp,predecoded,jit}` — invocations
//!   executed per tier (the predecoded count includes jit-tier
//!   fallback executions)

use peak_obs::metrics::{self, Counter, MetricsRegistry};
use peak_obs::Tracer;
use peak_sim::{ExecTier, PreparedVersion, TierBackend};
use peak_util::Json;
use std::sync::{Arc, OnceLock};

macro_rules! cached_counter {
    ($name:literal, $help:literal) => {{
        static CELL: OnceLock<Arc<Counter>> = OnceLock::new();
        CELL.get_or_init(|| MetricsRegistry::global().counter($name, $help))
    }};
}

/// Count one executed invocation against the tier that actually ran it
/// (hot path: one relaxed flag load, then a cached-handle `fetch_add`).
#[inline]
pub(crate) fn count_tier(tier: ExecTier) {
    if !metrics::enabled() {
        return;
    }
    match tier {
        ExecTier::Interp => cached_counter!(
            "core.jit.tier_invocations.interp",
            "TS invocations executed by the slow interpreter tier"
        ),
        ExecTier::Predecoded => cached_counter!(
            "core.jit.tier_invocations.predecoded",
            "TS invocations executed by the predecoded tier (includes jit fallback)"
        ),
        ExecTier::Jit => cached_counter!(
            "core.jit.tier_invocations.jit",
            "TS invocations executed by the threaded-code jit tier"
        ),
    }
    .inc();
}

/// Ensure the jit tier counters exist in the registry (at zero) so
/// stats snapshots always carry them, even before the first jit-tier
/// invocation. Called by the serve daemon's stats path.
pub fn register_jit_metrics() {
    cached_counter!(
        "core.jit.tier_invocations.interp",
        "TS invocations executed by the slow interpreter tier"
    );
    cached_counter!(
        "core.jit.tier_invocations.predecoded",
        "TS invocations executed by the predecoded tier (includes jit fallback)"
    );
    cached_counter!(
        "core.jit.tier_invocations.jit",
        "TS invocations executed by the threaded-code jit tier"
    );
    cached_counter!("core.jit.blocks_compiled", "Basic blocks lowered to threaded code");
    cached_counter!("core.jit.deopts", "Versions that declined jit lowering (fell back)");
}

/// The version's native backend, lowering it on first request (budget
/// from `PEAK_JIT_MAX_STMTS`). `None` = this version declined and
/// permanently runs on the predecoded tier; the refusal is remembered,
/// counted once in `core.jit.deopts`, and traced once as `jit.deopt`.
pub fn jit_backend<'a>(
    pv: &'a PreparedVersion,
    tracer: &Tracer,
) -> Option<&'a Arc<dyn TierBackend>> {
    pv.native_backend(|pv| {
        let opts = peak_jit::JitOptions::from_env();
        match peak_jit::lower(pv, &opts) {
            Ok(jv) => {
                if metrics::enabled() {
                    cached_counter!(
                        "core.jit.blocks_compiled",
                        "Basic blocks lowered to threaded code"
                    )
                    .add(jv.blocks() as u64);
                }
                Some(Arc::new(jv) as Arc<dyn TierBackend>)
            }
            Err(reason) => {
                if metrics::enabled() {
                    cached_counter!(
                        "core.jit.deopts",
                        "Versions that declined jit lowering (fell back)"
                    )
                    .inc();
                }
                if tracer.enabled() {
                    tracer.emit(
                        "jit.deopt",
                        vec![("reason".to_owned(), Json::Str(reason.to_string()))],
                    );
                }
                None
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_opt::OptConfig;
    use peak_sim::MachineSpec;
    use peak_workloads::Workload;

    #[test]
    fn backend_lowers_once_and_is_shared() {
        let w = peak_workloads::swim::SwimCalc3::new();
        let cv = peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3());
        let pv = PreparedVersion::prepare(cv, &MachineSpec::sparc_ii());
        let t = Tracer::disabled();
        let a = jit_backend(&pv, &t).expect("swim lowers") as *const _;
        let b = jit_backend(&pv, &t).expect("swim lowers") as *const _;
        assert_eq!(a, b, "same artifact returned on every request");
    }
}
