//! Property tests for the genetic-search operators and the compilation
//! budget (vendored proptest — no network, no flaky randomness: every
//! case is a pure function of the proptest seed).
//!
//! Pinned properties:
//! * crossover/mutation never leave the 38-bit flag word;
//! * elitism never loses the best individual of a generation;
//! * the same seed yields the same population trajectory;
//! * a budget's `spent` never exceeds its limit, under any charge
//!   sequence (the "overshoot by at most the check itself" rule).

use peak_core::{
    ga_mutate, ga_next_generation, ga_uniform_crossover, CompilationBudget, GaConfig, SplitMix64,
};
use peak_opt::{OptConfig, NUM_FLAGS};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

const FLAG_MASK: u64 = (1u64 << NUM_FLAGS) - 1;

fn population(seed: u64, n: usize) -> Vec<OptConfig> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| OptConfig::from_bits(rng.next() & FLAG_MASK)).collect()
}

fn fitness_from(seed: u64, n: usize) -> Vec<f64> {
    // Deterministic pseudo-fitness in [0.9, 1.1) — the operators must
    // work for any fitness landscape, not just rated improvements.
    let mut rng = SplitMix64::new(seed ^ 0xf17e55);
    (0..n).map(|_| 0.9 + (rng.below(2000) as f64) / 10_000.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Crossover and mutation stay inside the flag word for arbitrary
    /// parents, seeds, and mutation rates.
    #[test]
    fn operators_preserve_flag_word_validity(
        a_bits in any::<u64>(),
        b_bits in any::<u64>(),
        seed in any::<u64>(),
        per_mille in 0u64..=1000,
    ) {
        let a = OptConfig::from_bits(a_bits);
        let b = OptConfig::from_bits(b_bits);
        let mut rng = SplitMix64::new(seed);
        let child = ga_uniform_crossover(&mut rng, a, b);
        prop_assert_eq!(child.bits() & !FLAG_MASK, 0, "crossover escaped the flag word");
        // Crossover is a per-bit choice: every child bit comes from a
        // parent, so bits set in neither parent stay clear.
        prop_assert_eq!(child.bits() & !(a.bits() | b.bits()), 0);
        let mutated = ga_mutate(&mut rng, child, per_mille);
        prop_assert_eq!(mutated.bits() & !FLAG_MASK, 0, "mutation escaped the flag word");
    }

    /// Extremes: mutation at 0‰ is the identity, at 1000‰ it flips
    /// every flag.
    #[test]
    fn mutation_rate_extremes(bits in any::<u64>(), seed in any::<u64>()) {
        let cfg = OptConfig::from_bits(bits);
        let mut rng = SplitMix64::new(seed);
        prop_assert_eq!(ga_mutate(&mut rng, cfg, 0).bits(), cfg.bits());
        prop_assert_eq!(ga_mutate(&mut rng, cfg, 1000).bits(), cfg.bits() ^ FLAG_MASK);
    }

    /// The next generation always carries the fittest individual
    /// forward unchanged (elitism ≥ 1 never loses the best).
    #[test]
    fn elitism_never_loses_the_best(
        pop_seed in any::<u64>(),
        fit_seed in any::<u64>(),
        rng_seed in any::<u64>(),
        n in 2usize..16,
        elitism in 1usize..4,
    ) {
        let pop = population(pop_seed, n);
        let fitness = fitness_from(fit_seed, n);
        let cfg = GaConfig { population: n, elitism, ..GaConfig::default() };
        let mut rng = SplitMix64::new(rng_seed);
        let next = ga_next_generation(&mut rng, &pop, &fitness, &cfg);
        prop_assert_eq!(next.len(), pop.len());
        let besti = (0..n)
            .max_by(|&a, &b| fitness[a].total_cmp(&fitness[b]).then(b.cmp(&a)))
            .unwrap();
        prop_assert!(
            next.iter().any(|c| c.bits() == pop[besti].bits()),
            "best individual (index {}) lost", besti
        );
        // And every survivor is still a valid flag word.
        prop_assert!(next.iter().all(|c| c.bits() & !FLAG_MASK == 0));
    }

    /// Same seed → same population trajectory, generation after
    /// generation (the replayability doctrine at the operator level).
    #[test]
    fn same_seed_same_trajectory(
        pop_seed in any::<u64>(),
        fit_seed in any::<u64>(),
        rng_seed in any::<u64>(),
        generations in 1usize..6,
    ) {
        let n = 8;
        let cfg = GaConfig { population: n, ..GaConfig::default() };
        let mut rng_a = SplitMix64::new(rng_seed);
        let mut rng_b = SplitMix64::new(rng_seed);
        let mut pop_a = population(pop_seed, n);
        let mut pop_b = pop_a.clone();
        for g in 0..generations {
            let fitness = fitness_from(fit_seed.wrapping_add(g as u64), n);
            pop_a = ga_next_generation(&mut rng_a, &pop_a, &fitness, &cfg);
            pop_b = ga_next_generation(&mut rng_b, &pop_b, &fitness, &cfg);
            let bits_a: Vec<u64> = pop_a.iter().map(|c| c.bits()).collect();
            let bits_b: Vec<u64> = pop_b.iter().map(|c| c.bits()).collect();
            prop_assert_eq!(bits_a, bits_b, "trajectories diverged at generation {}", g);
        }
    }

    /// `spent ≤ limit` under arbitrary charge sequences, duplicates are
    /// free, and `charge` reports a consistent affordable prefix.
    #[test]
    fn budget_never_overspends(
        limit in 0usize..40,
        seed in any::<u64>(),
        rounds in 1usize..8,
        frontier in 1usize..20,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut budget = CompilationBudget::limited(limit);
        let mut unique = std::collections::HashSet::new();
        for _ in 0..rounds {
            // Draw from a small pool of configs so duplicates are common.
            let cfgs: Vec<OptConfig> = (0..frontier)
                .map(|_| OptConfig::from_bits(rng.below(24) << 1))
                .collect();
            let afford = budget.charge(&cfgs);
            prop_assert!(afford <= cfgs.len());
            for c in &cfgs[..afford] {
                unique.insert(c.bits());
            }
            prop_assert!(budget.spent() <= limit, "overspent: {} > {}", budget.spent(), limit);
            prop_assert_eq!(budget.spent(), unique.len().min(limit));
            // Everything in the affordable prefix is now free to re-charge.
            if afford > 0 {
                prop_assert!(budget.charge_one(cfgs[afford - 1]));
                prop_assert!(budget.spent() <= limit);
            }
        }
        prop_assert_eq!(budget.remaining(), Some(limit - budget.spent()));
    }
}
