//! Checkpoint error paths: a damaged, truncated, or foreign checkpoint
//! file must surface as a structured `io::Error` — never a panic — and
//! the tuner must be able to start fresh (and overwrite the bad file)
//! after any failed resume.

use peak_core::{Method, Tuner, TunerCheckpoint};
use peak_sim::MachineSpec;
use peak_workloads::swim::SwimCalc3;
use peak_workloads::Dataset;
use std::io::ErrorKind;
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("peak-checkpoint-recovery-{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A checkpoint as an uninterrupted tuner would write it.
fn valid_checkpoint_text() -> String {
    let w = SwimCalc3::new();
    let dir = scratch_dir("valid");
    let path = dir.join("cp.json");
    let mut t = Tuner::new(&w, MachineSpec::sparc_ii(), Method::Cbr, Dataset::Train);
    t.checkpoint_to(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    text
}

#[test]
fn load_missing_file_is_not_found() {
    let path = scratch_dir("missing").join("does-not-exist.json");
    let err = TunerCheckpoint::load(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NotFound);
}

#[test]
fn load_empty_file_is_invalid_data() {
    let path = scratch_dir("empty").join("cp.json");
    std::fs::write(&path, "").unwrap();
    let err = TunerCheckpoint::load(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_truncated_checkpoint_is_invalid_data() {
    let text = valid_checkpoint_text();
    let path = scratch_dir("truncated").join("cp.json");
    // Cut the file at several points; every prefix must fail with
    // InvalidData (or parse to the full document, which a strict prefix
    // of a valid JSON object never does).
    for frac in [1, 2, 3, 9] {
        let cut = text.len() * frac / 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        let err = TunerCheckpoint::load(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "cut at {cut}: {err}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_binary_garbage_is_invalid_data() {
    let path = scratch_dir("garbage").join("cp.json");
    std::fs::write(&path, [0xFFu8, 0x00, 0x9A, 0x42, 0x7B, 0x22]).unwrap();
    let err = TunerCheckpoint::load(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_wrong_json_shape_is_invalid_data() {
    let path = scratch_dir("shape").join("cp.json");
    // Valid JSON, but not a tuner checkpoint.
    std::fs::write(&path, r#"{"benchmark": "SWIM", "round": "three"}"#).unwrap();
    let err = TunerCheckpoint::load(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("not a tuner checkpoint"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_from_corrupt_file_fails_then_fresh_start_overwrites() {
    let w = SwimCalc3::new();
    let spec = MachineSpec::sparc_ii();
    let path = scratch_dir("restart").join("cp.json");
    std::fs::write(&path, "{ this is not json").unwrap();

    // Resume must fail with a structured error, not panic.
    let err = match Tuner::resume(&w, spec.clone(), &path) {
        Ok(_) => panic!("resume from corrupt file succeeded"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");

    // The documented recovery: start fresh and checkpoint over the bad
    // file. The overwrite is atomic (tmp + rename), after which resume
    // works again.
    let mut fresh = Tuner::new(&w, spec.clone(), Method::Cbr, Dataset::Train);
    fresh.checkpoint_to(&path).unwrap();
    let resumed = Tuner::resume(&w, spec, &path);
    assert!(resumed.is_ok(), "{:?}", resumed.err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_unknown_dataset() {
    let w = SwimCalc3::new();
    let spec = MachineSpec::sparc_ii();
    let path = scratch_dir("dataset").join("cp.json");
    let text = valid_checkpoint_text().replace("\"train\"", "\"lunar\"");
    std::fs::write(&path, text).unwrap();
    let err = match Tuner::resume(&w, spec, &path) {
        Ok(_) => panic!("resume with unknown dataset succeeded"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("dataset"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_wrong_machine() {
    let w = SwimCalc3::new();
    let path = scratch_dir("machine").join("cp.json");
    let mut t = Tuner::new(&w, MachineSpec::sparc_ii(), Method::Cbr, Dataset::Train);
    t.checkpoint_to(&path).unwrap();
    let err = match Tuner::resume(&w, MachineSpec::pentium_iv(), &path) {
        Ok(_) => panic!("resume with wrong machine succeeded"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("machine"), "{err}");
    std::fs::remove_file(&path).ok();
}
