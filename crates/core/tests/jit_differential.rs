//! Differential suite for the threaded-code (jit) execution tier.
//!
//! The tier ladder's contract is *bit-identical observables*: results,
//! instrumentation counters, write logs, per-invocation `true_cycles`,
//! and accumulated machine state may not differ between tiers. Three
//! oracles pin the jit tier down:
//!
//! 1. **The predecoded cycle golden** — the exact same 42-scenario
//!    golden that gates the predecoded executor
//!    (`tests/goldens/exec_cycles.json`) must reproduce byte-for-byte
//!    with the harness forced to the jit tier. One golden, every tier.
//! 2. **The passfuzz regression corpus** — every shrunk divergence the
//!    differential-fuzz fleet ever found (`peak-opt`'s
//!    `tests/corpus/*.ir`) replays through the jit backend and must
//!    match the reference interpreter and the predecoded executor.
//! 3. **Fresh generative programs** — `PEAK_JIT_FUZZ_SEEDS` seeds
//!    (default 300; CI cranks this up) of `fuzzgen` programs, each
//!    compiled at O0 and O3 and compared against both oracles.

use peak_core::RunHarness;
use peak_obs::Tracer;
use peak_opt::{Flag, OptConfig};
use peak_sim::{
    AddressMap, ExecOptions, ExecTier, MachineSpec, MachineState, PreparedVersion,
};
use peak_util::Json;
use peak_workloads::{fuzzgen, workload_by_name, Dataset, Workload};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

const INVOCATIONS: usize = 6;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/exec_cycles.json");

/// Same scenario grid as `predecoded_differential.rs` — the golden is
/// shared, so the grids must stay in lockstep.
fn scenario_configs() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("o3", OptConfig::o3()),
        ("o0", OptConfig::o0()),
        ("o3-no-coalesce", OptConfig::o3().without(Flag::RegAllocCoalesce)),
        ("o3-no-sched2", OptConfig::o3().without(Flag::ScheduleInsns2)),
        ("o3-no-rename", OptConfig::o3().without(Flag::RenameRegisters)),
        ("o3-no-delay", OptConfig::o3().without(Flag::DelayedBranch)),
        ("o3-no-csave", OptConfig::o3().without(Flag::CallerSaves)),
    ]
}

fn scenario_workloads() -> Vec<Box<dyn Workload>> {
    ["swim", "vortex", "gzip"]
        .iter()
        .map(|n| workload_by_name(n).expect("known workload"))
        .collect()
}

fn prepare(w: &dyn Workload, cfg: &OptConfig, spec: &MachineSpec) -> PreparedVersion {
    PreparedVersion::prepare(peak_opt::optimize(w.program(), w.ts(), cfg), spec)
}

/// The predecoded differential's observation loop, with the harness
/// forced to the jit tier.
#[test]
fn jit_tier_reproduces_exec_cycles_golden() {
    let text = std::fs::read_to_string(GOLDEN)
        .expect("golden missing: run predecoded_differential's regenerate test");
    let golden = peak_util::from_str(&text).expect("golden parses");
    let golden = golden.as_arr().expect("golden is an array");

    let mut row = 0;
    for w in scenario_workloads() {
        for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
            for (cname, cfg) in scenario_configs() {
                let pv = prepare(w.as_ref(), &cfg, &spec);
                let mut h = RunHarness::new(w.as_ref(), Dataset::Train, &spec, 7);
                h.set_tier(ExecTier::Jit);
                let plain = ExecOptions::default();
                let record = ExecOptions { record_writes: true, num_counters: 0 };
                let mut cycles = Vec::new();
                let mut recorded_cycles = Vec::new();
                let mut writes_len = Vec::new();
                for i in 0..INVOCATIONS {
                    let args = h.next_args().expect("invocation budget");
                    if i % 2 == 0 {
                        let r = h.execute(&pv, &args, &plain);
                        cycles.push(r.true_cycles);
                    } else {
                        let r = h.execute(&pv, &args, &record);
                        recorded_cycles.push(r.true_cycles);
                        writes_len.push(r.writes.len() as u64);
                    }
                }
                let g = &golden[row];
                row += 1;
                let id = format!("{} / {} / {cname} [jit]", w.name(), spec.kind.name());
                let gold_u64s = |key: &str| -> Vec<u64> {
                    g.get(key)
                        .and_then(Json::as_arr)
                        .map(|a| a.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default()
                };
                assert_eq!(
                    g.get("workload").and_then(Json::as_str),
                    Some(w.name()),
                    "scenario order drifted: {id}"
                );
                assert_eq!(gold_u64s("cycles"), cycles, "true_cycles drifted: {id}");
                assert_eq!(
                    gold_u64s("recorded_cycles"),
                    recorded_cycles,
                    "record_writes true_cycles drifted: {id}"
                );
                assert_eq!(gold_u64s("writes_len"), writes_len, "write log drifted: {id}");
                assert_eq!(
                    g.get("total_cycles").and_then(Json::as_u64),
                    Some(h.cycles()),
                    "run-total cycles drifted: {id}"
                );
            }
        }
    }
    assert_eq!(row, golden.len(), "scenario grid out of lockstep with the golden");
}

// ---- passfuzz corpus replay through the jit backend ----

struct Entry {
    name: String,
    prog: peak_ir::Program,
    func: peak_ir::FuncId,
    cfg: OptConfig,
    machine: MachineSpec,
    args: [peak_ir::Value; 3],
}

fn parse_hex_u64(s: &str) -> u64 {
    let t = s.trim().trim_start_matches("0x");
    u64::from_str_radix(t, 16).unwrap_or_else(|e| panic!("bad hex {s:?}: {e}"))
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../opt/tests/corpus")
}

fn parse_entry(path: &Path) -> Entry {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut headers: HashMap<String, String> = HashMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix('#') else { continue };
        if let Some((k, v)) = rest.split_once(':') {
            headers.entry(k.trim().to_string()).or_insert_with(|| v.trim().to_string());
        }
    }
    let bits = parse_hex_u64(headers.get("config_bits").expect("config_bits header"));
    let machine = match headers.get("machine").map(String::as_str) {
        Some("p4") => MachineSpec::pentium_iv(),
        _ => MachineSpec::sparc_ii(),
    };
    let parts: Vec<&str> =
        headers.get("args").expect("args header").split_whitespace().collect();
    let args = [
        peak_ir::Value::I64(parts[0].parse().unwrap()),
        peak_ir::Value::I64(parts[1].parse().unwrap()),
        peak_ir::Value::F64(f64::from_bits(parse_hex_u64(parts[2]))),
    ];
    let prog = peak_ir::parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    let func = prog.func_by_name("gen").expect("corpus function 'gen'");
    Entry { name, prog, func, cfg: OptConfig::from_bits(bits), machine, args }
}

/// Run `pv` once on a fresh noiseless machine through the given tier's
/// executor; returns (result, final memory).
fn run_once(
    pv: &PreparedVersion,
    prog: &peak_ir::Program,
    machine: &MachineSpec,
    args: &[peak_ir::Value],
    jit: bool,
) -> (peak_sim::ExecResult, peak_ir::MemoryImage) {
    let mem_lens: Vec<usize> = prog.mems.iter().map(|m| m.len).collect();
    let amap = AddressMap::new(&mem_lens);
    let mut mem = fuzzgen::init_memory(prog);
    let mut state = MachineState::noiseless(machine.clone());
    let opts = ExecOptions::default();
    let res = if jit {
        let be = peak_core::jit_backend(pv, &Tracer::disabled()).expect("corpus entry lowers");
        let mut scratch = peak_sim::ExecScratch::new();
        be.execute(args, &mut mem, &amap, &mut state, &opts, &mut scratch)
    } else {
        peak_sim::execute(pv, args, &mut mem, &amap, &mut state, &opts)
    }
    .expect("execution succeeds");
    (res, mem)
}

/// Every corpus entry must replay identically on the jit backend: same
/// return as the reference interpreter, same final memory, and
/// bit-identical `true_cycles` with the predecoded executor.
#[test]
fn jit_replays_passfuzz_corpus() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|d| d.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "regression corpus is empty");
    for p in &paths {
        let e = parse_entry(p);
        let cv = peak_opt::optimize(&e.prog, e.func, &e.cfg);
        let pv = PreparedVersion::prepare(cv, &e.machine);
        let (want_ret, want_mem) = fuzzgen::run_reference(&pv.version.program, pv.version.func, &e.args);
        let (pre, pre_mem) = run_once(&pv, &e.prog, &e.machine, &e.args, false);
        let (jit, jit_mem) = run_once(&pv, &e.prog, &e.machine, &e.args, true);
        let id = &e.name;
        match (&want_ret, &jit.ret) {
            (Some(a), Some(b)) if peak_ir::values_eq(a, b) => {}
            (None, None) => {}
            _ => panic!("{id}: jit return {:?} vs interpreter {want_ret:?}", jit.ret),
        }
        assert_eq!(jit_mem, want_mem, "{id}: jit final memory diverged from interpreter");
        assert_eq!(jit.true_cycles, pre.true_cycles, "{id}: jit cycles diverged");
        assert_eq!(jit_mem, pre_mem, "{id}: jit memory diverged from predecoded");
    }
    println!("corpus: {} entries replayed clean under jit", paths.len());
}

/// Fresh generative programs: jit vs reference interpreter (semantics)
/// and jit vs predecoded (cycles), across O0 and O3 on both machines.
#[test]
fn jit_matches_interpreter_on_fresh_seeds() {
    let seeds: u64 = std::env::var("PEAK_JIT_FUZZ_SEEDS")
        .ok()
        .map(|s| s.parse().expect("PEAK_JIT_FUZZ_SEEDS: not a count"))
        .unwrap_or(300);
    let machines = [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()];
    let mut lowered = 0u64;
    for seed in 0..seeds {
        let stmts = fuzzgen::gen_stmts(seed);
        let (prog, func) = fuzzgen::build_program(&stmts);
        let args = fuzzgen::gen_args(seed);
        let (want_ret, want_mem) = fuzzgen::run_reference(&prog, func, &args);
        for cfg in [OptConfig::o0(), OptConfig::o3()] {
            let machine = &machines[(seed % 2) as usize];
            let cv = peak_opt::optimize(&prog, func, &cfg);
            let pv = PreparedVersion::prepare(cv, machine);
            let (opt_ret, opt_mem) =
                fuzzgen::run_reference(&pv.version.program, pv.version.func, &args);
            // The optimizer itself is gated elsewhere; skip seeds where
            // the pipeline already changed observables (none known).
            match (&want_ret, &opt_ret) {
                (Some(a), Some(b)) if peak_ir::values_eq(a, b) => {}
                (None, None) => {}
                _ => panic!("seed {seed}: optimizer broke semantics"),
            }
            assert_eq!(want_mem, opt_mem, "seed {seed}: optimizer broke memory");
            let (pre, pre_mem) = run_once(&pv, &prog, machine, &args, false);
            let (jit, jit_mem) = run_once(&pv, &prog, machine, &args, true);
            lowered += 1;
            let id = format!("seed {seed} / {:?}", machine.kind);
            match (&want_ret, &jit.ret) {
                (Some(a), Some(b)) if peak_ir::values_eq(a, b) => {}
                (None, None) => {}
                _ => panic!("{id}: jit return {:?} vs interpreter {want_ret:?}", jit.ret),
            }
            assert_eq!(jit_mem, want_mem, "{id}: jit final memory diverged");
            assert_eq!(jit.true_cycles, pre.true_cycles, "{id}: cycles diverged");
            assert_eq!(jit.ret, pre.ret, "{id}: returns diverged across tiers");
            assert_eq!(jit_mem, pre_mem, "{id}: memory diverged across tiers");
        }
    }
    println!("fuzz: {lowered} program×config pairs bit-identical under jit");
}
