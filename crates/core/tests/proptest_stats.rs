//! Property tests on the rating statistics and the MBR regression solver.

use peak_core::linreg;
use peak_core::stats::{robust_summary, summarize, trim_outliers, OUTLIER_K};
use proptest::prelude::*;

proptest! {
    /// Outlier trimming never removes the majority of the data and always
    /// returns a subset.
    #[test]
    fn trimming_is_a_conservative_subset(xs in prop::collection::vec(50.0f64..150.0, 8..100)) {
        let kept = trim_outliers(&xs, OUTLIER_K);
        prop_assert!(kept.len() * 2 >= xs.len(), "majority survives");
        for k in &kept {
            prop_assert!(xs.contains(k));
        }
    }

    /// Adding a huge spike to clean data does not move the robust mean by
    /// more than the clean spread.
    #[test]
    fn robust_mean_resists_spikes(
        xs in prop::collection::vec(990.0f64..1010.0, 10..60),
        spike in 1.0e5f64..1.0e7,
    ) {
        let clean = summarize(&xs);
        let mut polluted = xs.clone();
        polluted.push(spike);
        let robust = robust_summary(&polluted);
        prop_assert!((robust.mean - clean.mean).abs() < 25.0,
            "robust {} vs clean {}", robust.mean, clean.mean);
    }

    /// Mean/variance match a direct computation.
    #[test]
    fn summary_matches_reference(xs in prop::collection::vec(-1.0e6f64..1.0e6, 2..50)) {
        let s = summarize(&xs);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((s.mean - mean).abs() <= mean.abs() * 1e-12 + 1e-9);
        prop_assert!((s.variance - var).abs() <= var.abs() * 1e-9 + 1e-6);
    }

    /// The regression solver recovers exact linear models, with any
    /// number of components up to 4 and arbitrary positive counts.
    #[test]
    fn linreg_recovers_exact_models(
        t_true in prop::collection::vec(0.5f64..500.0, 1..5),
        rows in 6usize..40,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = t_true.len();
        // Random counts with an intercept-ish last column.
        let counts: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..k).map(|i| if i == k - 1 { 1.0 } else { rng.gen_range(1.0..100.0) }).collect())
            .collect();
        let times: Vec<f64> = counts
            .iter()
            .map(|c| c.iter().zip(&t_true).map(|(x, t)| x * t).sum())
            .collect();
        if let Some(reg) = linreg::solve(&times, &counts) {
            prop_assert!(reg.var < 1e-9, "exact data fits exactly: {}", reg.var);
            for (est, truth) in reg.t.iter().zip(&t_true) {
                prop_assert!((est - truth).abs() < 1e-5 * truth.max(1.0),
                    "{est} vs {truth}");
            }
        }
        // (Singular count matrices may return None — that is correct.)
    }

    /// Trimming a non-empty slice never empties it: the median itself is
    /// always within any positive MAD radius of the median.
    #[test]
    fn trimming_never_empties_nonempty_input(
        xs in prop::collection::vec(1.0f64..1.0e9, 1..120),
    ) {
        let kept = trim_outliers(&xs, OUTLIER_K);
        prop_assert!(!kept.is_empty(), "{} samples in, 0 out", xs.len());
    }

    /// On clean (tight multiplicative jitter) data the filter is
    /// idempotent: a second pass removes nothing more.
    #[test]
    fn trimming_is_idempotent_on_clean_data(
        base in 100.0f64..1.0e6,
        jitter in prop::collection::vec(-0.002f64..0.002, 8..80),
    ) {
        let xs: Vec<f64> = jitter.iter().map(|j| base * (1.0 + j)).collect();
        let once = trim_outliers(&xs, OUTLIER_K);
        let twice = trim_outliers(&once, OUTLIER_K);
        prop_assert_eq!(&once, &twice);
    }

    /// A single 100x spike is always removed, most of the clean data is
    /// kept, and the robust mean stays within 1% of the clean base.
    #[test]
    fn single_100x_spike_is_removed(
        base in 100.0f64..1.0e6,
        jitter in prop::collection::vec(-0.002f64..0.002, 8..80),
        pos in 0usize..1000,
    ) {
        let mut xs: Vec<f64> = jitter.iter().map(|j| base * (1.0 + j)).collect();
        let spike = base * 100.0;
        let at = pos % (xs.len() + 1);
        xs.insert(at, spike);
        let kept = trim_outliers(&xs, OUTLIER_K);
        prop_assert!(!kept.contains(&spike), "spike survived");
        prop_assert!(kept.len() * 2 >= xs.len() - 1, "kept {} of {}", kept.len(), xs.len());
        let s = robust_summary(&xs);
        prop_assert!((s.mean - base).abs() < base * 0.01,
            "robust mean {} vs base {}", s.mean, base);
    }

    /// Regression residual VAR is scale-invariant in time units.
    #[test]
    fn linreg_var_scale_invariant(scale in 1.0f64..1000.0) {
        let counts: Vec<Vec<f64>> = (1..=20).map(|i| vec![i as f64, 1.0]).collect();
        let times: Vec<f64> = (1..=20)
            .map(|i| 10.0 * i as f64 + 3.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r1 = linreg::solve(&times, &counts).unwrap();
        let scaled: Vec<f64> = times.iter().map(|t| t * scale).collect();
        let r2 = linreg::solve(&scaled, &counts).unwrap();
        prop_assert!((r1.var - r2.var).abs() < 1e-9);
    }
}
