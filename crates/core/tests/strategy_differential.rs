//! Differential determinism tests for the pluggable search strategies.
//!
//! Two families of invariants:
//!
//! 1. **Thread invariance.** Every strategy — IE, GA, phase-clustered
//!    IE, random — produces a byte-identical `SearchResult` (and spends
//!    an identical compilation budget) at 1, 2, and 5 pool threads. The
//!    1-thread pool runs every candidate job inline in index order, so
//!    it *is* the serial reference.
//! 2. **Refactor equivalence.** The trait extraction must not move the
//!    serial IE goldens: `iterative_elimination` (now a thin wrapper
//!    over `IterativeElimination` on a serial rater) still matches the
//!    supervised `Tuner` — an independent implementation of the same
//!    loop — and the parallel wrapper still matches the strategy-layer
//!    entry point. (The `results_table1_*` byte-compare in CI pins the
//!    golden files themselves.)

use peak_core::consultant::Method;
use peak_core::{
    iterative_elimination, iterative_elimination_parallel_capped, search_with_strategy_spent,
    Pool, SearchResult, StrategyKind, Tuner, TuningSetup,
};
use peak_sim::MachineSpec;
use peak_workloads::Dataset;

/// Serial reference, smallest parallel pool, oversubscribed pool.
const THREADS: [usize; 3] = [1, 2, 5];
/// Budget for the strategy legs: enough for several GA generations and
/// two clustered-IE rounds (below the probe threshold, clustered takes
/// its degenerate plain-IE path), small enough to keep the suite fast.
const BUDGET: usize = 80;
/// Fixed strategy seed for the suite (any value works; it must simply
/// be the same across legs).
const SEED: u64 = 0x5eed_cafe;

fn run_strategy_leg(
    bench: &str,
    spec: &MachineSpec,
    method: Method,
    kind: StrategyKind,
    threads: usize,
) -> (SearchResult, usize) {
    let w = peak_workloads::workload_by_name(bench).expect("known workload");
    let mut setup = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
    let pool = Pool::with_threads(threads);
    search_with_strategy_spent(&mut setup, &pool, method, kind, Some(BUDGET), SEED)
}

fn assert_fields_equal(label: &str, got: &SearchResult, reference: &SearchResult) {
    assert_eq!(got.best, reference.best, "{label}: best config");
    assert_eq!(got.disabled_flags, reference.disabled_flags, "{label}: disabled flags");
    assert_eq!(got.method, reference.method, "{label}: final method");
    assert_eq!(got.switches, reference.switches, "{label}: switches");
    assert_eq!(got.ratings, reference.ratings, "{label}: ratings count");
    assert_eq!(got.tuning_cycles, reference.tuning_cycles, "{label}: tuning cycles");
    assert_eq!(got.runs, reference.runs, "{label}: runs");
    assert_eq!(got.invocations, reference.invocations, "{label}: invocations");
}

fn assert_strategy_identical(bench: &str, spec: &MachineSpec, method: Method, kind: StrategyKind) {
    let (reference, ref_spent) = run_strategy_leg(bench, spec, method, kind, THREADS[0]);
    assert!(reference.ratings > 0, "{}: search must rate something", kind.name());
    assert!(ref_spent <= BUDGET, "{}: budget respected", kind.name());
    for &threads in &THREADS[1..] {
        let (got, spent) = run_strategy_leg(bench, spec, method, kind, threads);
        let label = format!(
            "{bench}/{}/{}/{} at {threads} threads",
            spec.kind.name(),
            method.name(),
            kind.name()
        );
        assert_fields_equal(&label, &got, &reference);
        assert_eq!(spent, ref_spent, "{label}: budget spent");
    }
}

#[test]
fn ie_identical_across_thread_counts() {
    assert_strategy_identical("swim", &MachineSpec::sparc_ii(), Method::Cbr, StrategyKind::Ie);
}

#[test]
fn ga_identical_across_thread_counts() {
    assert_strategy_identical("swim", &MachineSpec::sparc_ii(), Method::Cbr, StrategyKind::Ga);
}

#[test]
fn clustered_identical_across_thread_counts() {
    assert_strategy_identical(
        "swim",
        &MachineSpec::sparc_ii(),
        Method::Cbr,
        StrategyKind::ClusteredIe,
    );
}

#[test]
fn random_identical_across_thread_counts() {
    assert_strategy_identical("art", &MachineSpec::pentium_iv(), Method::Rbr, StrategyKind::Random);
}

/// Same seed, same machine, run twice: the GA trajectory must replay
/// exactly (catches hidden global state leaking into the search).
#[test]
fn ga_same_seed_replays_exactly() {
    let (a, sa) = run_strategy_leg("art", &MachineSpec::pentium_iv(), Method::Rbr, StrategyKind::Ga, 2);
    let (b, sb) = run_strategy_leg("art", &MachineSpec::pentium_iv(), Method::Rbr, StrategyKind::Ga, 2);
    assert_fields_equal("ga replay", &b, &a);
    assert_eq!(sa, sb);
}

/// The parallel IE wrapper and the strategy-layer entry point are the
/// same search (wrapper delegation must not drift).
#[test]
fn parallel_wrapper_matches_strategy_layer() {
    let spec = MachineSpec::sparc_ii();
    let w = peak_workloads::workload_by_name("swim").unwrap();
    let pool = Pool::with_threads(2);
    let mut setup_a = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
    let via_wrapper = iterative_elimination_parallel_capped(&mut setup_a, Method::Cbr, &pool, 10);
    let mut setup_b = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
    let (via_strategy, _) =
        search_with_strategy_spent(&mut setup_b, &pool, Method::Cbr, StrategyKind::Ie, None, SEED);
    assert_fields_equal("wrapper vs strategy layer", &via_strategy, &via_wrapper);
}

/// Serial IE behind the trait still matches the supervised `Tuner` — an
/// independent implementation of the same loop that the refactor did
/// not touch. This is the in-repo half of the goldens guarantee (CI
/// byte-compares the `results_table1_*` files themselves).
#[test]
fn serial_ie_unchanged_by_refactor() {
    let w = peak_workloads::workload_by_name("art").unwrap();
    let spec = MachineSpec::pentium_iv();
    let mut setup = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
    let refactored = iterative_elimination(&mut setup, Method::Rbr);
    let mut tuner = Tuner::new(w.as_ref(), spec, Method::Rbr, Dataset::Train);
    let independent = tuner.run();
    assert_eq!(refactored.best, independent.best, "best config");
    assert_eq!(refactored.ratings, independent.ratings, "ratings");
    assert_eq!(refactored.runs, independent.runs, "runs");
    assert_eq!(refactored.invocations, independent.invocations, "invocations");
    assert_eq!(refactored.tuning_cycles, independent.tuning_cycles, "tuning cycles");
    assert!(
        refactored.disabled_flags.iter().any(|f| f == "strict-aliasing"),
        "the marquee ART×P4 result survives the refactor: {:?}",
        refactored.disabled_flags
    );
}
