//! Per-version tiered fallback: when lowering declines, the jit tier
//! must permanently fall back to the predecoded executor for that
//! version — with bit-identical results, a `jit.deopt` trace event,
//! and the right metric deltas.
//!
//! This lives in its own test binary with a single `#[test]` because it
//! manipulates process-global state (the `PEAK_JIT_MAX_STMTS` env knob
//! and the metrics enable flag); a sibling test racing either would
//! flake.

use peak_core::RunHarness;
use peak_obs::metrics::{self, MetricsRegistry};
use peak_obs::{BufferSink, Tracer};
use peak_opt::OptConfig;
use peak_sim::{ExecOptions, ExecTier, MachineSpec, PreparedVersion};
use peak_workloads::{workload_by_name, Dataset, Workload};
use std::sync::Arc;

fn counter(name: &str) -> u64 {
    MetricsRegistry::global().snapshot().counter(name).unwrap_or(0)
}

fn prepare(w: &dyn Workload, spec: &MachineSpec) -> PreparedVersion {
    PreparedVersion::prepare(peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()), spec)
}

#[test]
fn declined_lowering_falls_back_to_predecoded_with_identical_results() {
    // A one-statement budget: every real workload declines to lower.
    std::env::set_var("PEAK_JIT_MAX_STMTS", "1");
    metrics::set_enabled(true);
    peak_core::register_jit_metrics();

    let w = workload_by_name("swim").expect("known workload");
    let spec = MachineSpec::sparc_ii();
    let opts = ExecOptions::default();
    const INVOCATIONS: usize = 4;

    // Reference: the predecoded tier, same seed and argument stream.
    let pv = prepare(w.as_ref(), &spec);
    let mut h = RunHarness::new(w.as_ref(), Dataset::Train, &spec, 7);
    h.set_tier(ExecTier::Predecoded);
    let mut want = Vec::new();
    for _ in 0..INVOCATIONS {
        let args = h.next_args().expect("budget");
        want.push(h.execute(&pv, &args, &opts));
    }
    let want_total = h.cycles();

    // Jit tier against the throttled budget: lowering declines on first
    // use, the refusal is remembered, and every invocation runs
    // predecoded.
    let before_deopts = counter("core.jit.deopts");
    let before_pre = counter("core.jit.tier_invocations.predecoded");
    let before_jit = counter("core.jit.tier_invocations.jit");
    let before_blocks = counter("core.jit.blocks_compiled");

    let sink = Arc::new(BufferSink::new());
    let pv = prepare(w.as_ref(), &spec);
    let mut h = RunHarness::new(w.as_ref(), Dataset::Train, &spec, 7);
    h.set_tier(ExecTier::Jit);
    h.set_tracer(Tracer::to_sink(sink.clone()));
    let mut got = Vec::new();
    for _ in 0..INVOCATIONS {
        let args = h.next_args().expect("budget");
        got.push(h.execute(&pv, &args, &opts));
    }

    for (w_r, g_r) in want.iter().zip(&got) {
        assert_eq!(w_r.ret, g_r.ret, "fallback changed results");
        assert_eq!(w_r.true_cycles, g_r.true_cycles, "fallback changed cycles");
    }
    assert_eq!(want_total, h.cycles(), "fallback changed accumulated machine state");

    // Telemetry: one deopt, all invocations charged to the predecoded
    // tier, nothing charged to jit, nothing compiled.
    assert_eq!(counter("core.jit.deopts") - before_deopts, 1, "exactly one deopt");
    assert_eq!(
        counter("core.jit.tier_invocations.predecoded") - before_pre,
        INVOCATIONS as u64,
        "fallback invocations count against the predecoded tier"
    );
    assert_eq!(counter("core.jit.tier_invocations.jit"), before_jit, "no jit-tier executions");
    assert_eq!(counter("core.jit.blocks_compiled"), before_blocks, "nothing lowered");

    // The decline is traced exactly once (the refusal is remembered).
    let deopt_lines: Vec<String> =
        sink.lines().into_iter().filter(|l| l.contains("jit.deopt")).collect();
    assert_eq!(deopt_lines.len(), 1, "one jit.deopt event, not one per invocation");
    assert!(
        deopt_lines[0].contains("budget"),
        "deopt reason names the statement budget: {}",
        deopt_lines[0]
    );

    // With the budget lifted, a fresh version lowers and runs on the
    // jit tier — still bit-identical to the reference.
    std::env::remove_var("PEAK_JIT_MAX_STMTS");
    let pv = prepare(w.as_ref(), &spec);
    let mut h = RunHarness::new(w.as_ref(), Dataset::Train, &spec, 7);
    h.set_tier(ExecTier::Jit);
    let mut jit_results = Vec::new();
    for _ in 0..INVOCATIONS {
        let args = h.next_args().expect("budget");
        jit_results.push(h.execute(&pv, &args, &opts));
    }
    for (w_r, g_r) in want.iter().zip(&jit_results) {
        assert_eq!(w_r.ret, g_r.ret, "jit changed results");
        assert_eq!(w_r.true_cycles, g_r.true_cycles, "jit changed cycles");
    }
    assert!(
        counter("core.jit.tier_invocations.jit") - before_jit >= INVOCATIONS as u64,
        "unthrottled run executes on the jit tier"
    );
    assert!(counter("core.jit.blocks_compiled") > before_blocks, "lowering counted its blocks");
}
