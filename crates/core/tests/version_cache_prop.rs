//! Property: a [`VersionCache`] hit is indistinguishable from a fresh
//! compile. For random points of the 2^38 flag space, the cached
//! `PreparedVersion` must (a) be byte-equal in every prepared field to an
//! uncached `optimize` + `prepare` of the same inputs, and (b) execute to
//! the same return value and the same bit-identical `true_cycles` from
//! identical machine state. This is what makes the cache a pure
//! amortization — the paper's tuning-time savings with zero effect on any
//! rating.

use peak_core::{VersionCache, VersionKey};
use peak_opt::OptConfig;
use peak_sim::{ExecOptions, MachineKind, MachineSpec, MachineState, PreparedVersion};
use peak_workloads::{swim::SwimCalc3, Workload};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

fn fresh(w: &dyn Workload, cfg: OptConfig, spec: &MachineSpec) -> PreparedVersion {
    PreparedVersion::prepare(peak_opt::optimize(w.program(), w.ts(), &cfg), spec)
}

fn run_cycles(w: &dyn Workload, pv: &PreparedVersion, spec: &MachineSpec) -> (u64, Option<peak_ir::Value>) {
    let mem_lens: Vec<usize> = w.program().mems.iter().map(|m| m.len).collect();
    let amap = peak_sim::AddressMap::new(&mem_lens);
    let mut mem = peak_ir::MemoryImage::new(w.program());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    w.setup(peak_workloads::Dataset::Train, &mut mem, &mut rng);
    let args = w.args(peak_workloads::Dataset::Train, 0, &mut mem, &mut rng);
    let mut state = MachineState::noiseless(spec.clone());
    let res = peak_sim::execute(pv, &args, &mut mem, &amap, &mut state, &ExecOptions::default())
        .expect("execution succeeds");
    (res.true_cycles, res.ret)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Cache hit ≡ fresh compile, over random configs and both machines.
    #[test]
    fn cache_hit_equals_fresh_compile(bits in any::<u64>(), p4 in any::<bool>()) {
        let cfg = OptConfig::from_bits(bits);
        let spec = if p4 { MachineSpec::pentium_iv() } else { MachineSpec::sparc_ii() };
        let w = SwimCalc3::new();
        let cache = VersionCache::new();
        // Miss, then hit: the hit must return the very same artifact.
        let miss = cache.prepare_workload(&w, &spec, cfg);
        let hit = cache.prepare_workload(&w, &spec, cfg);
        prop_assert!(std::sync::Arc::ptr_eq(&miss, &hit));
        prop_assert_eq!(cache.stats().hits, 1);
        // The cached artifact equals an uncached compile field by field...
        let direct = fresh(&w, cfg, &spec);
        prop_assert_eq!(&hit.spill_slot, &direct.spill_slot);
        prop_assert_eq!(&hit.slot_base, &direct.slot_base);
        prop_assert_eq!(&hit.live_across_calls, &direct.live_across_calls);
        prop_assert_eq!(hit.over_icache, direct.over_icache);
        prop_assert_eq!(hit.version.code_size, direct.version.code_size);
        prop_assert_eq!(hit.version.config.bits(), direct.version.config.bits());
        // ...and executes bit-identically from identical cold state.
        let (c_cached, r_cached) = run_cycles(&w, &hit, &spec);
        let (c_fresh, r_fresh) = run_cycles(&w, &direct, &spec);
        prop_assert_eq!(c_cached, c_fresh, "true_cycles must not depend on cache state");
        prop_assert_eq!(r_cached, r_fresh);
    }

    /// Key equality is exactly (workload, ts, instrumented, bits, machine)
    /// equality: distinct configs never alias a cache entry.
    #[test]
    fn distinct_configs_never_alias(a in any::<u64>(), b in any::<u64>()) {
        let (ca, cb) = (OptConfig::from_bits(a), OptConfig::from_bits(b));
        let w = SwimCalc3::new();
        let ka = VersionKey::plain(&w, ca, MachineKind::SparcII);
        let kb = VersionKey::plain(&w, cb, MachineKind::SparcII);
        prop_assert_eq!(ka == kb, ca.bits() == cb.bits());
        let cache = VersionCache::new();
        let spec = MachineSpec::sparc_ii();
        let _ = cache.prepare_workload(&w, &spec, ca);
        let _ = cache.prepare_workload(&w, &spec, cb);
        let expect = if ca.bits() == cb.bits() { 1 } else { 2 };
        prop_assert_eq!(cache.len(), expect);
    }
}
