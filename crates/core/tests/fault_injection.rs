//! End-to-end fault-injection tests: deterministic replay of degradation
//! event streams, cascade survival under crash+jitter, and checkpointed
//! kill/resume equivalence.

use peak_core::consultant::Method;
use peak_core::rating::TuningSetup;
use peak_core::{DegradeTrigger, RatingSupervisor, Tuner};
use peak_obs::{BufferSink, Tracer};
use peak_opt::OptConfig;
use peak_sim::{FaultConfig, MachineSpec};
use peak_workloads::{swim::SwimCalc3, Dataset};
use std::sync::Arc;

/// A fault scenario nasty enough to force degradation: moderate jitter
/// and dropout plus a deterministic crash partway into every run.
fn nasty_faults(seed: u64) -> FaultConfig {
    let spec = MachineSpec::sparc_ii();
    let mut fc = spec.fault_profile(1.0, seed);
    fc.crash_at = Some(8);
    fc
}

#[test]
fn same_seed_fault_replay_is_bit_identical() {
    // Each replay records its full telemetry stream; determinism must
    // extend to the trace (same seed + same FaultConfig ⇒ byte-identical
    // JSONL), not just the rating result.
    let run = || {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let sink = Arc::new(BufferSink::new());
        setup.set_tracer(Tracer::to_sink(sink.clone()));
        setup.set_faults(Some(nasty_faults(0xDEAD)));
        let base = OptConfig::o3();
        let cand = [base.without(peak_opt::Flag::LoopUnroll), base];
        let mut sup = RatingSupervisor::default();
        let (out, m) = sup.rate(&mut setup, Method::Cbr, base, &cand);
        (
            out.improvements.clone(),
            m,
            sup.events().to_vec(),
            setup.invocations_used,
            sink.drain(),
        )
    };
    let (imp1, m1, ev1, inv1, trace1) = run();
    let (imp2, m2, ev2, inv2, trace2) = run();
    assert_eq!(imp1, imp2, "improvements must replay bit-identically");
    assert_eq!(m1, m2);
    assert_eq!(ev1, ev2, "degradation event streams must replay identically");
    assert_eq!(inv1, inv2);
    assert!(!ev1.is_empty(), "the nasty scenario must actually degrade");
    assert_eq!(trace1, trace2, "telemetry streams must replay byte-identically");
    assert!(
        trace1.iter().any(|l| l.contains("\"supervisor.degrade\"")),
        "the degradation cascade must appear in the trace"
    );
    assert!(
        trace1.iter().any(|l| l.contains("\"sim.run\"")),
        "per-run provenance must appear in the trace"
    );
}

#[test]
fn tracing_is_observation_only() {
    // The same scenario rated with and without telemetry must produce
    // identical results: instrumentation never perturbs the measurement.
    let run = |traced: bool| {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        if traced {
            setup.set_tracer(Tracer::to_sink(Arc::new(BufferSink::new())));
        }
        setup.set_faults(Some(nasty_faults(0xDEAD)));
        let base = OptConfig::o3();
        let mut sup = RatingSupervisor::default();
        let (out, m) = sup.rate(&mut setup, Method::Cbr, base, &[base]);
        (out.improvements.clone(), m, setup.invocations_used)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn different_scenario_seeds_may_diverge_but_never_panic() {
    for seed in [1u64, 2, 3] {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        let spec = MachineSpec::sparc_ii();
        setup.set_faults(Some(spec.fault_profile(2.0, seed)));
        let base = OptConfig::o3();
        let mut sup = RatingSupervisor::default();
        let (out, _) = sup.rate(&mut setup, Method::Cbr, base, &[base]);
        assert!(out.improvements[0].is_finite());
    }
}

#[test]
fn crash_jitter_scenario_completes_via_cascade() {
    let w = SwimCalc3::new();
    let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
    setup.set_faults(Some(nasty_faults(0xC0FFEE)));
    let base = OptConfig::o3();
    let mut sup = RatingSupervisor::default();
    let (out, used) = sup.rate(&mut setup, Method::Cbr, base, &[base]);
    // The deterministic crash hits every per-invocation method; the
    // supervisor must land on the terminal best-effort WHL and still
    // produce a finite rating.
    assert_eq!(used, Method::Whl, "events: {:?}", sup.events());
    assert!(out.improvements[0].is_finite());
    assert!(
        sup.events().iter().any(|e| e.trigger == DegradeTrigger::VersionCrash),
        "{:?}",
        sup.events()
    );
}

#[test]
fn combined_fault_types_in_one_run_degrade_gracefully_and_replay() {
    // All three non-crash fault families firing together in a single
    // run — timer spikes + heavy measurement dropout + cache/predictor
    // state pollution — must walk the supervisor down the cascade (not
    // panic, not hang, not emit NaN) and replay bit-identically.
    let combined = |seed: u64| {
        let mut fc = FaultConfig::none(seed);
        // Timer spikes: frequent and large.
        fc.spike_per_million = 200_000;
        fc.spike_cycles = 5_000;
        // Sustained jitter bursts on top.
        fc.burst_per_million = 50_000;
        fc.burst_len = (4, 12);
        fc.burst_factor = 1.5;
        // Dropout heavy enough to trip the supervisor's rate threshold.
        fc.dropout_per_million = 400_000;
        // State pollution: co-tenant cache/predictor perturbation.
        fc.perturb_per_million = 300_000;
        fc.perturb_lines = 64;
        fc
    };
    let run = |seed: u64| {
        let w = SwimCalc3::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        setup.set_faults(Some(combined(seed)));
        let base = OptConfig::o3();
        let cand = [base.without(peak_opt::Flag::LoopUnroll), base];
        let mut sup = RatingSupervisor::default();
        let (out, used) = sup.rate(&mut setup, Method::Cbr, base, &cand);
        (out.improvements.clone(), used, sup.events().to_vec())
    };
    let (imp, used, events) = run(0x0C0B);
    assert!(imp.iter().all(|i| i.is_finite()), "combined faults must not corrupt ratings: {imp:?}");
    assert!(
        !events.is_empty(),
        "the combined scenario must actually trigger the cascade (ended at {used:?})"
    );
    // Dropout is the designed tripwire for this mix; the cascade must
    // attribute at least one step to it (spikes/pollution surface as
    // unconverged windows when they dominate instead).
    assert!(
        events
            .iter()
            .all(|e| matches!(
                e.trigger,
                DegradeTrigger::DropoutRate
                    | DegradeTrigger::Unconverged
                    | DegradeTrigger::ContextExplosion
            )),
        "unexpected trigger in {events:?}"
    );
    // Bit-identical replay, and seed sensitivity stays panic-free.
    let (imp2, used2, events2) = run(0x0C0B);
    assert_eq!((&imp, used, &events), (&imp2, used2, &events2), "combined faults must replay");
    for seed in [7u64, 8, 9] {
        let (imp, _, _) = run(seed);
        assert!(imp.iter().all(|i| i.is_finite()));
    }
}

#[test]
fn faulted_tuner_kill_resume_matches_uninterrupted_run() {
    let w = SwimCalc3::new();
    let spec = MachineSpec::sparc_ii();
    // Faults without crashes: jitter + dropout below the degrade
    // threshold, so the tuner makes progress while the fault layer is hot.
    let fc = spec.fault_profile(0.5, 0xBEEF);
    let dir = std::env::temp_dir().join("peak-fault-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cp.json");

    let mut straight =
        Tuner::with_faults(&w, spec.clone(), Method::Cbr, Dataset::Train, Some(fc.clone()));
    let want = straight.run();

    let mut victim =
        Tuner::with_faults(&w, spec.clone(), Method::Cbr, Dataset::Train, Some(fc));
    victim.checkpoint_to(&path).unwrap();
    victim.step();
    drop(victim); // killed after one round

    let mut resumed = Tuner::resume(&w, spec, &path).unwrap();
    let got = resumed.run();
    assert_eq!(got.best, want.best, "resumed run must find the same best config");
    assert_eq!(got.invocations, want.invocations);
    assert_eq!(got.tuning_cycles, want.tuning_cycles);
    assert_eq!(resumed.events(), straight.events());
    std::fs::remove_file(&path).ok();
}
