//! End-to-end gates for the cost-model fast paths (DESIGN.md §16).
//!
//! The micro-level differentials live in peak-sim
//! (`costmodel_differential`); this suite pins the *integrated*
//! observables:
//!
//! - **Memoized argument streams** vs the live generator: a harness
//!   replaying the pooled recorded stream must be indistinguishable —
//!   same args, same memory evolution, same per-invocation and
//!   accumulated cycles, same cache/predictor state — across every
//!   workload × dataset.
//! - **Batched predictor commits** (jit tier) vs sequential updates
//!   (predecoded tier): identical predictor tables, stats, and cycles
//!   across repeated invocations with carried machine state, over the
//!   passfuzz regression corpus and fresh generative programs.

use peak_core::RunHarness;
use peak_obs::Tracer;
use peak_opt::OptConfig;
use peak_sim::{
    AddressMap, ExecOptions, ExecTier, MachineSpec, MachineState, PreparedVersion,
};
use peak_workloads::{all_workloads, fuzzgen, Dataset, Workload};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn prepare(w: &dyn Workload, spec: &MachineSpec) -> PreparedVersion {
    PreparedVersion::prepare(peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()), spec)
}

/// Memoized replay vs live generation, all workloads × datasets: every
/// observable identical invocation by invocation.
#[test]
fn memoized_stream_matches_live_generation() {
    let specs = [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()];
    for (wi, w) in all_workloads().iter().enumerate() {
        let spec = &specs[wi % 2];
        let pv = prepare(w.as_ref(), spec);
        for ds in [Dataset::Train, Dataset::Ref] {
            let mut live =
                RunHarness::with_stream_mode(w.as_ref(), ds, spec, 7, None, false);
            let mut memo =
                RunHarness::with_stream_mode(w.as_ref(), ds, spec, 7, None, true);
            assert!(live.mem == memo.mem, "{} {ds:?}: post-setup memory", w.name());
            let n = w.invocations(ds).min(8);
            let opts = ExecOptions::default();
            for inv in 0..n {
                let la = live.next_args().expect("live stream has invocations");
                let ma = memo.next_args().expect("memoized stream has invocations");
                assert_eq!(la, ma, "{} {ds:?} inv {inv}: args", w.name());
                assert!(
                    live.mem == memo.mem,
                    "{} {ds:?} inv {inv}: pre-exec memory",
                    w.name()
                );
                let lr = live.execute(&pv, &la, &opts);
                let mr = memo.execute(&pv, &ma, &opts);
                assert_eq!(
                    lr.true_cycles, mr.true_cycles,
                    "{} {ds:?} inv {inv}: cycles",
                    w.name()
                );
                assert_eq!(lr.ret.is_some(), mr.ret.is_some());
                assert!(live.mem == memo.mem, "{} {ds:?} inv {inv}: memory", w.name());
            }
            assert_eq!(live.cycles(), memo.cycles(), "{} {ds:?}: total cycles", w.name());
            assert_eq!(
                live.machine.predictor.stats(),
                memo.machine.predictor.stats(),
                "{} {ds:?}: predictor state",
                w.name()
            );
            assert_eq!(
                live.machine.caches.l1.stats(),
                memo.machine.caches.l1.stats(),
                "{} {ds:?}: L1 state",
                w.name()
            );
        }
    }
}

// ---- batched predictor commits across tiers ----

struct Entry {
    name: String,
    prog: peak_ir::Program,
    func: peak_ir::FuncId,
    cfg: OptConfig,
    machine: MachineSpec,
    args: [peak_ir::Value; 3],
}

fn parse_hex_u64(s: &str) -> u64 {
    let t = s.trim().trim_start_matches("0x");
    u64::from_str_radix(t, 16).unwrap_or_else(|e| panic!("bad hex {s:?}: {e}"))
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../opt/tests/corpus")
}

fn parse_entry(path: &Path) -> Entry {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut headers: HashMap<String, String> = HashMap::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix('#') else { continue };
        if let Some((k, v)) = rest.split_once(':') {
            headers.entry(k.trim().to_string()).or_insert_with(|| v.trim().to_string());
        }
    }
    let bits = parse_hex_u64(headers.get("config_bits").expect("config_bits header"));
    let machine = match headers.get("machine").map(String::as_str) {
        Some("p4") => MachineSpec::pentium_iv(),
        _ => MachineSpec::sparc_ii(),
    };
    let parts: Vec<&str> =
        headers.get("args").expect("args header").split_whitespace().collect();
    let args = [
        peak_ir::Value::I64(parts[0].parse().unwrap()),
        peak_ir::Value::I64(parts[1].parse().unwrap()),
        peak_ir::Value::F64(f64::from_bits(parse_hex_u64(parts[2]))),
    ];
    let prog = peak_ir::parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    let func = prog.func_by_name("gen").expect("corpus function 'gen'");
    Entry { name, prog, func, cfg: OptConfig::from_bits(bits), machine, args }
}

/// Execute `pv` `reps` times against ONE carried machine state on the
/// given tier; returns per-invocation cycles plus final predictor
/// stats. Carried state matters: batching must stay exact while the
/// predictor table warms across invocations.
fn run_carried(
    pv: &PreparedVersion,
    prog: &peak_ir::Program,
    machine: &MachineSpec,
    args: &[peak_ir::Value],
    jit: bool,
    reps: usize,
) -> (Vec<u64>, (u64, u64)) {
    let mem_lens: Vec<usize> = prog.mems.iter().map(|m| m.len).collect();
    let amap = AddressMap::new(&mem_lens);
    let mut state = MachineState::noiseless(machine.clone());
    let mut scratch = peak_sim::ExecScratch::new();
    let opts = ExecOptions::default();
    let mut cycles = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut mem = fuzzgen::init_memory(prog);
        let res = if jit {
            let be =
                peak_core::jit_backend(pv, &Tracer::disabled()).expect("entry lowers");
            be.execute(args, &mut mem, &amap, &mut state, &opts, &mut scratch)
        } else {
            peak_sim::execute_with_scratch(
                pv, args, &mut mem, &amap, &mut state, &opts, &mut scratch,
            )
        }
        .expect("execution succeeds");
        cycles.push(res.true_cycles);
    }
    (cycles, state.predictor.stats())
}

/// The jit tier's batched predictor commits vs the predecoded tier's
/// per-branch updates, over the passfuzz corpus with carried state.
#[test]
fn batched_predictor_matches_sequential_on_corpus() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|d| d.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "regression corpus is empty");
    for p in &paths {
        let e = parse_entry(p);
        let cv = peak_opt::optimize(&e.prog, e.func, &e.cfg);
        let pv = PreparedVersion::prepare(cv, &e.machine);
        let (pre_cycles, pre_stats) =
            run_carried(&pv, &e.prog, &e.machine, &e.args, false, 5);
        let (jit_cycles, jit_stats) =
            run_carried(&pv, &e.prog, &e.machine, &e.args, true, 5);
        assert_eq!(pre_cycles, jit_cycles, "{}: per-invocation cycles", e.name);
        assert_eq!(pre_stats, jit_stats, "{}: predictor stats", e.name);
    }
}

/// Same comparison over fresh generative programs (the batching gate's
/// fuzz leg; `PEAK_COSTMODEL_SEEDS` scales it).
#[test]
fn batched_predictor_matches_sequential_on_fresh_seeds() {
    let seeds: u64 = std::env::var("PEAK_COSTMODEL_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let machines = [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()];
    for seed in 0..seeds {
        let stmts = fuzzgen::gen_stmts(seed);
        let (prog, func) = fuzzgen::build_program(&stmts);
        let args = fuzzgen::gen_args(seed);
        let machine = &machines[(seed % 2) as usize];
        let cv = peak_opt::optimize(&prog, func, &OptConfig::o3());
        let pv = PreparedVersion::prepare(cv, machine);
        if peak_core::jit_backend(&pv, &Tracer::disabled()).is_none() {
            continue; // version declined lowering; nothing to compare
        }
        let (pre_cycles, pre_stats) = run_carried(&pv, &prog, machine, &args, false, 3);
        let (jit_cycles, jit_stats) = run_carried(&pv, &prog, machine, &args, true, 3);
        assert_eq!(pre_cycles, jit_cycles, "seed {seed}: cycles");
        assert_eq!(pre_stats, jit_stats, "seed {seed}: predictor stats");
    }
}

/// Forcing the tiers through `RunHarness` (the production path) with
/// memoized streams on: all three tiers produce identical cycles and
/// predictor evolution on a real workload.
#[test]
fn tiers_agree_under_memoized_streams() {
    let w = peak_workloads::swim::SwimCalc3::new();
    let spec = MachineSpec::sparc_ii();
    let pv = prepare(&w, &spec);
    let mut per_tier = Vec::new();
    for tier in [ExecTier::Interp, ExecTier::Predecoded, ExecTier::Jit] {
        let mut h =
            RunHarness::with_stream_mode(&w, Dataset::Train, &spec, 7, None, true);
        h.set_tier(tier);
        let mut cycles = Vec::new();
        for _ in 0..6 {
            let args = h.next_args().unwrap();
            let r = h.execute(&pv, &args, &ExecOptions::default());
            cycles.push(r.true_cycles);
        }
        per_tier.push((cycles, h.machine.predictor.stats(), h.cycles()));
    }
    assert_eq!(per_tier[0], per_tier[1], "interp vs predecoded");
    assert_eq!(per_tier[1], per_tier[2], "predecoded vs jit");
}
