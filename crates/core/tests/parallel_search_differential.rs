//! Differential determinism tests for the parallel candidate-frontier
//! search: `iterative_elimination_parallel` must produce a bit-identical
//! `SearchResult` at every thread count. The 1-thread pool runs every
//! job inline in index order — that *is* the serial reference — so
//! comparing it against 2- and N-thread pools pins down the whole
//! determinism story: per-job seeding, scratch isolation, index-ordered
//! merging, and in-flight compile de-duplication.

use peak_core::consultant::Method;
use peak_core::{iterative_elimination_parallel_capped, Pool, SearchResult, TuningSetup};
use peak_sim::MachineSpec;
use peak_workloads::Dataset;

/// Thread counts compared: serial reference, the smallest parallel
/// pool, and an oversubscribed one (more workers than cores on CI).
const THREADS: [usize; 3] = [1, 2, 5];

fn run_leg(
    bench: &str,
    spec: &MachineSpec,
    method: Method,
    threads: usize,
    rounds: usize,
) -> SearchResult {
    let w = peak_workloads::workload_by_name(bench).expect("known workload");
    let mut setup = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
    let pool = Pool::with_threads(threads);
    iterative_elimination_parallel_capped(&mut setup, method, &pool, rounds)
}

fn assert_identical(bench: &str, spec: &MachineSpec, method: Method, rounds: usize) {
    let reference = run_leg(bench, spec, method, THREADS[0], rounds);
    assert!(reference.ratings > 0, "search must rate something");
    for &threads in &THREADS[1..] {
        let got = run_leg(bench, spec, method, threads, rounds);
        let label = format!("{bench}/{}/{} at {threads} threads", spec.kind.name(), method.name());
        assert_eq!(got.best, reference.best, "{label}: best config");
        assert_eq!(got.disabled_flags, reference.disabled_flags, "{label}: disabled flags");
        assert_eq!(got.method, reference.method, "{label}: final method");
        assert_eq!(got.switches, reference.switches, "{label}: switches");
        assert_eq!(got.ratings, reference.ratings, "{label}: ratings count");
        assert_eq!(got.tuning_cycles, reference.tuning_cycles, "{label}: tuning cycles");
        assert_eq!(got.runs, reference.runs, "{label}: runs");
        assert_eq!(got.invocations, reference.invocations, "{label}: invocations");
    }
}

/// Two IE rounds on SWIM×SPARC-II×CBR: crosses a round boundary, so the
/// base update and the second round's re-seeded frontier are covered.
#[test]
fn swim_sparc_cbr_identical_across_thread_counts() {
    assert_identical("swim", &MachineSpec::sparc_ii(), Method::Cbr, 2);
}

/// One round of ART×Pentium-IV×RBR — the paper's marquee cell (and the
/// machine where float-ordering wobble once lived).
#[test]
fn art_p4_rbr_identical_across_thread_counts() {
    assert_identical("art", &MachineSpec::pentium_iv(), Method::Rbr, 1);
}
