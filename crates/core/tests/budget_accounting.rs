//! Budget-accounting and failure-shape tests for the strategy layer.
//!
//! * A configuration the search already paid for must not burn budget
//!   again — mirroring the `VersionCache`'s hit/in-flight-coalesce
//!   dedup, re-rating a seen config is free.
//! * Budget exhaustion mid-round degrades gracefully to the best
//!   configuration found so far — never a panic, never a truncated
//!   nonsense result.
//! * Cancellation inside a GA generation unwinds with the `Cancelled`
//!   sentinel and classifies exactly like PR 6's IE path.

use peak_core::consultant::Method;
use peak_core::{
    classify_panic, run_tuning_job, search_with_strategy_spent, CancelToken, JobError, Pool,
    StrategyKind, TuningJobSpec, TuningSetup,
};
use peak_obs::Tracer;
use peak_sim::MachineSpec;
use peak_workloads::Dataset;
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEED: u64 = 0x5eed_cafe;

fn run(
    kind: StrategyKind,
    budget: Option<usize>,
    threads: usize,
) -> (peak_core::SearchResult, usize) {
    let w = peak_workloads::workload_by_name("swim").unwrap();
    let mut setup = TuningSetup::new(w.as_ref(), MachineSpec::sparc_ii(), Dataset::Train);
    let pool = Pool::with_threads(threads);
    search_with_strategy_spent(&mut setup, &pool, Method::Cbr, kind, budget, SEED)
}

/// Re-rated configurations are budget-free. Clustered IE re-rates the
/// probe-0 frontier inside its first cluster rounds, so its unique-config
/// charge must come out strictly below 1 (base) + total candidate
/// ratings; and a rerun against the now-warm process cache must charge
/// the identical amount — the budget counts configurations, not
/// compiles, so cache hits can't burn it.
#[test]
fn cache_hits_do_not_burn_budget() {
    let (result, spent) = run(StrategyKind::ClusteredIe, Some(400), 2);
    assert!(result.ratings > 0);
    assert!(
        spent < result.ratings + 1,
        "no rated candidate was budget-free: spent {spent}, ratings {}",
        result.ratings
    );
    // Second run: every compile is now a VersionCache hit, but the
    // budget charge is a function of the search alone.
    let (result2, spent2) = run(StrategyKind::ClusteredIe, Some(400), 2);
    assert_eq!(spent2, spent, "cache warmth leaked into budget accounting");
    assert_eq!(result2.best, result.best);
}

/// Exhaustion mid-round (budgets far below one frontier) degrades to
/// best-so-far for every strategy: a valid config, consistent report,
/// budget respected, no panic.
#[test]
fn exhaustion_mid_round_degrades_to_best_so_far() {
    for kind in StrategyKind::all() {
        for budget in [0usize, 1, 2, 7] {
            let (result, spent) = run(kind, Some(budget), 1);
            assert!(spent <= budget, "{}: spent {spent} > budget {budget}", kind.name());
            let from_best: Vec<String> =
                result.best.disabled_flags().iter().map(|f| f.name().to_string()).collect();
            assert_eq!(
                result.disabled_flags,
                from_best,
                "{}: report inconsistent at budget {budget}",
                kind.name()
            );
        }
    }
}

/// A fired token inside a GA generation unwinds with the `Cancelled`
/// sentinel — panic-shaped exactly like the IE path PR 6 pinned down.
#[test]
fn ga_cancellation_is_panic_shaped_like_ie() {
    let w = peak_workloads::workload_by_name("swim").unwrap();
    let mut setup = TuningSetup::new(w.as_ref(), MachineSpec::sparc_ii(), Dataset::Train);
    let cancel = CancelToken::new();
    setup.set_cancel(cancel.clone());
    cancel.cancel();
    let pool = Pool::with_threads(1);
    let payload = catch_unwind(AssertUnwindSafe(|| {
        search_with_strategy_spent(&mut setup, &pool, Method::Cbr, StrategyKind::Ga, None, SEED)
    }))
    .expect_err("fired token must unwind");
    assert_eq!(classify_panic(payload), JobError::Cancelled);
}

/// The job layer resolves strategies before any tuning work and maps a
/// mid-GA cancellation to the structured `Cancelled` error.
#[test]
fn job_layer_strategy_resolution_and_cancellation() {
    let pool = Pool::with_threads(1);
    let mut spec = TuningJobSpec::new("SWIM", "SPARC-II");
    spec.strategy = Some("simulated-annealing".into());
    assert_eq!(
        run_tuning_job(&spec, Tracer::disabled(), &pool, CancelToken::new()).unwrap_err(),
        JobError::UnknownStrategy("simulated-annealing".into())
    );
    let mut spec = TuningJobSpec::new("SWIM", "SPARC-II");
    spec.strategy = Some("ga".into());
    let cancel = CancelToken::new();
    cancel.cancel();
    assert_eq!(
        run_tuning_job(&spec, Tracer::disabled(), &pool, cancel).unwrap_err(),
        JobError::Cancelled
    );
}
