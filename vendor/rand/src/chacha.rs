//! ChaCha12 block generator wrapped in rand_core's `BlockRng` buffering
//! discipline, reproducing `rand::rngs::StdRng` (rand 0.8 = ChaCha12)
//! word-for-word: four 16-word blocks per refill, `next_u64` pairing two
//! consecutive u32 words little-endian-first, with the split-read edge
//! case at the end of the buffer.

use crate::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // 4 ChaCha blocks of 16 u32 words
const ROUNDS: usize = 12;

/// The standard generator: ChaCha12 with a 64-bit block counter.
#[derive(Debug, Clone)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn block(&self, counter: u64, out: &mut [u32]) {
        let init: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let mut s = init;
        for _ in 0..ROUNDS / 2 {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = s[i].wrapping_add(init[i]);
        }
    }

    fn refill(&mut self) {
        for b in 0..4 {
            let counter = self.counter.wrapping_add(b as u64);
            let start = b * 16;
            let mut tmp = [0u32; 16];
            self.block(counter, &mut tmp);
            self.buf[start..start + 16].copy_from_slice(&tmp);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        StdRng { key, counter: 0, buf: [0; BUF_WORDS], index: BUF_WORDS }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core BlockRng::next_u64 semantics.
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            let x = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_width_reads_follow_block_rng_rules() {
        // Reading 63 u32s then a u64 must split across the refill.
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut first = Vec::new();
        for _ in 0..64 {
            first.push(a.next_u32());
        }
        for w in first.iter().take(63) {
            assert_eq!(*w, b.next_u32());
        }
        let lo = u64::from(first[63]);
        let split = b.next_u64();
        assert_eq!(split & 0xffff_ffff, lo, "low half comes from the tail word");
    }
}
