//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of `rand` APIs the repo uses are re-implemented here
//! **bit-exactly**: `StdRng` is the real ChaCha12 generator with
//! rand_core 0.6's `seed_from_u64` expansion, and `gen_range`/`gen_bool`
//! reproduce rand 0.8.5's uniform-sampling algorithms (widening-multiply
//! rejection for integers, 52-bit mantissa mapping for floats, fixed-point
//! Bernoulli). Streams produced under a given seed therefore match the
//! original crate, which keeps the committed golden results
//! (`results_table1_*.json`) and every tuned test threshold valid.

mod chacha;
mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core RNG interface (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the `Standard` distribution (subset).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for i64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for i32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand's Standard bool: one bit off the top of a u32.
        (rng.next_u32() & 1) == 1
    }
}
impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Multiply-based [0, 1) with 53-bit precision (rand 0.8 Standard).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing RNG extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample from the Standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform sample from a range (exactly rand 0.8.5's algorithms).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (fixed-point comparison, as in
    /// rand 0.8's `Bernoulli`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via rand_core 0.6's PCG-based expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    pub use crate::chacha::StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..17);
            assert!((-5..17).contains(&x));
            let y: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: usize = r.gen_range(3..=9);
            assert!((3..=9).contains(&z));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn chacha12_known_answer() {
        // ChaCha12, all-zero 256-bit key, zero counter/nonce: first block
        // keystream (RFC-style ChaCha with 12 rounds). First word of the
        // all-zero-seeded ChaCha12 stream, cross-checked against
        // rand_chacha 0.3's documented test vector.
        let mut r = StdRng::from_seed([0u8; 32]);
        let first = r.next_u64();
        // rand_chacha test: ChaCha12Rng from zero seed, next_u64() ==
        // 0x53f955076a9af49b (low word 0x6a9af49b, second word
        // 0x53f95507).
        assert_eq!(first, 0x53f9_5507_6a9a_f49b, "{first:#x}");
    }
}
