//! Uniform range sampling, reproducing rand 0.8.5's `UniformInt`
//! (widening-multiply rejection) and `UniformFloat` (52-bit mantissa into
//! [1, 2)) `sample_single` algorithms exactly, including their randomness
//! consumption, so seeded streams match the real crate.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types with a uniform single-sample implementation.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_single_inclusive(lo, hi, rng)
    }
}

// Integer uniform sampling. $ty: sampled type, $unsigned: its unsigned
// partner, $large: the generation width rand uses ($u32 for <= 32-bit
// types, u64 for 64-bit ones), $gen: the RngCore word generator.
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $large:ty, $gen:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                Self::sample_single_inclusive(low, high.wrapping_sub(1), rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $large;
                if range == 0 {
                    // Full span: accept anything.
                    return rng.$gen() as $ty;
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    // Small types cascade to a modulo-derived zone.
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = rng.$gen() as $large;
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

#[inline(always)]
fn wmul_u32(a: u32, b: u32) -> (u32, u32) {
    let t = (a as u64) * (b as u64);
    ((t >> 32) as u32, t as u32)
}

#[inline(always)]
fn wmul_u64(a: u64, b: u64) -> (u64, u64) {
    let t = (a as u128) * (b as u128);
    ((t >> 64) as u64, t as u64)
}

// Dispatch wmul by width through a tiny trait.
trait WMul: Sized {
    fn wmul_pair(self, other: Self) -> (Self, Self);
}
impl WMul for u32 {
    fn wmul_pair(self, other: Self) -> (Self, Self) {
        wmul_u32(self, other)
    }
}
impl WMul for u64 {
    fn wmul_pair(self, other: Self) -> (Self, Self) {
        wmul_u64(self, other)
    }
}

#[inline(always)]
fn wmul<T: WMul>(a: T, b: T) -> (T, T) {
    a.wmul_pair(b)
}

uniform_int_impl!(u8, u8, u32, next_u32);
uniform_int_impl!(u16, u16, u32, next_u32);
uniform_int_impl!(u32, u32, u32, next_u32);
uniform_int_impl!(u64, u64, u64, next_u64);
uniform_int_impl!(usize, usize, u64, next_u64);
uniform_int_impl!(i8, u8, u32, next_u32);
uniform_int_impl!(i16, u16, u32, next_u32);
uniform_int_impl!(i32, u32, u32, next_u32);
uniform_int_impl!(i64, u64, u64, next_u64);
uniform_int_impl!(isize, usize, u64, next_u64);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $gen:ident, $one_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let mut scale = high - low;
                loop {
                    // Value in [1, 2): exponent 0, random mantissa.
                    let mant = rng.$gen() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits($one_bits | mant);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding hit `high`: shave one ulp off the scale and
                    // resample (rand 0.8's decrease_masked path).
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // Matches rand's inclusive float sampling closely enough
                // for the (unused-in-repo) inclusive case.
                let scale = high - low;
                let mant = rng.$gen() >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits($one_bits | mant);
                (value1_2 - 1.0) * scale + low
            }
        }
    };
}

uniform_float_impl!(f64, u64, 12u32, next_u64, 1023u64 << 52);
uniform_float_impl!(f32, u32, 9u32, next_u32, 127u32 << 23);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn float_mean_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let mean: f64 = (0..50_000).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
