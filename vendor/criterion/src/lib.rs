//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `benchmark_group` / `Bencher` surface the
//! workspace benches use, timing with `std::time::Instant` and printing a
//! short mean/min report per function. Statistical analysis, warm-up
//! calibration and HTML reports are intentionally out of scope — benches
//! here double as executable smoke checks, not publication numbers.

use std::time::{Duration, Instant};

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { sample_size: 10 }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup { sample_size: 10 };
        g.bench_function(name, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed samples to collect per function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        if samples.is_empty() {
            println!("  {name:<28} (no samples)");
            return self;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "  {name:<28} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            Duration::from_secs_f64(mean),
            Duration::from_secs_f64(min),
            samples.len()
        );
        self
    }

    /// End the group (report already printed incrementally).
    pub fn finish(&mut self) {}
}

/// Measures one closure invocation set.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, keeping its result alive to prevent elision.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
