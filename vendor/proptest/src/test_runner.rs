//! Case runner: deterministic per-test seeding, no shrinking.

use crate::strategy::Strategy;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Shrink-iteration bound — accepted for source compatibility with
    /// real proptest; this shim does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// FNV-1a, used to derive a stable seed from the test name.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `config.cases` random cases of `f` over values from `strategy`.
/// Panics (failing the enclosing `#[test]`) on the first case whose
/// closure returns `Err`.
pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    let base = fnv1a(name);
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(case));
        let value = strategy.generate(&mut rng);
        if let Err(msg) = f(value) {
            panic!(
                "proptest failure in `{name}` (case {case}/{}, seed {:#x}): {msg}",
                config.cases,
                base.wrapping_add(case)
            );
        }
    }
}
