//! Value-generation strategies: ranges, tuples, maps, boxed trait objects
//! and weighted choice.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; `f` returning `false` resamples (bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter (rejection sampling with a retry cap).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> OneOf<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= *w;
        }
        unreachable!("weight walk exceeded total")
    }
}

/// Full-domain strategy for primitives (`any::<T>()`).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_impl {
    ($ty:ty, $draw:expr) => {
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let draw: fn(&mut TestRng) -> $ty = $draw;
                draw(rng)
            }
        }
    };
}

any_impl!(bool, |r| r.gen_bool(0.5));
any_impl!(u8, |r| r.gen_range(0..=u8::MAX));
any_impl!(u16, |r| r.gen_range(0..=u16::MAX));
any_impl!(u32, |r| r.gen_range(0..=u32::MAX));
any_impl!(u64, |r| rand::RngCore::next_u64(r));
any_impl!(usize, |r| rand::RngCore::next_u64(r) as usize);
any_impl!(i8, |r| r.gen_range(i8::MIN..=i8::MAX));
any_impl!(i16, |r| r.gen_range(i16::MIN..=i16::MAX));
any_impl!(i32, |r| rand::RngCore::next_u32(r) as i32);
any_impl!(i64, |r| rand::RngCore::next_u64(r) as i64);

macro_rules! range_impl {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_impl!(A);
tuple_impl!(A, B);
tuple_impl!(A, B, C);
tuple_impl!(A, B, C, D);
tuple_impl!(A, B, C, D, E);
tuple_impl!(A, B, C, D, E, F);
