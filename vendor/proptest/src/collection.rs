//! Collection strategies (`prop::collection::vec`, `btree_set`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`; duplicates collapse, so the resulting set
/// may be smaller than the drawn length.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate ordered sets of `element` values with up to `size` members.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "collection::btree_set: empty size range");
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
