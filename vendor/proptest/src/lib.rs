//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this crate provides the
//! subset of proptest's API the workspace's property tests use: the
//! [`Strategy`] trait (with `prop_map`/`boxed`), range / tuple / collection
//! strategies, `any::<T>()`, weighted `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` macros. Test cases are generated from a deterministic
//! per-test seed (FNV hash of the test name), so failures reproduce across
//! runs; there is no shrinking — the panic message carries the case index.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, BoxedStrategy, Just, OneOf, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body; failure aborts the case
/// with a message rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                        l, r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                        l, r, format!($($fmt)+)
                    ));
                }
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `(left != right)`\n  both: `{:?}`",
                        l
                    ));
                }
            }
        }
    };
}

/// Choose between strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(&config, stringify!($name), &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
